//! Smoke test for the workspace wiring: runs the `examples/quickstart.rs`
//! logic through the `txdpor::prelude` facade alone, proving that the
//! re-export surface (`explore`, `dfs_explore`, `explore_with_assertion`,
//! `client_program`, `execute_serial`, the DSL and the core types) is
//! complete enough to write a whole analysis without reaching into the
//! individual `txdpor-*` crates.

use txdpor::prelude::*;

/// The Fig. 8a program used by `examples/quickstart.rs`.
fn quickstart_program() -> Program {
    program(vec![
        session(vec![
            tx(
                "observe",
                vec![
                    read("a", g("x")),
                    iff(eq(local("a"), cint(3)), vec![write(g("y"), cint(1))]),
                ],
            ),
            tx("audit", vec![read("b", g("x")), read("c", g("y"))]),
        ]),
        session(vec![tx(
            "bump",
            vec![read("d", g("x")), write(g("x"), cint(3))],
        )]),
    ])
}

#[test]
fn quickstart_logic_through_the_prelude() {
    let p = quickstart_program();

    // explore: behaviours per level are ordered RC ⊇ RA ⊇ CC.
    let mut outputs = Vec::new();
    for level in [
        IsolationLevel::ReadCommitted,
        IsolationLevel::ReadAtomic,
        IsolationLevel::CausalConsistency,
    ] {
        let report = explore(&p, ExploreConfig::explore_ce(level)).unwrap();
        assert!(report.outputs >= 1);
        outputs.push(report.outputs);
    }
    assert!(
        outputs.windows(2).all(|w| w[1] <= w[0]),
        "stronger levels must admit no more behaviours: {outputs:?}"
    );

    // explore-ce*: SI and SER filter the CC exploration.
    for level in [
        IsolationLevel::SnapshotIsolation,
        IsolationLevel::Serializability,
    ] {
        let star = explore(
            &p,
            ExploreConfig::explore_ce_star(IsolationLevel::CausalConsistency, level),
        )
        .unwrap();
        assert!(star.outputs <= outputs[2]);
    }

    // dfs_explore: the baseline agrees with explore-ce on distinct histories.
    let level = IsolationLevel::CausalConsistency;
    let mine = explore(&p, ExploreConfig::explore_ce(level).collecting_histories()).unwrap();
    let baseline = dfs_explore(&p, DfsConfig::new(level).collecting_histories()).unwrap();
    let fingerprints = |r: &ExplorationReport| {
        let mut f: Vec<_> = r.histories.iter().map(|h| h.fingerprint()).collect();
        f.sort();
        f
    };
    assert_eq!(fingerprints(&mine), fingerprints(&baseline));

    // execute_serial: one serial run of the program commits all 3 transactions.
    let (serial_history, vars) = execute_serial(&p).unwrap();
    assert_eq!(serial_history.num_transactions(), 3);
    assert!(vars.get("x").is_some() && vars.get("y").is_some());

    // explore_with_assertion: under CC the audit can observe x=3 with y
    // still 0 (the "observe" write is not yet visible), so an assertion
    // demanding y=1 whenever x=3 is violated at least once.
    let assertion = |ctx: &AssertionCtx<'_>| {
        ctx.committed_named("audit").all(|(_, env)| {
            env.get("b") != Some(&Value::Int(3)) || env.get("c") == Some(&Value::Int(1))
        })
    };
    let report = explore_with_assertion(
        &p,
        ExploreConfig::explore_ce(IsolationLevel::CausalConsistency),
        Some(&assertion),
    )
    .unwrap();
    assert!(report.assertion_violations > 0);
}

#[test]
fn app_workloads_through_the_prelude() {
    // client_program + WorkloadConfig + App are reachable from the prelude
    // and produce explorable programs for every application.
    for app in [
        App::ShoppingCart,
        App::Twitter,
        App::Courseware,
        App::Wikipedia,
        App::Tpcc,
    ] {
        let p = client_program(&WorkloadConfig {
            app,
            sessions: 2,
            transactions_per_session: 1,
            seed: 3,
        });
        let report = explore(
            &p,
            ExploreConfig::explore_ce(IsolationLevel::CausalConsistency),
        )
        .unwrap();
        assert!(report.outputs >= 1, "{app:?} produced no behaviours");
    }
}
