//! Property-based tests: on randomly generated bounded programs, the
//! swapping-based exploration agrees with the DFS baseline (completeness),
//! outputs only consistent histories (soundness), never repeats a history
//! (optimality) and never blocks (strong optimality).

use std::collections::BTreeSet;

use proptest::prelude::*;

use txdpor::prelude::*;
use txdpor_program::Instr;

/// Strategy for one instruction over the variables `x0`/`x1` and locals
/// `l0`/`l1`.
fn instr_strategy() -> impl Strategy<Value = Instr> {
    let var = prop_oneof![Just("x0"), Just("x1")];
    let lcl = prop_oneof![Just("l0"), Just("l1")];
    prop_oneof![
        // read into a local
        (lcl.clone(), var.clone()).prop_map(|(l, v)| read(l, g(v))),
        // write a constant
        (var.clone(), 1..4i64).prop_map(|(v, c)| write(g(v), cint(c))),
        // write a local value read earlier (or 0 when never read)
        (var.clone(), lcl.clone()).prop_map(|(v, l)| {
            // Guard the use of the local so that it is always defined.
            iff(
                ge(add(local_or_zero(l), cint(0)), cint(0)),
                vec![write(g(v), local_or_zero(l))],
            )
        }),
        // conditional write on a previously read value
        (lcl, var, 0..3i64).prop_map(|(l, v, c)| iff(
            eq(local_or_zero(l), cint(c)),
            vec![write(g(v), cint(c + 1))]
        )),
    ]
}

/// An expression that evaluates the local if defined; the generator always
/// assigns locals at the start of the transaction so this is simply
/// `local(name)` — the helper exists to keep the strategy readable.
fn local_or_zero(name: &str) -> txdpor_program::Expr {
    local(name)
}

/// Strategy for a transaction: initial reads defining both locals followed
/// by 1..=2 random instructions.
fn transaction_strategy() -> impl Strategy<Value = TransactionDef> {
    proptest::collection::vec(instr_strategy(), 1..=2).prop_map(|instrs| {
        let mut body = vec![read("l0", g("x0")), read("l1", g("x1"))];
        body.extend(instrs);
        tx("random", body)
    })
}

/// Strategy for a whole program: 2..=3 sessions of 1..=2 transactions.
fn program_strategy() -> impl Strategy<Value = Program> {
    proptest::collection::vec(
        proptest::collection::vec(transaction_strategy(), 1..=2).prop_map(Session::new),
        2..=3,
    )
    .prop_map(Program::new)
}

fn history_set(report: &ExplorationReport) -> BTreeSet<txdpor_history::HistoryFingerprint> {
    report.histories.iter().map(|h| h.fingerprint()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn explore_ce_agrees_with_dfs_on_random_programs(p in program_strategy()) {
        let level = IsolationLevel::CausalConsistency;
        let mine = explore(
            &p,
            ExploreConfig::explore_ce(level)
                .collecting_histories()
                .tracking_duplicates(),
        )
        .unwrap();
        let baseline = dfs_explore(&p, DfsConfig::new(level).collecting_histories()).unwrap();
        prop_assert_eq!(history_set(&mine), history_set(&baseline));
        prop_assert_eq!(mine.duplicate_outputs, 0);
        prop_assert_eq!(mine.blocked, 0);
        for h in &mine.histories {
            prop_assert!(level.satisfies(h));
        }
    }

    #[test]
    fn explore_ce_star_agrees_with_dfs_for_serializability(p in program_strategy()) {
        let mine = explore(
            &p,
            ExploreConfig::explore_ce_star(
                IsolationLevel::ReadAtomic,
                IsolationLevel::Serializability,
            )
            .collecting_histories()
            .tracking_duplicates(),
        )
        .unwrap();
        let baseline = dfs_explore(
            &p,
            DfsConfig::new(IsolationLevel::Serializability).collecting_histories(),
        )
        .unwrap();
        prop_assert_eq!(history_set(&mine), history_set(&baseline));
        prop_assert_eq!(mine.duplicate_outputs, 0);
    }

    #[test]
    fn read_committed_exploration_covers_causal_consistency(p in program_strategy()) {
        // Every CC history is also enumerated when exploring under RC and
        // filtering with CC (Corollary 6.2 with I0 = RC, I = CC).
        let cc = explore(
            &p,
            ExploreConfig::explore_ce(IsolationLevel::CausalConsistency).collecting_histories(),
        )
        .unwrap();
        let star = explore(
            &p,
            ExploreConfig::explore_ce_star(
                IsolationLevel::ReadCommitted,
                IsolationLevel::CausalConsistency,
            )
            .collecting_histories(),
        )
        .unwrap();
        prop_assert_eq!(history_set(&cc), history_set(&star));
        prop_assert!(star.end_states >= cc.end_states);
    }
}
