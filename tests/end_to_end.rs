//! End-to-end integration tests spanning all crates: benchmark application
//! workloads are generated, explored under several isolation levels and
//! algorithms, and the results are cross-checked for soundness,
//! completeness and optimality.

use txdpor::prelude::*;
use txdpor_apps::courseware;

/// Small client programs (2 sessions × 2 transactions) of every application.
fn small_workloads() -> Vec<(App, Program)> {
    App::ALL
        .into_iter()
        .map(|app| {
            (
                app,
                client_program(&WorkloadConfig {
                    app,
                    sessions: 2,
                    transactions_per_session: 2,
                    seed: 1,
                }),
            )
        })
        .collect()
}

#[test]
fn app_workloads_explore_soundly_under_every_level() {
    for (app, p) in small_workloads() {
        for level in [
            IsolationLevel::ReadCommitted,
            IsolationLevel::ReadAtomic,
            IsolationLevel::CausalConsistency,
        ] {
            let report = explore(
                &p,
                ExploreConfig::explore_ce(level)
                    .collecting_histories()
                    .tracking_duplicates(),
            )
            .unwrap();
            assert!(report.outputs >= 1, "{app} under {level} has no behaviour");
            assert_eq!(
                report.duplicate_outputs, 0,
                "{app} under {level}: duplicates"
            );
            assert_eq!(
                report.blocked, 0,
                "{app} under {level}: blocked exploration"
            );
            for h in &report.histories {
                assert!(level.satisfies(h), "{app} under {level}: unsound output");
                assert_eq!(h.num_pending(), 0, "{app}: incomplete output history");
                assert_eq!(
                    h.num_transactions(),
                    p.num_transactions(),
                    "{app}: output history missing transactions"
                );
            }
        }
    }
}

#[test]
fn explore_matches_dfs_on_app_workloads() {
    use std::collections::BTreeSet;
    for (app, p) in small_workloads() {
        let level = IsolationLevel::CausalConsistency;
        let mine = explore(&p, ExploreConfig::explore_ce(level).collecting_histories()).unwrap();
        let baseline = dfs_explore(&p, DfsConfig::new(level).collecting_histories()).unwrap();
        let a: BTreeSet<_> = mine.histories.iter().map(|h| h.fingerprint()).collect();
        let b: BTreeSet<_> = baseline.histories.iter().map(|h| h.fingerprint()).collect();
        assert_eq!(a, b, "{app}: explore-ce and DFS disagree");
        assert!(
            baseline.end_states >= mine.end_states,
            "{app}: the baseline cannot reach fewer end states"
        );
    }
}

#[test]
fn star_algorithms_filter_monotonically() {
    for (app, p) in small_workloads() {
        let cc = explore(
            &p,
            ExploreConfig::explore_ce(IsolationLevel::CausalConsistency),
        )
        .unwrap();
        let si = explore(
            &p,
            ExploreConfig::explore_ce_star(
                IsolationLevel::CausalConsistency,
                IsolationLevel::SnapshotIsolation,
            ),
        )
        .unwrap();
        let ser = explore(
            &p,
            ExploreConfig::explore_ce_star(
                IsolationLevel::CausalConsistency,
                IsolationLevel::Serializability,
            ),
        )
        .unwrap();
        assert_eq!(
            si.end_states, cc.end_states,
            "{app}: same exploration expected"
        );
        assert!(ser.outputs <= si.outputs, "{app}: SER admits more than SI");
        assert!(si.outputs <= cc.outputs, "{app}: SI admits more than CC");
        assert!(ser.outputs >= 1, "{app}: no serializable behaviour");
    }
}

#[test]
fn weaker_base_levels_explore_more_end_states() {
    // §7.3: the performance gap grows as the base level weakens because the
    // number of enumerated end states grows. The Fig. 10 program (an atomic
    // writer of x and y against a reader of both) separates the levels: the
    // trivial base enumerates the fractured read that CC/RA forbid.
    let p = program(vec![
        session(vec![tx(
            "reader",
            vec![read("a", g("x")), read("b", g("y"))],
        )]),
        session(vec![tx(
            "writer",
            vec![write(g("x"), cint(2)), write(g("y"), cint(2))],
        )]),
    ]);
    let cc = explore(
        &p,
        ExploreConfig::explore_ce(IsolationLevel::CausalConsistency),
    )
    .unwrap();
    let ra = explore(
        &p,
        ExploreConfig::explore_ce_star(
            IsolationLevel::ReadAtomic,
            IsolationLevel::CausalConsistency,
        ),
    )
    .unwrap();
    let rc = explore(
        &p,
        ExploreConfig::explore_ce_star(
            IsolationLevel::ReadCommitted,
            IsolationLevel::CausalConsistency,
        ),
    )
    .unwrap();
    let trivial = explore(
        &p,
        ExploreConfig::explore_ce_star(IsolationLevel::Trivial, IsolationLevel::CausalConsistency),
    )
    .unwrap();
    // All enumerate the same CC histories…
    assert_eq!(cc.outputs, ra.outputs);
    assert_eq!(cc.outputs, rc.outputs);
    assert_eq!(cc.outputs, trivial.outputs);
    // …but weaker bases explore at least as many end states.
    assert!(ra.end_states >= cc.end_states);
    assert!(rc.end_states >= ra.end_states);
    assert!(trivial.end_states >= rc.end_states);
    assert!(
        trivial.end_states > cc.end_states,
        "the trivial base should show measurable redundancy"
    );
}

#[test]
fn courseware_invariant_analysis() {
    let mut p = program(vec![
        session(vec![
            courseware::enroll(0, 0),
            courseware::get_enrollments(0),
        ]),
        session(vec![courseware::enroll(1, 0)]),
    ]);
    p.init_values = courseware::initial_values();
    let cc = explore_with_assertion(
        &p,
        ExploreConfig::explore_ce(IsolationLevel::CausalConsistency),
        Some(&courseware::capacity_invariant),
    )
    .unwrap();
    assert!(cc.has_violation());
    let h = cc.violating_history.expect("violating history collected");
    assert!(IsolationLevel::CausalConsistency.satisfies(&h));
    let ser = explore_with_assertion(
        &p,
        ExploreConfig::explore_ce_star(
            IsolationLevel::CausalConsistency,
            IsolationLevel::Serializability,
        ),
        Some(&courseware::capacity_invariant),
    )
    .unwrap();
    assert!(!ser.has_violation());
}

#[test]
fn timeouts_terminate_large_explorations() {
    let p = client_program(&WorkloadConfig {
        app: App::Twitter,
        sessions: 4,
        transactions_per_session: 3,
        seed: 1,
    });
    let report = explore(
        &p,
        ExploreConfig::explore_ce(IsolationLevel::CausalConsistency)
            .with_timeout(std::time::Duration::from_millis(50)),
    )
    .unwrap();
    assert!(report.timed_out);
    assert!(report.duration < std::time::Duration::from_secs(30));
}
