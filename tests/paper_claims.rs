//! Tests for the paper's formal claims, checked empirically on bounded
//! programs: prefix closure (Theorem 3.2), causal extensibility
//! (Theorem 3.4), the counterexample of Fig. 6, soundness/completeness/
//! strong optimality of `explore-ce` (Theorem 5.1) and the behaviour of
//! `explore-ce*` (Corollary 6.2).

use std::collections::BTreeSet;

use txdpor::prelude::*;
use txdpor_history::{Event, EventId, EventKind, SessionId, TxId};

/// Builds the history of Fig. 6 (the counterexample to causal
/// extensibility for SI and SER), optionally with the final `write(x, 2)`.
fn fig6_history(with_final_write: bool) -> (History, Var, Var, Var) {
    let (x, y, z) = (Var(0), Var(1), Var(2));
    let mut h = History::new([]);
    let mut id = 0u32;
    let mut fresh = || {
        id += 1;
        EventId(id)
    };
    h.begin_transaction(
        SessionId(0),
        TxId(1),
        0,
        Event::new(fresh(), EventKind::Begin),
    );
    h.append_event(
        SessionId(0),
        Event::new(fresh(), EventKind::Write(z, Value::Int(1))),
    );
    let r = fresh();
    h.append_event(SessionId(0), Event::new(r, EventKind::Read(x)));
    h.set_wr(r, TxId::INIT);
    h.append_event(
        SessionId(0),
        Event::new(fresh(), EventKind::Write(y, Value::Int(1))),
    );
    h.append_event(SessionId(0), Event::new(fresh(), EventKind::Commit));

    h.begin_transaction(
        SessionId(1),
        TxId(2),
        0,
        Event::new(fresh(), EventKind::Begin),
    );
    h.append_event(
        SessionId(1),
        Event::new(fresh(), EventKind::Write(z, Value::Int(2))),
    );
    let r = fresh();
    h.append_event(SessionId(1), Event::new(r, EventKind::Read(y)));
    h.set_wr(r, TxId::INIT);
    if with_final_write {
        h.append_event(
            SessionId(1),
            Event::new(fresh(), EventKind::Write(x, Value::Int(2))),
        );
    }
    (h, x, y, z)
}

#[test]
fn theorem_3_2_prefix_closure_on_explored_histories() {
    // Every prefix of a consistent history (obtained by removing a suffix
    // of whole transactions, which is a prefix in the paper's sense when
    // the removed transactions are causally maximal) remains consistent.
    let p = client_program(&WorkloadConfig {
        app: App::ShoppingCart,
        sessions: 2,
        transactions_per_session: 2,
        seed: 3,
    });
    for level in [
        IsolationLevel::ReadCommitted,
        IsolationLevel::ReadAtomic,
        IsolationLevel::CausalConsistency,
        IsolationLevel::SnapshotIsolation,
        IsolationLevel::Serializability,
    ] {
        let base = if level.is_causally_extensible() {
            ExploreConfig::explore_ce(level)
        } else {
            ExploreConfig::explore_ce_star(IsolationLevel::CausalConsistency, level)
        };
        let report = explore(&p, base.collecting_histories()).unwrap();
        for h in report.histories.iter().take(20) {
            // Remove one causally-maximal transaction at a time.
            let maximal: Vec<_> = h.tx_ids().filter(|t| h.is_causally_maximal(*t)).collect();
            for t in maximal {
                let doomed: BTreeSet<_> = h.tx(t).events.iter().map(|e| e.id).collect();
                let prefix = h.remove_events(&doomed);
                assert!(
                    level.satisfies(&prefix),
                    "{level}: prefix of a consistent history is inconsistent"
                );
            }
        }
    }
}

#[test]
fn theorem_3_4_causal_extensibility_counterexample() {
    // The history of Fig. 6 without the final write satisfies SI and SER;
    // its (unique) causal extension with write(x, 2) satisfies neither,
    // while CC accepts both — hence SI and SER are not causally extensible
    // and CC is not contradicted.
    let (h_before, _, _, _) = fig6_history(false);
    let (h_after, _, _, _) = fig6_history(true);
    assert!(IsolationLevel::SnapshotIsolation.satisfies(&h_before));
    assert!(IsolationLevel::Serializability.satisfies(&h_before));
    assert!(!IsolationLevel::SnapshotIsolation.satisfies(&h_after));
    assert!(!IsolationLevel::Serializability.satisfies(&h_after));
    assert!(IsolationLevel::CausalConsistency.satisfies(&h_before));
    assert!(IsolationLevel::CausalConsistency.satisfies(&h_after));
}

#[test]
fn theorem_5_1_strong_optimality_on_workloads() {
    // explore-ce never blocks and never repeats a history for causally
    // extensible levels, on real application workloads.
    for app in [App::Courseware, App::Twitter, App::Wikipedia] {
        let p = client_program(&WorkloadConfig {
            app,
            sessions: 2,
            transactions_per_session: 2,
            seed: 4,
        });
        for level in [
            IsolationLevel::ReadCommitted,
            IsolationLevel::ReadAtomic,
            IsolationLevel::CausalConsistency,
        ] {
            let report =
                explore(&p, ExploreConfig::explore_ce(level).tracking_duplicates()).unwrap();
            assert_eq!(report.blocked, 0, "{app}/{level}: fruitless exploration");
            assert_eq!(
                report.duplicate_outputs, 0,
                "{app}/{level}: duplicate output"
            );
            // Strong optimality also implies every end state is output.
            assert_eq!(report.end_states, report.outputs);
        }
    }
}

#[test]
fn corollary_6_2_star_is_optimal_but_not_strongly_optimal() {
    // explore-ce*(CC, SER) outputs each SER history once (optimal) but
    // explores CC-only end states that are filtered out — the fruitless
    // explorations that Theorem 6.1 shows cannot be avoided.
    let incr = || {
        tx(
            "incr",
            vec![read("a", g("x")), write(g("x"), add(local("a"), cint(1)))],
        )
    };
    let p = program(vec![session(vec![incr()]), session(vec![incr()])]);
    let report = explore(
        &p,
        ExploreConfig::explore_ce_star(
            IsolationLevel::CausalConsistency,
            IsolationLevel::Serializability,
        )
        .tracking_duplicates(),
    )
    .unwrap();
    assert_eq!(report.duplicate_outputs, 0);
    assert!(
        report.filtered_out() > 0,
        "the lost-update end state must be explored and filtered"
    );
}

#[test]
fn serial_execution_is_among_the_outputs() {
    // The oracle-order serial execution (every read observing the latest
    // committed write) is a valid execution under every level, so
    // completeness requires it to be among the outputs.
    let p = client_program(&WorkloadConfig {
        app: App::Tpcc,
        sessions: 2,
        transactions_per_session: 2,
        seed: 5,
    });
    let report = explore(
        &p,
        ExploreConfig::explore_ce(IsolationLevel::CausalConsistency).collecting_histories(),
    )
    .unwrap();
    let (serial, _) = execute_serial(&p).unwrap();
    let outputs: BTreeSet<_> = report.histories.iter().map(|h| h.fingerprint()).collect();
    assert!(
        outputs.contains(&serial.fingerprint()),
        "the serial execution must be enumerated"
    );
}

#[test]
fn polynomial_space_proxy_histories_stay_small() {
    // The recursion never materialises more than one history per event of
    // the program: the maximum history size equals the number of events of
    // a complete execution, independently of how many histories exist.
    let p = client_program(&WorkloadConfig {
        app: App::Wikipedia,
        sessions: 3,
        transactions_per_session: 2,
        seed: 1,
    });
    let report = explore(
        &p,
        ExploreConfig::explore_ce(IsolationLevel::CausalConsistency),
    )
    .unwrap();
    // Every transaction contributes at most 6 events (begin + 4 accesses +
    // commit) in these workloads.
    let bound = p.num_transactions() * 8;
    assert!(
        report.max_events <= bound,
        "history size {} exceeds the linear bound {bound}",
        report.max_events
    );
    assert!(report.outputs > 1);
}
