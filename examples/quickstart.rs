//! Quickstart: write a small transactional program, enumerate all of its
//! behaviours under Causal Consistency with the strongly-optimal
//! `explore-ce` algorithm, and compare with stronger isolation levels.
//!
//! Run with: `cargo run --example quickstart`

use txdpor::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The program of Fig. 8a of the paper: one session reads x and, if it
    // observed 3, advertises it by writing y := 1; a second session reads x
    // and then overwrites it with 3.
    let p = program(vec![
        session(vec![
            tx(
                "observe",
                vec![
                    read("a", g("x")),
                    iff(eq(local("a"), cint(3)), vec![write(g("y"), cint(1))]),
                ],
            ),
            tx("audit", vec![read("b", g("x")), read("c", g("y"))]),
        ]),
        session(vec![tx(
            "bump",
            vec![read("d", g("x")), write(g("x"), cint(3))],
        )]),
    ]);

    println!("== quickstart: enumerating behaviours of a 2-session program ==\n");

    // Enumerate every Causal Consistency behaviour exactly once.
    let cc = explore(
        &p,
        ExploreConfig::explore_ce(IsolationLevel::CausalConsistency).collecting_histories(),
    )?;
    println!(
        "explore-ce(CC): {} histories, {} explore calls, {:.2?}",
        cc.outputs, cc.explore_calls, cc.duration
    );
    println!("\nfirst three histories:\n");
    for h in cc.histories.iter().take(3) {
        println!("{}", h.display_with(&cc.vars));
    }

    // Compare the number of behaviours across isolation levels.
    println!("behaviours admitted per isolation level:");
    for level in [
        IsolationLevel::ReadCommitted,
        IsolationLevel::ReadAtomic,
        IsolationLevel::CausalConsistency,
    ] {
        let report = explore(&p, ExploreConfig::explore_ce(level))?;
        println!(
            "  {:<4} : {:>4} histories",
            level.short_name(),
            report.outputs
        );
    }
    for level in [
        IsolationLevel::SnapshotIsolation,
        IsolationLevel::Serializability,
    ] {
        let report = explore(
            &p,
            ExploreConfig::explore_ce_star(IsolationLevel::CausalConsistency, level),
        )?;
        println!(
            "  {:<4} : {:>4} histories",
            level.short_name(),
            report.outputs
        );
    }
    Ok(())
}
