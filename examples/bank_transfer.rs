//! A bank-transfer service checked against every isolation level: the
//! invariant "no account balance ever becomes negative despite the guard"
//! is violated under Read Committed through Snapshot Isolation (write-skew
//! style double withdrawal from two accounts sharing a minimum-balance
//! constraint) and only holds under Serializability.
//!
//! Run with: `cargo run --example bank_transfer`

use txdpor::prelude::*;

/// A withdrawal of `amount` from account `from`, allowed only when the
/// *combined* balance of the two accounts stays non-negative (a classic
/// constraint spanning two rows).
fn withdraw(name: &str, from: &str, other: &str, amount: i64) -> TransactionDef {
    tx(
        name,
        vec![
            read("mine", g(from)),
            read("theirs", g(other)),
            iff(
                ge(
                    sub(add(local("mine"), local("theirs")), cint(amount)),
                    cint(0),
                ),
                vec![write(g(from), sub(local("mine"), cint(amount)))],
            ),
        ],
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Joint accounts start with 60 + 40 = 100; each session withdraws 80
    // from its own account, guarded by the joint-balance check.
    let mut p = program(vec![
        session(vec![withdraw("withdraw_a", "acc_a", "acc_b", 80)]),
        session(vec![withdraw("withdraw_b", "acc_b", "acc_a", 80)]),
    ]);
    p.init_values.push(("acc_a".to_owned(), Value::Int(60)));
    p.init_values.push(("acc_b".to_owned(), Value::Int(40)));

    // Invariant: at most one of the two withdrawals commits a write —
    // otherwise the joint balance went negative.
    let invariant = |ctx: &AssertionCtx<'_>| {
        ctx.committed_writers_named("withdraw_a", "acc_a")
            + ctx.committed_writers_named("withdraw_b", "acc_b")
            <= 1
    };

    println!("== bank transfer: can both withdrawals succeed? ==\n");
    println!(
        "{:<6} {:>10} {:>12} {:>10}",
        "level", "histories", "violations", "time"
    );
    for level in [
        IsolationLevel::ReadCommitted,
        IsolationLevel::ReadAtomic,
        IsolationLevel::CausalConsistency,
        IsolationLevel::SnapshotIsolation,
        IsolationLevel::Serializability,
    ] {
        let config = if level.is_causally_extensible() {
            ExploreConfig::explore_ce(level)
        } else {
            ExploreConfig::explore_ce_star(IsolationLevel::CausalConsistency, level)
        };
        let report = explore_with_assertion(&p, config, Some(&invariant))?;
        println!(
            "{:<6} {:>10} {:>12} {:>10.2?}",
            level.short_name(),
            report.outputs,
            report.assertion_violations,
            report.duration
        );
    }
    println!("\nThe double withdrawal is a write-skew anomaly: the two transactions");
    println!("write different accounts, so even Snapshot Isolation admits it; only");
    println!("Serializability enforces the joint-balance constraint.");
    Ok(())
}
