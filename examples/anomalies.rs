//! Classic transactional anomalies and the isolation levels that admit
//! them: dirty-read-style fractured reads, lost update, write skew and the
//! long fork. For each anomaly program the example reports how many
//! behaviours each isolation level admits and whether the anomalous
//! outcome is among them.
//!
//! Run with: `cargo run --example anomalies`

use txdpor::prelude::*;

/// An anomaly program with its name and an assertion that is violated
/// exactly when the anomalous behaviour occurs.
type Anomaly = (&'static str, Program, fn(&AssertionCtx<'_>) -> bool);

/// Builds the four anomaly programs together with an assertion that is
/// violated exactly when the anomalous behaviour occurs.
fn anomalies() -> Vec<Anomaly> {
    let incr = || {
        tx(
            "incr",
            vec![read("a", g("x")), write(g("x"), add(local("a"), cint(1)))],
        )
    };
    vec![
        (
            "fractured read",
            // A writer updates x and y together; a reader must not observe
            // only half of the update.
            program(vec![
                session(vec![tx(
                    "writer",
                    vec![write(g("x"), cint(1)), write(g("y"), cint(1))],
                )]),
                session(vec![tx(
                    "reader",
                    vec![read("rx", g("x")), read("ry", g("y"))],
                )]),
            ]),
            |ctx| {
                ctx.committed_named("reader").all(|(_, env)| {
                    env.get("rx") != Some(&Value::Int(0)) || env.get("ry") != Some(&Value::Int(1))
                })
            },
        ),
        (
            "lost update",
            program(vec![session(vec![incr()]), session(vec![incr()])]),
            |ctx| ctx.committed_values_of("x").contains(&Value::Int(2)),
        ),
        (
            "write skew",
            // Two guards each check the *other* flag before setting theirs;
            // at most one should succeed.
            program(vec![
                session(vec![tx(
                    "left",
                    vec![
                        read("a", g("y")),
                        iff(eq(local("a"), cint(0)), vec![write(g("x"), cint(1))]),
                    ],
                )]),
                session(vec![tx(
                    "right",
                    vec![
                        read("b", g("x")),
                        iff(eq(local("b"), cint(0)), vec![write(g("y"), cint(1))]),
                    ],
                )]),
            ]),
            |ctx| {
                let both = ctx.committed_writers_named("left", "x")
                    + ctx.committed_writers_named("right", "y");
                both < 2
            },
        ),
        (
            "long fork",
            program(vec![
                session(vec![tx("wx", vec![write(g("x"), cint(1))])]),
                session(vec![tx("wy", vec![write(g("y"), cint(1))])]),
                session(vec![tx("r1", vec![read("a", g("x")), read("b", g("y"))])]),
                session(vec![tx("r2", vec![read("c", g("y")), read("d", g("x"))])]),
            ]),
            |ctx| {
                // The two readers must not observe the writes in opposite orders.
                let r1_fork = ctx.committed_named("r1").all(|(_, env)| {
                    env.get("a") == Some(&Value::Int(1)) && env.get("b") == Some(&Value::Int(0))
                });
                let r2_fork = ctx.committed_named("r2").all(|(_, env)| {
                    env.get("c") == Some(&Value::Int(1)) && env.get("d") == Some(&Value::Int(0))
                });
                !(r1_fork && r2_fork)
            },
        ),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== which isolation level admits which anomaly? ==\n");
    println!(
        "{:<16} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "anomaly", "RC", "RA", "CC", "SI", "SER"
    );
    for (name, p, assertion) in anomalies() {
        let mut cells = Vec::new();
        for level in [
            IsolationLevel::ReadCommitted,
            IsolationLevel::ReadAtomic,
            IsolationLevel::CausalConsistency,
        ] {
            let report =
                explore_with_assertion(&p, ExploreConfig::explore_ce(level), Some(&assertion))?;
            cells.push((report.outputs, report.assertion_violations > 0));
        }
        for level in [
            IsolationLevel::SnapshotIsolation,
            IsolationLevel::Serializability,
        ] {
            let report = explore_with_assertion(
                &p,
                ExploreConfig::explore_ce_star(IsolationLevel::ReadCommitted, level),
                Some(&assertion),
            )?;
            cells.push((report.outputs, report.assertion_violations > 0));
        }
        print!("{name:<16}");
        for (outputs, violated) in cells {
            print!(
                " {:>6}",
                format!("{}{}", outputs, if violated { "!" } else { "" })
            );
        }
        println!();
    }
    println!("\n(count = admitted histories; '!' = the anomaly occurs at this level)");
    Ok(())
}
