//! Compares the state space of a benchmark client program across isolation
//! levels and algorithms: histories, end states, explore calls and running
//! time of `explore-ce`, `explore-ce*` and the `DFS` baseline — a miniature
//! version of the paper's Fig. 14 on one program.
//!
//! Run with: `cargo run --release --example isolation_compare [app]`
//! where `app` is one of `shoppingCart`, `twitter`, `courseware`,
//! `wikipedia`, `tpcc` (default: `twitter`).

use std::time::Instant;

use txdpor::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = match std::env::args().nth(1).as_deref() {
        Some("shoppingCart") => App::ShoppingCart,
        Some("courseware") => App::Courseware,
        Some("wikipedia") => App::Wikipedia,
        Some("tpcc") => App::Tpcc,
        _ => App::Twitter,
    };
    let p = client_program(&WorkloadConfig {
        app,
        sessions: 2,
        transactions_per_session: 2,
        seed: 1,
    });
    println!("== {app}: 2 sessions x 2 transactions ==\n");
    println!(
        "{:<12} {:>10} {:>12} {:>14} {:>12}",
        "algorithm", "histories", "end states", "explore calls", "time"
    );

    let mut runs: Vec<(String, ExplorationReport)> = Vec::new();
    for level in [
        IsolationLevel::ReadCommitted,
        IsolationLevel::ReadAtomic,
        IsolationLevel::CausalConsistency,
    ] {
        let report = explore(&p, ExploreConfig::explore_ce(level))?;
        runs.push((level.short_name().to_owned(), report));
    }
    for level in [
        IsolationLevel::SnapshotIsolation,
        IsolationLevel::Serializability,
    ] {
        let report = explore(
            &p,
            ExploreConfig::explore_ce_star(IsolationLevel::CausalConsistency, level),
        )?;
        runs.push((format!("CC + {}", level.short_name()), report));
    }
    for (label, report) in &runs {
        println!(
            "{:<12} {:>10} {:>12} {:>14} {:>12.2?}",
            label, report.outputs, report.end_states, report.explore_calls, report.duration
        );
    }

    // The baseline explores the same histories many times over.
    let start = Instant::now();
    let dfs = dfs_explore(&p, DfsConfig::new(IsolationLevel::CausalConsistency))?;
    println!(
        "{:<12} {:>10} {:>12} {:>14} {:>12.2?}",
        "DFS(CC)",
        dfs.outputs,
        dfs.end_states,
        dfs.explore_calls,
        start.elapsed()
    );
    println!(
        "\nDFS reached {} end states for {} distinct histories (redundancy {:.1}x);",
        dfs.end_states,
        dfs.outputs,
        dfs.end_states as f64 / dfs.outputs.max(1) as f64
    );
    println!("explore-ce(CC) visits each of them exactly once.");
    Ok(())
}
