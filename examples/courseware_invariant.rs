//! Checking an application-level invariant: the Courseware registration
//! capacity must never be exceeded. The invariant is violated under
//! Causal Consistency (two students both observe a free seat) and holds
//! under Serializability — the model checker finds the violating execution
//! and prints it.
//!
//! Run with: `cargo run --example courseware_invariant`

use txdpor::apps::courseware;
use txdpor::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two students concurrently enroll in course 0 (capacity 1); a third
    // session audits the enrollments.
    let mut p = program(vec![
        session(vec![courseware::enroll(0, 0)]),
        session(vec![courseware::enroll(1, 0)]),
        session(vec![courseware::get_enrollments(0)]),
    ]);
    p.init_values = courseware::initial_values();

    println!("== courseware: can the course capacity be exceeded? ==\n");
    for (label, base, target) in [
        (
            "CC",
            IsolationLevel::CausalConsistency,
            IsolationLevel::CausalConsistency,
        ),
        (
            "SI",
            IsolationLevel::CausalConsistency,
            IsolationLevel::SnapshotIsolation,
        ),
        (
            "SER",
            IsolationLevel::CausalConsistency,
            IsolationLevel::Serializability,
        ),
    ] {
        let config = if base == target {
            ExploreConfig::explore_ce(base)
        } else {
            ExploreConfig::explore_ce_star(base, target)
        };
        let report = explore_with_assertion(&p, config, Some(&courseware::capacity_invariant))?;
        println!(
            "{label:<4}: {:>4} histories explored, {} capacity violations ({:.2?})",
            report.outputs, report.assertion_violations, report.duration
        );
        if let Some(h) = &report.violating_history {
            println!("      example violating execution:");
            for line in h.display_with(&report.vars).to_string().lines() {
                println!("      {line}");
            }
        }
    }
    println!("\nThe double enrollment is admitted by Causal Consistency and Snapshot");
    println!("Isolation is enough to rule it out here (the two enrollments write the");
    println!("same enrollment set, so SI's write-conflict rule orders them).");
    Ok(())
}
