#!/usr/bin/env python3
"""Merge repeated fig14 runs into one baseline document (min-over-runs).

The committed `BENCH_fig14.json` is the minimum-over-N-runs of the same
configuration, which filters scheduler noise out of the wall-clock
column while the deterministic counts stay bit-identical by
construction. For every `(benchmark, algorithm)` row:

* rows that completed in every run must agree on `histories`,
  `end_states`, `explore_calls`, `levels` and `timed_out` (a mismatch
  aborts the merge — it means the build is not deterministic); the
  *whole row* of the fastest run is kept, so the allocation and engine
  counters stay consistent with the reported time;
* rows that timed out in every run keep the sample that made the most
  progress (max `explore_calls`) — their counts depend on where the
  clock cut them off and are not comparable;
* rows that timed out only in some runs keep the fastest completed
  sample.

The summary speedups are recomputed from the merged rows with the same
average-of-individual-speedups rule the fig14 binary uses; `workers`
and `timeouts` are carried over/recounted.

Usage: merge_fig14_runs.py out.json run1.json run2.json [...]
"""

import json
import sys


def slug(label):
    out = []
    last_sep = True
    for c in label:
        if c.isalnum() and c.isascii():
            out.append(c.lower())
            last_sep = False
        elif not last_sep:
            out.append("_")
            last_sep = True
    return "".join(out).rstrip("_")


def average_speedup(fast_rows, slow_rows):
    slow_by_bench = {r["benchmark"]: r for r in slow_rows if not r["timed_out"]}
    ratios = []
    for f in fast_rows:
        if f["timed_out"]:
            continue
        s = slow_by_bench.get(f["benchmark"])
        if s is not None:
            ratios.append(s["time_secs"] / max(f["time_secs"], 1e-6))
    return sum(ratios) / len(ratios) if ratios else None


def main():
    if len(sys.argv) < 4:
        print(__doc__, file=sys.stderr)
        return 2
    out_path, run_paths = sys.argv[1], sys.argv[2:]
    docs = [json.load(open(p)) for p in run_paths]

    for d, p in zip(docs[1:], run_paths[1:]):
        if d["config"] != docs[0]["config"]:
            print(f"{p}: config differs from {run_paths[0]}", file=sys.stderr)
            return 2

    keyed = []
    for d, p in zip(docs, run_paths):
        rows = {(r["benchmark"], r["algorithm"]): r for r in d["rows"]}
        if keyed and set(rows) != set(keyed[0][0]):
            print(f"{p}: row set differs from {run_paths[0]}", file=sys.stderr)
            return 2
        keyed.append((rows, p))

    gated = ("histories", "end_states", "explore_calls", "levels", "timed_out")
    merged_rows = []
    for key in [(r["benchmark"], r["algorithm"]) for r in docs[0]["rows"]]:
        samples = [rows[key] for rows, _ in keyed]
        completed = [s for s in samples if not s["timed_out"]]
        if completed:
            for s in completed[1:]:
                for field in gated:
                    if s[field] != completed[0][field]:
                        print(
                            f"{key[0]}/{key[1]}: {field} differs across runs "
                            f"({completed[0][field]} vs {s[field]}); "
                            "the build is not deterministic",
                            file=sys.stderr,
                        )
                        return 1
            merged_rows.append(min(completed, key=lambda s: s["time_secs"]))
        else:
            merged_rows.append(max(samples, key=lambda s: s["explore_calls"]))

    by_alg = {}
    for r in merged_rows:
        by_alg.setdefault(r["algorithm"], []).append(r)
    cc = by_alg.get("CC", [])
    summary = {}
    for other in ["RA + CC", "RC + CC", "true + CC", "DFS(CC)", "CC (no-memo)", "CC (no-opt)"]:
        if other not in by_alg and f"speedup_cc_over_{slug(other)}" not in docs[0]["summary"]:
            continue
        s = average_speedup(cc, by_alg.get(other, []))
        summary[f"speedup_cc_over_{slug(other)}"] = s
    for k, v in docs[0]["summary"].items():
        if k.startswith("speedup_") and k.endswith("_over_cc"):
            par_label = next((a for a in by_alg if a.startswith("CC par")), None)
            summary[k] = average_speedup(by_alg[par_label], cc) if par_label else None
    summary["workers"] = docs[0]["summary"]["workers"]
    summary["timeouts"] = sum(1 for r in merged_rows if r["timed_out"])

    doc = {
        "experiment": docs[0]["experiment"],
        "config": docs[0]["config"],
        "rows": merged_rows,
        "summary": summary,
    }
    with open(out_path, "w") as f:
        json.dump(doc, f, separators=(",", ":"))
        f.write("\n")
    tl = summary["timeouts"]
    print(f"merged {len(run_paths)} run(s): {len(merged_rows)} rows, {tl} timed out -> {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
