#!/usr/bin/env python3
"""Compare the serial and parallel rows of a fig14 JSON document.

Used by the CI `parallel-multicore` job: a single fig14 run with
`--workers N` measures both the serial `CC` configuration and the
`CC parN` configuration on every benchmark of the suite, so this script

* asserts the deterministic counts (`histories`, `end_states`,
  `explore_calls`) of each parallel row are bit-identical to the serial
  row of the same benchmark (the parallel exploration's core contract);
* computes the per-benchmark and average wall-clock speedup of the
  parallel rows and fails if the average is below `--min-speedup`
  (only enforced on benchmarks whose serial run took at least
  `--min-serial-secs`, so sub-second rows where scheduling overhead
  dominates do not drown the signal);
* writes a human-readable summary to `--out` for artifact upload.

Exit status: 0 on success, 1 on a count mismatch or insufficient
speedup, 2 on malformed input.
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("json_path", help="fig14 --json output containing CC and CC parN rows")
    ap.add_argument("--workers", type=int, default=4, help="N of the CC parN label")
    ap.add_argument("--min-speedup", type=float, default=1.5,
                    help="required average wall-clock speedup on the gated benchmarks")
    ap.add_argument("--min-serial-secs", type=float, default=2.0,
                    help="serial rows faster than this are count-checked but not speedup-gated")
    ap.add_argument("--out", default="parallel_comparison.txt",
                    help="summary file for artifact upload")
    args = ap.parse_args()

    try:
        with open(args.json_path) as f:
            doc = json.load(f)
        rows = doc["rows"]
    except (OSError, ValueError, KeyError) as e:
        print(f"cannot read {args.json_path}: {e}", file=sys.stderr)
        return 2

    label = f"CC par{args.workers}"
    serial = {r["benchmark"]: r for r in rows if r["algorithm"] == "CC"}
    parallel = {r["benchmark"]: r for r in rows if r["algorithm"] == label}
    if not parallel:
        print(f"no {label!r} rows in {args.json_path}", file=sys.stderr)
        return 2

    lines = [f"serial CC vs {label} ({args.json_path})", ""]
    failures = []
    ratios = []
    for bench, par in sorted(parallel.items()):
        ser = serial.get(bench)
        if ser is None:
            failures.append(f"{bench}: has a {label} row but no serial CC row")
            continue
        if ser["timed_out"] or par["timed_out"]:
            lines.append(f"{bench}: timed out (serial={ser['timed_out']}, "
                         f"parallel={par['timed_out']}); not compared")
            continue
        for key in ("histories", "end_states", "explore_calls"):
            if ser[key] != par[key]:
                failures.append(
                    f"{bench}: {key} differs (serial {ser[key]}, parallel {par[key]})")
        ratio = ser["time_secs"] / max(par["time_secs"], 1e-9)
        gated = ser["time_secs"] >= args.min_serial_secs
        if gated:
            ratios.append(ratio)
        lines.append(
            f"{bench}: serial {ser['time_secs']:.3f}s, parallel {par['time_secs']:.3f}s "
            f"-> {ratio:.2f}x (workers={par.get('workers')}, steals={par.get('steals')}, "
            f"shared_memo_hits={par.get('shared_memo_hits')})"
            + ("" if gated else " [below --min-serial-secs; not speedup-gated]"))

    if ratios:
        avg = sum(ratios) / len(ratios)
        lines.append("")
        lines.append(f"average speedup over {len(ratios)} gated benchmark(s): {avg:.2f}x "
                     f"(required >= {args.min_speedup:.2f}x)")
        if avg < args.min_speedup:
            failures.append(
                f"average speedup {avg:.2f}x is below the required {args.min_speedup:.2f}x")
    else:
        lines.append("")
        lines.append("no benchmark met --min-serial-secs; speedup not gated")

    for f_ in failures:
        lines.append(f"FAIL {f_}")
    report = "\n".join(lines) + "\n"
    print(report, end="")
    with open(args.out, "w") as f:
        f.write(report)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
