#!/usr/bin/env python3
"""Banned-pattern lint for the store and explore crates.

Rules (each violation prints one `path:line: message` and fails the run):

1. No `.unwrap(` anywhere in `crates/store/src` — test code included.
   The simulated store is the part of the tree that must never die with
   a context-free panic: use a typed error or a justified `expect("...")`
   that states the invariant making the failure impossible.
2. No `panic!(` in *non-test* code of `crates/store/src` and
   `crates/explore/src`. Invariant breaches are `unreachable!("...")`
   (they document why the arm cannot be taken); expected failures are
   typed errors. Test modules (`#[cfg(test)]` to end of file) and
   `tests/` directories keep their panics — that is what tests are for.
3. No `.unwrap(` in non-test `crates/explore/src` code.
4. No `Instant::now` / `SystemTime` in `crates/store/src/simulation.rs`:
   simulated time is logical by construction, and a single wall-clock
   read would silently break run-to-run determinism.

The `#[cfg(test)]` heuristic is deliberately coarse: everything from the
first `#[cfg(test)]` attribute to the end of the file is treated as test
code. Every file in these crates keeps its test module last, so the
approximation is exact today and fails safe (lints too much, never too
little) if a file ever interleaves them.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

UNWRAP = re.compile(r"\.unwrap\(")
PANIC = re.compile(r"(?<![a-zA-Z_!])panic!\s*\(")
WALL_CLOCK = re.compile(r"Instant::now|SystemTime")


def first_test_line(lines: list[str]) -> int:
    """1-based line of the first `#[cfg(test)]`, or len+1 if absent."""
    for i, line in enumerate(lines, start=1):
        if "#[cfg(test)]" in line:
            return i
    return len(lines) + 1


def lint_file(
    path: Path,
    pattern: re.Pattern[str],
    message: str,
    non_test_only: bool,
) -> list[str]:
    lines = path.read_text().splitlines()
    cutoff = first_test_line(lines) if non_test_only else len(lines) + 1
    out = []
    for i, line in enumerate(lines, start=1):
        if i >= cutoff:
            break
        if pattern.search(line):
            rel = path.relative_to(REPO)
            out.append(f"{rel}:{i}: {message}")
    return out


def rust_sources(root: Path) -> list[Path]:
    return sorted(root.rglob("*.rs"))


def main() -> int:
    violations: list[str] = []

    store_src = REPO / "crates" / "store" / "src"
    explore_src = REPO / "crates" / "explore" / "src"

    for f in rust_sources(store_src):
        violations += lint_file(
            f,
            UNWRAP,
            "`.unwrap(` is banned in crates/store — use a typed error "
            'or a justified `expect("...")`',
            non_test_only=False,
        )
        violations += lint_file(
            f,
            PANIC,
            "`panic!` is banned in non-test store code — use "
            '`unreachable!("...")` for invariants or a typed error',
            non_test_only=True,
        )

    for f in rust_sources(explore_src):
        violations += lint_file(
            f,
            UNWRAP,
            "`.unwrap(` is banned in non-test explore code — use a "
            'typed error or a justified `expect("...")`',
            non_test_only=True,
        )
        violations += lint_file(
            f,
            PANIC,
            "`panic!` is banned in non-test explore code — use "
            '`unreachable!("...")` for invariants or a typed error',
            non_test_only=True,
        )

    violations += lint_file(
        store_src / "simulation.rs",
        WALL_CLOCK,
        "wall-clock reads break simulation determinism — time is "
        "logical (`sim_time_us`) by construction",
        non_test_only=False,
    )

    for v in violations:
        print(v)
    n = len(violations)
    print(f"lint_sources: {n} violation(s)")
    return 1 if n else 0


if __name__ == "__main__":
    sys.exit(main())
