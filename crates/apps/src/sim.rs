//! Adapters from the benchmark applications to the simulated distributed
//! store (`txdpor-store`): deployment derivation and ready-made
//! simulation configs.
//!
//! The mixed deployments mirror the checking-side
//! [`MixedScenario`] rules: the
//! transaction types a scenario checks at Serializability are the ones the
//! store escalates to [`ProtocolMode::Serializable`], everything else runs
//! in causal mode. This keeps the *executed* protocol and the *claimed*
//! spec aligned by construction — and the `si-unchecked` deployment is the
//! deliberate misalignment the end-to-end pipeline must catch.

use txdpor_history::IsolationLevel;
use txdpor_store::{Deployment, FaultPlan, ProtocolMode, SimConfig};

use crate::workload::{client_program, App, MixedScenario, WorkloadConfig};

/// The mixed deployment of an application: causal by default, with the
/// transaction types of the app's `*Ser` mixed scenario escalated to
/// serializable mode.
pub fn mixed_deployment(app: App) -> Deployment {
    let scenario = MixedScenario::scenarios_for(app)
        .into_iter()
        .find(|s| {
            s.rules()
                .iter()
                .any(|&(_, l)| l == IsolationLevel::Serializability)
        })
        .expect("every app has a scenario with serializable rules");
    let rules = scenario
        .rules()
        .iter()
        .filter(|&&(_, l)| l == IsolationLevel::Serializability)
        .map(|&(name, _)| (name.to_string(), ProtocolMode::Serializable))
        .collect();
    let mut d = Deployment::mixed(rules);
    d.name = format!("mixed-{}", app.name());
    d
}

/// The deployments the simulation pipeline exercises for an application:
/// the three uniform honest protocols, the app's mixed deployment, and the
/// two deliberately broken ones — the over-claiming `si-unchecked` and the
/// crash-unsafe `no-wal` (which only misbehaves under crash faults).
pub fn app_deployments(app: App) -> Vec<Deployment> {
    vec![
        Deployment::ser(),
        Deployment::si(),
        Deployment::causal(),
        mixed_deployment(app),
        Deployment::si_unchecked(),
        Deployment::no_wal(),
    ]
}

/// Builds the simulation config for one app workload run: the client
/// program is generated from `(app, sessions, transactions, seed)` exactly
/// like the checking-side benchmarks, and the same seed drives the
/// network.
pub fn app_sim_config(
    app: App,
    sessions: usize,
    transactions_per_session: usize,
    seed: u64,
    deployment: Deployment,
    faults: FaultPlan,
) -> SimConfig {
    let workload = WorkloadConfig {
        app,
        sessions,
        transactions_per_session,
        seed,
    };
    SimConfig::new(client_program(&workload), deployment, seed, faults)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_deployments_escalate_the_ser_scenario_rules() {
        let d = mixed_deployment(App::Tpcc);
        assert_eq!(d.mode_of("payment"), ProtocolMode::Serializable);
        assert_eq!(d.mode_of("order_status"), ProtocolMode::Causal);
        assert_eq!(d.name, "mixed-tpcc");
        let cart = mixed_deployment(App::ShoppingCart);
        assert_eq!(cart.mode_of("add_item"), ProtocolMode::Serializable);
        assert_eq!(cart.mode_of("remove_item"), ProtocolMode::Serializable);
        assert_eq!(cart.mode_of("get_cart"), ProtocolMode::Causal);
        for app in App::ALL {
            let ds = app_deployments(app);
            assert_eq!(ds.len(), 6);
            // Exactly the two deliberately broken deployments are not
            // honest: the over-claimer and the crash-unsafe one.
            let dishonest: Vec<&str> = ds
                .iter()
                .filter(|d| !d.honest())
                .map(|d| d.name.as_str())
                .collect();
            assert_eq!(dishonest, ["si-unchecked", "no-wal"]);
        }
    }
}
