//! Wikipedia benchmark (Difallah et al. 2013, §7.2).
//!
//! Users fetch the content of a page (whether registered or not), add or
//! remove pages from their watch list and update pages. Page content and
//! revision counters are row variables indexed by page id; watch lists are
//! set variables per user.

use rand::Rng;
use txdpor_history::Value;
use txdpor_program::dsl::*;
use txdpor_program::TransactionDef;

/// Number of users in the benchmark domain.
pub const USERS: i64 = 2;
/// Number of pages in the benchmark domain.
pub const PAGES: i64 = 2;

fn page_content(page: i64) -> String {
    format!("page_content_{page}")
}

fn page_revision(page: i64) -> String {
    format!("page_revision_{page}")
}

fn page_restrictions(page: i64) -> String {
    format!("page_restrictions_{page}")
}

fn watchlist(user: i64) -> String {
    format!("watchlist_{user}")
}

/// Fetches the content, revision and restrictions of a page (anonymous
/// read).
pub fn get_page_anonymous(page: i64) -> TransactionDef {
    tx(
        "get_page_anonymous",
        vec![
            read("c", g(page_content(page))),
            read("r", g(page_restrictions(page))),
        ],
    )
}

/// Fetches a page as a registered user: also checks the user's watch list.
pub fn get_page_authenticated(user: i64, page: i64) -> TransactionDef {
    tx(
        "get_page_authenticated",
        vec![
            read("c", g(page_content(page))),
            read("r", g(page_restrictions(page))),
            read("w", g(watchlist(user))),
        ],
    )
}

/// Adds a page to the user's watch list.
pub fn add_to_watchlist(user: i64, page: i64) -> TransactionDef {
    tx(
        "add_to_watchlist",
        vec![
            read("w", g(watchlist(user))),
            write(g(watchlist(user)), set_insert(local("w"), cint(page))),
        ],
    )
}

/// Removes a page from the user's watch list.
pub fn remove_from_watchlist(user: i64, page: i64) -> TransactionDef {
    tx(
        "remove_from_watchlist",
        vec![
            read("w", g(watchlist(user))),
            iff(
                set_contains(local("w"), cint(page)),
                vec![write(
                    g(watchlist(user)),
                    set_remove(local("w"), cint(page)),
                )],
            ),
        ],
    )
}

/// Updates the content of a page and bumps its revision counter.
pub fn update_page(page: i64, new_content: i64) -> TransactionDef {
    tx(
        "update_page",
        vec![
            read("rev", g(page_revision(page))),
            write(g(page_content(page)), cint(new_content)),
            write(g(page_revision(page)), add(local("rev"), cint(1))),
        ],
    )
}

/// Initial values: empty watch lists, revision 0 for every page.
pub fn initial_values() -> Vec<(String, Value)> {
    let mut out = Vec::new();
    for u in 0..USERS {
        out.push((watchlist(u), Value::empty_set()));
    }
    for p in 0..PAGES {
        out.push((page_revision(p), Value::Int(0)));
    }
    out
}

/// Draws a random Wikipedia transaction with parameters from the benchmark
/// domain.
pub fn random_transaction<R: Rng>(rng: &mut R) -> TransactionDef {
    let user = rng.gen_range(0..USERS);
    let page = rng.gen_range(0..PAGES);
    match rng.gen_range(0..5) {
        0 => get_page_anonymous(page),
        1 => get_page_authenticated(user, page),
        2 => add_to_watchlist(user, page),
        3 => remove_from_watchlist(user, page),
        _ => update_page(page, rng.gen_range(1..10)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdpor_program::dsl::{program, session};
    use txdpor_program::execute_serial;

    #[test]
    fn update_bumps_revision() {
        let mut p = program(vec![session(vec![
            update_page(0, 5),
            update_page(0, 6),
            get_page_anonymous(0),
        ])]);
        p.init_values = initial_values();
        let (h, vars) = execute_serial(&p).unwrap();
        let rev = vars.get("page_revision_0").unwrap();
        let last = h
            .transactions()
            .filter(|t| t.writes_var(rev))
            .last()
            .unwrap();
        assert_eq!(
            last.visible_write_value(rev),
            Some(&Value::Int(2)),
            "two serial updates produce revision 2"
        );
    }

    #[test]
    fn watchlist_roundtrip() {
        let mut p = program(vec![session(vec![
            add_to_watchlist(0, 1),
            remove_from_watchlist(0, 1),
            get_page_authenticated(0, 1),
        ])]);
        p.init_values = initial_values();
        let (h, _) = execute_serial(&p).unwrap();
        assert!(h.transactions().all(|t| t.is_committed()));
    }

    #[test]
    fn random_transactions_are_well_formed() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let t = random_transaction(&mut rng);
            assert!(!t.body.is_empty());
        }
    }
}
