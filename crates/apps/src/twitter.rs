//! Twitter benchmark (Difallah et al. 2013, §7.2).
//!
//! Users follow other users, publish tweets and fetch their followers,
//! their own tweets and the tweets published by users they follow. The
//! follower/followee lists and per-user tweet lists are modelled as set
//! global variables; tweet contents are row variables indexed by tweet id.

use rand::Rng;
use txdpor_history::Value;
use txdpor_program::dsl::*;
use txdpor_program::TransactionDef;

/// Number of users in the benchmark domain.
pub const USERS: i64 = 2;
/// Number of distinct tweet ids in the benchmark domain.
pub const TWEETS: i64 = 2;

fn followers(user: i64) -> String {
    format!("followers_{user}")
}

fn follows(user: i64) -> String {
    format!("follows_{user}")
}

fn tweets(user: i64) -> String {
    format!("tweets_{user}")
}

fn tweet_content(id: i64) -> String {
    format!("tweet_{id}")
}

/// `follower` starts following `followee` (updates both adjacency sets).
pub fn follow(follower: i64, followee: i64) -> TransactionDef {
    tx(
        "follow",
        vec![
            read("fw", g(followers(followee))),
            write(
                g(followers(followee)),
                set_insert(local("fw"), cint(follower)),
            ),
            read("fl", g(follows(follower))),
            write(
                g(follows(follower)),
                set_insert(local("fl"), cint(followee)),
            ),
        ],
    )
}

/// `user` publishes tweet `id` with content `content`.
pub fn publish_tweet(user: i64, id: i64, content: i64) -> TransactionDef {
    tx(
        "publish_tweet",
        vec![
            write(g(tweet_content(id)), cint(content)),
            read("tw", g(tweets(user))),
            write(g(tweets(user)), set_insert(local("tw"), cint(id))),
        ],
    )
}

/// Reads the followers of `user`.
pub fn get_followers(user: i64) -> TransactionDef {
    tx("get_followers", vec![read("fw", g(followers(user)))])
}

/// Reads the tweets of `user` and the content of one tweet.
pub fn get_tweets(user: i64, tweet_id: i64) -> TransactionDef {
    tx(
        "get_tweets",
        vec![
            read("tw", g(tweets(user))),
            read("c", g(tweet_content(tweet_id))),
        ],
    )
}

/// Reads `user`'s followee list and the timeline of one followee.
pub fn get_timeline(user: i64, followee: i64, tweet_id: i64) -> TransactionDef {
    tx(
        "get_timeline",
        vec![
            read("fl", g(follows(user))),
            read("tw", g(tweets(followee))),
            read("c", g(tweet_content(tweet_id))),
        ],
    )
}

/// Initial values: all follower/followee/tweet sets empty.
pub fn initial_values() -> Vec<(String, Value)> {
    let mut out = Vec::new();
    for u in 0..USERS {
        out.push((followers(u), Value::empty_set()));
        out.push((follows(u), Value::empty_set()));
        out.push((tweets(u), Value::empty_set()));
    }
    out
}

/// Draws a random Twitter transaction with parameters from the benchmark
/// domain.
pub fn random_transaction<R: Rng>(rng: &mut R) -> TransactionDef {
    let user = rng.gen_range(0..USERS);
    let other = (user + 1) % USERS;
    let id = rng.gen_range(0..TWEETS);
    match rng.gen_range(0..5) {
        0 => follow(user, other),
        1 => publish_tweet(user, id, rng.gen_range(1..10)),
        2 => get_followers(user),
        3 => get_tweets(user, id),
        _ => get_timeline(user, other, id),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdpor_program::dsl::{program, session};
    use txdpor_program::execute_serial;

    #[test]
    fn follow_then_get_followers() {
        let mut p = program(vec![session(vec![follow(0, 1), get_followers(1)])]);
        p.init_values = initial_values();
        let (h, vars) = execute_serial(&p).unwrap();
        assert_eq!(h.num_transactions(), 2);
        let fw1 = vars.get("followers_1").unwrap();
        assert_eq!(h.writers_of(fw1).len(), 2);
    }

    #[test]
    fn publish_and_read_timeline() {
        let mut p = program(vec![session(vec![
            follow(0, 1),
            publish_tweet(1, 0, 42),
            get_timeline(0, 1, 0),
        ])]);
        p.init_values = initial_values();
        let (h, _) = execute_serial(&p).unwrap();
        assert_eq!(h.num_transactions(), 3);
        assert!(h.transactions().all(|t| t.is_committed()));
    }

    #[test]
    fn random_transactions_are_well_formed() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let t = random_transaction(&mut rng);
            assert!(!t.body.is_empty());
        }
    }
}
