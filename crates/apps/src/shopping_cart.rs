//! Shopping Cart benchmark (Sivaramakrishnan et al. 2015, §7.2).
//!
//! Users add, get and remove items from their shopping cart and modify the
//! quantities of the items present in the cart. The cart of user `u` is
//! modelled as a set global variable `cart_u` holding item ids, with one
//! quantity variable `qty_u_i` per (user, item) pair — the same "set
//! variable plus row variables" encoding of SQL tables the paper uses.

use rand::Rng;
use txdpor_program::dsl::*;
use txdpor_program::TransactionDef;

/// Number of users in the benchmark domain.
pub const USERS: i64 = 2;
/// Number of items in the benchmark domain.
pub const ITEMS: i64 = 2;

fn cart(user: i64) -> String {
    format!("cart_{user}")
}

fn qty(user: i64, item: i64) -> String {
    format!("qty_{user}_{item}")
}

/// Adds `item` with quantity `quantity` to `user`'s cart.
pub fn add_item(user: i64, item: i64, quantity: i64) -> TransactionDef {
    tx(
        "add_item",
        vec![
            read("c", g(cart(user))),
            write(g(cart(user)), set_insert(local("c"), cint(item))),
            write(g(qty(user, item)), cint(quantity)),
        ],
    )
}

/// Removes `item` from `user`'s cart if present.
pub fn remove_item(user: i64, item: i64) -> TransactionDef {
    tx(
        "remove_item",
        vec![
            read("c", g(cart(user))),
            iff(
                set_contains(local("c"), cint(item)),
                vec![
                    write(g(cart(user)), set_remove(local("c"), cint(item))),
                    write(g(qty(user, item)), cint(0)),
                ],
            ),
        ],
    )
}

/// Changes the quantity of `item` in `user`'s cart if present.
pub fn change_quantity(user: i64, item: i64, quantity: i64) -> TransactionDef {
    tx(
        "change_quantity",
        vec![
            read("c", g(cart(user))),
            iff(
                set_contains(local("c"), cint(item)),
                vec![write(g(qty(user, item)), cint(quantity))],
            ),
        ],
    )
}

/// Reads `user`'s cart and the quantity of `item`.
pub fn get_cart(user: i64, item: i64) -> TransactionDef {
    tx(
        "get_cart",
        vec![read("c", g(cart(user))), read("q", g(qty(user, item)))],
    )
}

/// Initial values for the shopping-cart benchmark: every cart starts empty.
pub fn initial_values() -> Vec<(String, txdpor_history::Value)> {
    (0..USERS)
        .map(|u| (cart(u), txdpor_history::Value::empty_set()))
        .collect()
}

/// Draws a random shopping-cart transaction with parameters from the
/// benchmark domain.
pub fn random_transaction<R: Rng>(rng: &mut R) -> TransactionDef {
    let user = rng.gen_range(0..USERS);
    let item = rng.gen_range(0..ITEMS);
    match rng.gen_range(0..4) {
        0 => add_item(user, item, rng.gen_range(1..4)),
        1 => remove_item(user, item),
        2 => change_quantity(user, item, rng.gen_range(1..4)),
        _ => get_cart(user, item),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdpor_program::dsl::{program, session};
    use txdpor_program::execute_serial;

    #[test]
    fn serial_add_then_get_sees_item() {
        let mut p = program(vec![session(vec![add_item(0, 1, 2), get_cart(0, 1)])]);
        p.init_values = initial_values();
        let (h, vars) = execute_serial(&p).unwrap();
        assert_eq!(h.num_transactions(), 2);
        let cart0 = vars.get("cart_0").unwrap();
        // The add transaction writes a singleton cart.
        let writers = h.writers_of(cart0);
        assert_eq!(writers.len(), 2);
    }

    #[test]
    fn remove_on_empty_cart_writes_nothing() {
        let mut p = program(vec![session(vec![remove_item(0, 0)])]);
        p.init_values = initial_values();
        let (h, _) = execute_serial(&p).unwrap();
        let t = h.transactions().next().unwrap();
        assert_eq!(t.write_events().count(), 0);
    }

    #[test]
    fn random_transactions_are_well_formed() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let t = random_transaction(&mut rng);
            assert!(!t.body.is_empty());
            assert!(["add_item", "remove_item", "change_quantity", "get_cart"]
                .contains(&t.name.as_str()));
        }
    }
}
