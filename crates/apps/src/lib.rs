//! Benchmark database-backed applications and workload generators.
//!
//! This crate models the five applications used in the evaluation of the
//! PLDI 2023 paper *"Dynamic Partial Order Reduction for Checking
//! Correctness against Transaction Isolation Levels"* (§7.2): Shopping
//! Cart, Twitter, Courseware, Wikipedia and TPC-C. Each application is a
//! set of parameterised transaction templates written in the program DSL
//! of `txdpor-program`; SQL tables are modelled as a "set" global variable
//! holding row ids plus one global variable per row, exactly as described
//! in the paper.
//!
//! The [`workload`] module generates the bounded client programs of the
//! paper's experiments (a number of sessions, each a sequence of
//! transactions with concrete parameters) from a seed.
//!
//! # Example
//!
//! ```
//! use txdpor_apps::workload::{client_program, App, WorkloadConfig};
//! use txdpor_explore::{explore, ExploreConfig};
//! use txdpor_history::IsolationLevel;
//!
//! let config = WorkloadConfig { app: App::Twitter, sessions: 2, transactions_per_session: 1, seed: 1 };
//! let program = client_program(&config);
//! let report = explore(&program, ExploreConfig::explore_ce(IsolationLevel::CausalConsistency))?;
//! assert!(report.outputs >= 1);
//! # Ok::<(), txdpor_explore::ExploreError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod courseware;
pub mod shopping_cart;
pub mod sim;
pub mod tpcc;
pub mod twitter;
pub mod wikipedia;
pub mod workload;

pub use sim::{app_deployments, app_sim_config, mixed_deployment};
pub use workload::{
    benchmark_programs, client_program, paper_benchmark_suite, App, WorkloadConfig,
};
