//! TPC-C benchmark (TPC 2010, §7.2): a bounded model of the online
//! shopping workload with its five transaction types — new-order,
//! payment, order-status, delivery and stock-level.
//!
//! The warehouse keeps a per-item stock counter and a year-to-date total;
//! each customer has a balance and a last-order pointer; orders are row
//! variables indexed by a dynamically read order id (`order[oid]`), which
//! exercises the dynamically indexed global references of the program
//! model (SQL rows addressed through a previously read key).

use rand::Rng;
use txdpor_history::Value;
use txdpor_program::dsl::*;
use txdpor_program::TransactionDef;

/// Number of customers in the benchmark domain.
pub const CUSTOMERS: i64 = 2;
/// Number of items in the benchmark domain.
pub const ITEMS: i64 = 2;
/// Initial stock of every item.
pub const INITIAL_STOCK: i64 = 10;

fn stock(item: i64) -> String {
    format!("stock_{item}")
}

fn next_order_id() -> String {
    "next_order_id".to_owned()
}

fn order(_: ()) -> String {
    "order".to_owned()
}

fn order_status_of(customer: i64) -> String {
    format!("last_order_{customer}")
}

fn balance(customer: i64) -> String {
    format!("balance_{customer}")
}

fn ytd() -> String {
    "warehouse_ytd".to_owned()
}

fn next_delivery() -> String {
    "next_delivery".to_owned()
}

/// New-order: allocates an order id, records the order line, decrements the
/// item's stock and remembers the customer's last order.
pub fn new_order(customer: i64, item: i64, quantity: i64) -> TransactionDef {
    tx(
        "new_order",
        vec![
            read("oid", g(next_order_id())),
            write(g(next_order_id()), add(local("oid"), cint(1))),
            write(gi(order(()), local("oid")), cint(item)),
            read("s", g(stock(item))),
            write(g(stock(item)), sub(local("s"), cint(quantity))),
            write(g(order_status_of(customer)), local("oid")),
        ],
    )
}

/// Payment: debits the customer's balance and credits the warehouse
/// year-to-date total.
pub fn payment(customer: i64, amount: i64) -> TransactionDef {
    tx(
        "payment",
        vec![
            read("b", g(balance(customer))),
            write(g(balance(customer)), sub(local("b"), cint(amount))),
            read("y", g(ytd())),
            write(g(ytd()), add(local("y"), cint(amount))),
        ],
    )
}

/// Order-status: reads the customer's last order id and the corresponding
/// order row.
pub fn order_status(customer: i64) -> TransactionDef {
    tx(
        "order_status",
        vec![
            read("oid", g(order_status_of(customer))),
            read("o", gi(order(()), local("oid"))),
        ],
    )
}

/// Delivery: pops the next order to deliver and marks it delivered.
pub fn delivery() -> TransactionDef {
    tx(
        "delivery",
        vec![
            read("d", g(next_delivery())),
            read("oid", g(next_order_id())),
            iff(
                lt(local("d"), local("oid")),
                vec![
                    write(gi("delivered", local("d")), cint(1)),
                    write(g(next_delivery()), add(local("d"), cint(1))),
                ],
            ),
        ],
    )
}

/// Stock-level: reads the stock of an item and compares it to a threshold.
pub fn stock_level(item: i64, threshold: i64) -> TransactionDef {
    tx(
        "stock_level",
        vec![
            read("s", g(stock(item))),
            assign("low", lt(local("s"), cint(threshold))),
        ],
    )
}

/// Initial values: full stock, order counters at zero, balances at 100.
pub fn initial_values() -> Vec<(String, Value)> {
    let mut out = vec![
        (next_order_id(), Value::Int(0)),
        (next_delivery(), Value::Int(0)),
        (ytd(), Value::Int(0)),
    ];
    for i in 0..ITEMS {
        out.push((stock(i), Value::Int(INITIAL_STOCK)));
    }
    for c in 0..CUSTOMERS {
        out.push((balance(c), Value::Int(100)));
        out.push((order_status_of(c), Value::Int(-1)));
    }
    out
}

/// Draws a random TPC-C transaction with parameters from the benchmark
/// domain, following the usual mix (new-order and payment dominate).
pub fn random_transaction<R: Rng>(rng: &mut R) -> TransactionDef {
    let customer = rng.gen_range(0..CUSTOMERS);
    let item = rng.gen_range(0..ITEMS);
    match rng.gen_range(0..8) {
        0..=2 => new_order(customer, item, rng.gen_range(1..3)),
        3..=5 => payment(customer, rng.gen_range(1..20)),
        6 => order_status(customer),
        _ => {
            if rng.gen_bool(0.5) {
                delivery()
            } else {
                stock_level(item, 5)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdpor_program::dsl::{program, session};
    use txdpor_program::execute_serial;

    #[test]
    fn new_order_decrements_stock_and_allocates_id() {
        let mut p = program(vec![session(vec![
            new_order(0, 0, 2),
            new_order(1, 0, 3),
            order_status(1),
        ])]);
        p.init_values = initial_values();
        let (h, vars) = execute_serial(&p).unwrap();
        let stock0 = vars.get("stock_0").unwrap();
        let last = h
            .transactions()
            .filter(|t| t.writes_var(stock0))
            .last()
            .unwrap();
        assert_eq!(last.visible_write_value(stock0), Some(&Value::Int(5)));
        // Two orders were allocated at distinct ids.
        assert!(vars.get("order[0]").is_some());
        assert!(vars.get("order[1]").is_some());
    }

    #[test]
    fn delivery_consumes_pending_orders() {
        let mut p = program(vec![session(vec![
            new_order(0, 0, 1),
            delivery(),
            delivery(),
        ])]);
        p.init_values = initial_values();
        let (h, vars) = execute_serial(&p).unwrap();
        // Only one order exists so the second delivery is a no-op.
        let delivered0 = vars.get("delivered[0]").unwrap();
        assert_eq!(h.writers_of(delivered0).len(), 2);
        assert!(vars.get("delivered[1]").is_none());
    }

    #[test]
    fn payment_moves_money() {
        let mut p = program(vec![session(vec![payment(0, 10), payment(0, 5)])]);
        p.init_values = initial_values();
        let (h, vars) = execute_serial(&p).unwrap();
        let bal = vars.get("balance_0").unwrap();
        let ytd_var = vars.get("warehouse_ytd").unwrap();
        let last_bal = h
            .transactions()
            .filter(|t| t.writes_var(bal))
            .last()
            .unwrap();
        assert_eq!(last_bal.visible_write_value(bal), Some(&Value::Int(85)));
        let last_ytd = h
            .transactions()
            .filter(|t| t.writes_var(ytd_var))
            .last()
            .unwrap();
        assert_eq!(last_ytd.visible_write_value(ytd_var), Some(&Value::Int(15)));
    }

    #[test]
    fn random_transactions_are_well_formed() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        for _ in 0..50 {
            let t = random_transaction(&mut rng);
            assert!(!t.body.is_empty());
        }
    }
}
