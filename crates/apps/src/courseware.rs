//! Courseware benchmark (Nair et al. 2020, §7.2).
//!
//! The application manages the enrollment of students in courses: courses
//! can be opened, closed and deleted; students enroll only if the course is
//! open and its capacity has not been reached. The set of enrolled
//! students of a course is a set global variable `enrolled_c`, with
//! `open_c` and `capacity_c` as row variables.
//!
//! The classical correctness property — the number of enrolled students
//! never exceeds the capacity — is provided as an assertion usable with
//! `txdpor_explore::explore_with_assertion`; it is violated under weak
//! isolation levels (two concurrent enrollments both observing a free
//! seat) and holds under Serializability.

use rand::Rng;
use txdpor_explore::AssertionCtx;
use txdpor_history::Value;
use txdpor_program::dsl::*;
use txdpor_program::TransactionDef;

/// Number of courses in the benchmark domain.
pub const COURSES: i64 = 2;
/// Number of students in the benchmark domain.
pub const STUDENTS: i64 = 2;
/// Capacity used when opening a course.
pub const DEFAULT_CAPACITY: i64 = 1;

fn open(course: i64) -> String {
    format!("open_{course}")
}

fn capacity(course: i64) -> String {
    format!("capacity_{course}")
}

fn enrolled(course: i64) -> String {
    format!("enrolled_{course}")
}

/// Opens a course with the given capacity.
pub fn open_course(course: i64, cap: i64) -> TransactionDef {
    tx(
        "open_course",
        vec![
            write(g(open(course)), cint(1)),
            write(g(capacity(course)), cint(cap)),
            write(g(enrolled(course)), empty_set()),
        ],
    )
}

/// Closes a course (no further enrollments allowed).
pub fn close_course(course: i64) -> TransactionDef {
    tx("close_course", vec![write(g(open(course)), cint(0))])
}

/// Deletes a course: closes it and clears its enrollments.
pub fn delete_course(course: i64) -> TransactionDef {
    tx(
        "delete_course",
        vec![
            write(g(open(course)), cint(0)),
            write(g(enrolled(course)), empty_set()),
        ],
    )
}

/// Enrolls `student` in `course` if the course is open and has a free seat.
pub fn enroll(student: i64, course: i64) -> TransactionDef {
    tx(
        "enroll",
        vec![
            read("o", g(open(course))),
            read("cap", g(capacity(course))),
            read("e", g(enrolled(course))),
            iff(
                and(
                    eq(local("o"), cint(1)),
                    lt(set_size(local("e")), local("cap")),
                ),
                vec![write(
                    g(enrolled(course)),
                    set_insert(local("e"), cint(student)),
                )],
            ),
        ],
    )
}

/// Reads all enrollments of a course.
pub fn get_enrollments(course: i64) -> TransactionDef {
    tx("get_enrollments", vec![read("e", g(enrolled(course)))])
}

/// Initial values: every course is open with the default capacity and no
/// enrollments (so that client programs exercising `enroll` are meaningful
/// without a mandatory `open_course` prefix).
pub fn initial_values() -> Vec<(String, Value)> {
    let mut out = Vec::new();
    for c in 0..COURSES {
        out.push((open(c), Value::Int(1)));
        out.push((capacity(c), Value::Int(DEFAULT_CAPACITY)));
        out.push((enrolled(c), Value::empty_set()));
    }
    out
}

/// The registration invariant: for every course, the number of *distinct
/// successful enrollments* (committed `enroll` transactions that actually
/// wrote the enrollment set) does not exceed the configured capacity.
///
/// Under Causal Consistency two concurrent enrollments can both observe an
/// empty course of capacity 1 and both commit, violating the invariant.
pub fn capacity_invariant(ctx: &AssertionCtx<'_>) -> bool {
    for c in 0..COURSES {
        let successful = ctx.committed_writers_named("enroll", &enrolled(c));
        if successful as i64 > DEFAULT_CAPACITY {
            return false;
        }
    }
    true
}

/// Draws a random courseware transaction with parameters from the
/// benchmark domain.
pub fn random_transaction<R: Rng>(rng: &mut R) -> TransactionDef {
    let course = rng.gen_range(0..COURSES);
    let student = rng.gen_range(0..STUDENTS);
    match rng.gen_range(0..5) {
        0 => open_course(course, DEFAULT_CAPACITY),
        1 => close_course(course),
        2 => delete_course(course),
        3 => enroll(student, course),
        _ => get_enrollments(course),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdpor_explore::{explore_with_assertion, ExploreConfig};
    use txdpor_history::IsolationLevel;
    use txdpor_program::dsl::{program, session};
    use txdpor_program::execute_serial;

    #[test]
    fn serial_enrollment_respects_capacity() {
        let mut p = program(vec![session(vec![
            enroll(0, 0),
            enroll(1, 0),
            get_enrollments(0),
        ])]);
        p.init_values = initial_values();
        let (h, _) = execute_serial(&p).unwrap();
        // The second enrollment observes a full course and does not write.
        let enroll_writes: usize = h
            .transactions()
            .filter(|t| t.program_index < 2)
            .map(|t| t.write_events().count())
            .sum();
        assert_eq!(enroll_writes, 1);
    }

    #[test]
    fn capacity_violated_under_cc_but_not_under_ser() {
        let mut p = program(vec![
            session(vec![enroll(0, 0)]),
            session(vec![enroll(1, 0)]),
        ]);
        p.init_values = initial_values();
        let cc = explore_with_assertion(
            &p,
            ExploreConfig::explore_ce(IsolationLevel::CausalConsistency),
            Some(&capacity_invariant),
        )
        .unwrap();
        assert!(
            cc.assertion_violations > 0,
            "double enrollment not found under CC"
        );
        let ser = explore_with_assertion(
            &p,
            ExploreConfig::explore_ce_star(
                IsolationLevel::CausalConsistency,
                IsolationLevel::Serializability,
            ),
            Some(&capacity_invariant),
        )
        .unwrap();
        assert_eq!(
            ser.assertion_violations, 0,
            "serializability must forbid it"
        );
    }

    #[test]
    fn random_transactions_are_well_formed() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let t = random_transaction(&mut rng);
            assert!(!t.body.is_empty());
        }
    }
}
