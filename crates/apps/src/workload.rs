//! Client-program (workload) generation for the benchmark applications
//! (§7.2–7.3).
//!
//! A *client program* consists of a number of sessions, each a sequence of
//! transactions drawn from the application's transaction types with
//! concrete parameters. Generation is seeded so that the "five independent
//! client programs per application" of the paper's evaluation are
//! reproducible.

use rand::rngs::StdRng;
use rand::SeedableRng;

use txdpor_history::{IsolationLevel, LevelSpec};
use txdpor_program::{Program, Session, TransactionDef};

use crate::{courseware, shopping_cart, tpcc, twitter, wikipedia};

/// The five benchmark applications of the paper's evaluation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum App {
    /// Shopping Cart (Sivaramakrishnan et al. 2015).
    ShoppingCart,
    /// Twitter (Difallah et al. 2013).
    Twitter,
    /// Courseware (Nair et al. 2020).
    Courseware,
    /// Wikipedia (Difallah et al. 2013).
    Wikipedia,
    /// TPC-C (TPC 2010).
    Tpcc,
}

impl App {
    /// All applications, in the order used by the paper's tables.
    pub const ALL: [App; 5] = [
        App::Courseware,
        App::ShoppingCart,
        App::Tpcc,
        App::Twitter,
        App::Wikipedia,
    ];

    /// Lowercase name used in benchmark identifiers (`tpcc-3`, …).
    pub fn name(self) -> &'static str {
        match self {
            App::ShoppingCart => "shoppingCart",
            App::Twitter => "twitter",
            App::Courseware => "courseware",
            App::Wikipedia => "wikipedia",
            App::Tpcc => "tpcc",
        }
    }

    fn random_transaction(self, rng: &mut StdRng) -> TransactionDef {
        match self {
            App::ShoppingCart => shopping_cart::random_transaction(rng),
            App::Twitter => twitter::random_transaction(rng),
            App::Courseware => courseware::random_transaction(rng),
            App::Wikipedia => wikipedia::random_transaction(rng),
            App::Tpcc => tpcc::random_transaction(rng),
        }
    }

    fn initial_values(self) -> Vec<(String, txdpor_history::Value)> {
        match self {
            App::ShoppingCart => shopping_cart::initial_values(),
            App::Twitter => twitter::initial_values(),
            App::Courseware => courseware::initial_values(),
            App::Wikipedia => wikipedia::initial_values(),
            App::Tpcc => tpcc::initial_values(),
        }
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters of a generated client program.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Application the transactions are drawn from.
    pub app: App,
    /// Number of parallel sessions.
    pub sessions: usize,
    /// Number of transactions per session.
    pub transactions_per_session: usize,
    /// Seed controlling the choice of transaction types and parameters.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The configuration of the paper's first experiment: 3 sessions with 3
    /// transactions each.
    pub fn paper_default(app: App, seed: u64) -> Self {
        WorkloadConfig {
            app,
            sessions: 3,
            transactions_per_session: 3,
            seed,
        }
    }
}

/// Generates a client program from a workload configuration.
pub fn client_program(config: &WorkloadConfig) -> Program {
    let mut rng = StdRng::seed_from_u64(
        config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(config.app as u64),
    );
    let sessions = (0..config.sessions)
        .map(|_| {
            Session::new(
                (0..config.transactions_per_session)
                    .map(|_| config.app.random_transaction(&mut rng))
                    .collect(),
            )
        })
        .collect();
    let mut program = Program::new(sessions);
    program.init_values = config.app.initial_values();
    program
}

/// Generates the `variants` independent client programs of an application
/// used by the paper's first experiment, named `"<app>-<i>"`.
pub fn benchmark_programs(
    app: App,
    variants: usize,
    sessions: usize,
    transactions_per_session: usize,
) -> Vec<(String, Program)> {
    (1..=variants)
        .map(|i| {
            let config = WorkloadConfig {
                app,
                sessions,
                transactions_per_session,
                seed: i as u64,
            };
            (format!("{}-{i}", app.name()), client_program(&config))
        })
        .collect()
}

/// A paper-shaped *mixed isolation* scenario: a per-transaction-type level
/// assignment over one application's workload, mirroring how production
/// databases run read-only analytics at Read Committed next to payment
/// transactions at Serializability. Each scenario names a default level
/// plus a set of `transaction name ↦ level` rules; applied to a concrete
/// client program it yields the [`LevelSpec`] assigning every generated
/// transaction (by its session and position) the level of its type.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MixedScenario {
    /// Courseware: enrolments must be serializable, the rest stays causal.
    CoursewareEnrollSer,
    /// Courseware: enrollment queries demoted to Read Committed in an
    /// otherwise serializable deployment.
    CoursewareReadsRc,
    /// Courseware: enrollment queries promoted to Prefix Consistency
    /// (snapshot reads over a causal deployment, no write-conflict rule).
    CoursewareReadsPc,
    /// Shopping cart: cart mutations at SER, browsing stays causal.
    ShoppingCartAddSer,
    /// Shopping cart: `get_cart` at RC next to serializable mutations.
    ShoppingCartReadsRc,
    /// Shopping cart: `get_cart` at Prefix Consistency over a causal
    /// deployment — the cart is read from a committed prefix snapshot.
    ShoppingCartReadsPc,
    /// TPC-C: `payment` at SER while `new_order` and the rest run causal
    /// (the canonical mixed-workload example).
    TpccPaymentSer,
    /// TPC-C: the read-only `order_status`/`stock_level` queries at RC in
    /// a serializable deployment.
    TpccReadsRc,
    /// TPC-C: `order_status`/`stock_level` at Prefix Consistency — the
    /// classic snapshot-query pattern over a causal deployment.
    TpccStatusPc,
    /// Twitter: publishing tweets and follows at SER, timeline stays
    /// causal.
    TwitterTweetSer,
    /// Twitter: timeline reads at RC next to serializable writes.
    TwitterTimelineRc,
    /// Twitter: timeline reads at Prefix Consistency over a causal
    /// deployment — the timeline observes a committed prefix snapshot.
    TwitterTimelinePc,
    /// Wikipedia: page updates at SER, everything else causal.
    WikipediaUpdateSer,
    /// Wikipedia: anonymous/authenticated page reads at RC in a
    /// serializable deployment.
    WikipediaReadsRc,
    /// Wikipedia: page reads at Prefix Consistency over a causal
    /// deployment — readers see a committed prefix snapshot of the wiki.
    WikipediaReadsPc,
}

impl MixedScenario {
    /// All scenarios — three per application, in [`App::ALL`] order.
    pub const ALL: [MixedScenario; 15] = [
        MixedScenario::CoursewareEnrollSer,
        MixedScenario::CoursewareReadsRc,
        MixedScenario::CoursewareReadsPc,
        MixedScenario::ShoppingCartAddSer,
        MixedScenario::ShoppingCartReadsRc,
        MixedScenario::ShoppingCartReadsPc,
        MixedScenario::TpccPaymentSer,
        MixedScenario::TpccReadsRc,
        MixedScenario::TpccStatusPc,
        MixedScenario::TwitterTweetSer,
        MixedScenario::TwitterTimelineRc,
        MixedScenario::TwitterTimelinePc,
        MixedScenario::WikipediaUpdateSer,
        MixedScenario::WikipediaReadsRc,
        MixedScenario::WikipediaReadsPc,
    ];

    /// The application whose workloads the scenario applies to.
    pub fn app(self) -> App {
        match self {
            MixedScenario::CoursewareEnrollSer
            | MixedScenario::CoursewareReadsRc
            | MixedScenario::CoursewareReadsPc => App::Courseware,
            MixedScenario::ShoppingCartAddSer
            | MixedScenario::ShoppingCartReadsRc
            | MixedScenario::ShoppingCartReadsPc => App::ShoppingCart,
            MixedScenario::TpccPaymentSer
            | MixedScenario::TpccReadsRc
            | MixedScenario::TpccStatusPc => App::Tpcc,
            MixedScenario::TwitterTweetSer
            | MixedScenario::TwitterTimelineRc
            | MixedScenario::TwitterTimelinePc => App::Twitter,
            MixedScenario::WikipediaUpdateSer
            | MixedScenario::WikipediaReadsRc
            | MixedScenario::WikipediaReadsPc => App::Wikipedia,
        }
    }

    /// Globally unique scenario name (`<app>:<slug>`), used in benchmark
    /// labels and the fig14 JSON.
    pub fn name(self) -> &'static str {
        match self {
            MixedScenario::CoursewareEnrollSer => "courseware:enroll-ser",
            MixedScenario::CoursewareReadsRc => "courseware:reads-rc",
            MixedScenario::CoursewareReadsPc => "courseware:reads-pc",
            MixedScenario::ShoppingCartAddSer => "shoppingCart:cart-ser",
            MixedScenario::ShoppingCartReadsRc => "shoppingCart:reads-rc",
            MixedScenario::ShoppingCartReadsPc => "shoppingCart:reads-pc",
            MixedScenario::TpccPaymentSer => "tpcc:pay-ser",
            MixedScenario::TpccReadsRc => "tpcc:reads-rc",
            MixedScenario::TpccStatusPc => "tpcc:status-pc",
            MixedScenario::TwitterTweetSer => "twitter:tweet-ser",
            MixedScenario::TwitterTimelineRc => "twitter:timeline-rc",
            MixedScenario::TwitterTimelinePc => "twitter:timeline-pc",
            MixedScenario::WikipediaUpdateSer => "wikipedia:update-ser",
            MixedScenario::WikipediaReadsRc => "wikipedia:reads-rc",
            MixedScenario::WikipediaReadsPc => "wikipedia:reads-pc",
        }
    }

    /// The level of every transaction type without a rule.
    pub fn default_level(self) -> IsolationLevel {
        match self {
            MixedScenario::CoursewareEnrollSer
            | MixedScenario::ShoppingCartAddSer
            | MixedScenario::TpccPaymentSer
            | MixedScenario::TwitterTweetSer
            | MixedScenario::WikipediaUpdateSer
            | MixedScenario::CoursewareReadsPc
            | MixedScenario::ShoppingCartReadsPc
            | MixedScenario::TpccStatusPc
            | MixedScenario::TwitterTimelinePc
            | MixedScenario::WikipediaReadsPc => IsolationLevel::CausalConsistency,
            MixedScenario::CoursewareReadsRc
            | MixedScenario::ShoppingCartReadsRc
            | MixedScenario::TpccReadsRc
            | MixedScenario::TwitterTimelineRc
            | MixedScenario::WikipediaReadsRc => IsolationLevel::Serializability,
        }
    }

    /// The `transaction name ↦ level` rules of the scenario.
    pub fn rules(self) -> &'static [(&'static str, IsolationLevel)] {
        use IsolationLevel::{PrefixConsistency, ReadCommitted, Serializability};
        match self {
            MixedScenario::CoursewareEnrollSer => &[("enroll", Serializability)],
            MixedScenario::CoursewareReadsRc => &[("get_enrollments", ReadCommitted)],
            MixedScenario::CoursewareReadsPc => &[("get_enrollments", PrefixConsistency)],
            MixedScenario::ShoppingCartAddSer => &[
                ("add_item", Serializability),
                ("remove_item", Serializability),
                ("change_quantity", Serializability),
            ],
            MixedScenario::ShoppingCartReadsRc => &[("get_cart", ReadCommitted)],
            MixedScenario::ShoppingCartReadsPc => &[("get_cart", PrefixConsistency)],
            MixedScenario::TpccPaymentSer => &[("payment", Serializability)],
            MixedScenario::TpccReadsRc => &[
                ("order_status", ReadCommitted),
                ("stock_level", ReadCommitted),
            ],
            MixedScenario::TpccStatusPc => &[
                ("order_status", PrefixConsistency),
                ("stock_level", PrefixConsistency),
            ],
            MixedScenario::TwitterTweetSer => &[
                ("publish_tweet", Serializability),
                ("follow", Serializability),
            ],
            MixedScenario::TwitterTimelineRc => &[
                ("get_timeline", ReadCommitted),
                ("get_tweets", ReadCommitted),
                ("get_followers", ReadCommitted),
            ],
            MixedScenario::TwitterTimelinePc => &[
                ("get_timeline", PrefixConsistency),
                ("get_tweets", PrefixConsistency),
            ],
            MixedScenario::WikipediaUpdateSer => &[("update_page", Serializability)],
            MixedScenario::WikipediaReadsRc => &[
                ("get_page_anonymous", ReadCommitted),
                ("get_page_authenticated", ReadCommitted),
            ],
            MixedScenario::WikipediaReadsPc => &[
                ("get_page_anonymous", PrefixConsistency),
                ("get_page_authenticated", PrefixConsistency),
            ],
        }
    }

    /// The weakest level the scenario assigns — the natural (uniform,
    /// causally-extensible) exploration base for `explore-ce*` against the
    /// scenario's spec.
    pub fn base_level(self) -> IsolationLevel {
        let mut weakest = self.default_level();
        for &(_, l) in self.rules() {
            if l.weaker_or_equal(weakest) {
                weakest = l;
            }
        }
        weakest
    }

    /// Resolves the scenario against a concrete client program: every
    /// transaction whose type name matches a rule gets the rule's level,
    /// everything else the default.
    pub fn spec_for(self, program: &Program) -> LevelSpec {
        let mut spec = LevelSpec::uniform(self.default_level());
        for (s, session) in program.sessions.iter().enumerate() {
            for (i, t) in session.transactions.iter().enumerate() {
                if let Some(&(_, level)) = self.rules().iter().find(|(n, _)| *n == t.name) {
                    spec = spec.with_override(s as u32, i as u32, level);
                }
            }
        }
        spec
    }

    /// The scenarios of one application.
    pub fn scenarios_for(app: App) -> Vec<MixedScenario> {
        MixedScenario::ALL
            .into_iter()
            .filter(|s| s.app() == app)
            .collect()
    }
}

impl std::fmt::Display for MixedScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The full benchmark suite of Fig. 14 / Table F.1: five client programs
/// per application, 3 sessions × 3 transactions.
pub fn paper_benchmark_suite() -> Vec<(String, Program)> {
    App::ALL
        .into_iter()
        .flat_map(|app| benchmark_programs(app, 5, 3, 3))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let c = WorkloadConfig::paper_default(App::Tpcc, 3);
        assert_eq!(client_program(&c), client_program(&c));
        let c2 = WorkloadConfig { seed: 4, ..c };
        assert_ne!(client_program(&c), client_program(&c2));
    }

    #[test]
    fn paper_suite_has_25_programs() {
        let suite = paper_benchmark_suite();
        assert_eq!(suite.len(), 25);
        for (name, p) in &suite {
            assert_eq!(p.num_sessions(), 3, "{name}");
            assert_eq!(p.num_transactions(), 9, "{name}");
        }
        // Names follow the paper's convention.
        assert!(suite.iter().any(|(n, _)| n == "tpcc-1"));
        assert!(suite.iter().any(|(n, _)| n == "wikipedia-5"));
    }

    #[test]
    fn programs_of_all_apps_execute_serially() {
        for app in App::ALL {
            for seed in 1..=3 {
                let p = client_program(&WorkloadConfig {
                    app,
                    sessions: 2,
                    transactions_per_session: 2,
                    seed,
                });
                let result = txdpor_program::execute_serial(&p);
                assert!(result.is_ok(), "{app} seed {seed} failed: {result:?}");
            }
        }
    }

    #[test]
    fn three_mixed_scenarios_per_app_with_unique_names() {
        use std::collections::BTreeSet;
        for app in App::ALL {
            let scenarios = MixedScenario::scenarios_for(app);
            assert_eq!(scenarios.len(), 3, "{app} needs three mixed scenarios");
            assert!(
                scenarios.iter().any(|s| s
                    .rules()
                    .iter()
                    .any(|&(_, l)| l == IsolationLevel::PrefixConsistency)),
                "{app} needs a Prefix Consistency scenario"
            );
        }
        let names: BTreeSet<_> = MixedScenario::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), MixedScenario::ALL.len());
        for s in MixedScenario::ALL {
            assert!(
                s.name().starts_with(s.app().name()),
                "{} must be prefixed by its app",
                s.name()
            );
        }
    }

    #[test]
    fn mixed_scenario_rules_name_real_transaction_types() {
        // Guard against rule-name typos: every rule name must be produced
        // by the app's transaction generator.
        use std::collections::BTreeSet;
        for scenario in MixedScenario::ALL {
            let mut seen: BTreeSet<String> = BTreeSet::new();
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..500 {
                seen.insert(scenario.app().random_transaction(&mut rng).name.clone());
            }
            for (name, _) in scenario.rules() {
                assert!(
                    seen.contains(*name),
                    "{scenario}: rule names unknown transaction type {name:?}"
                );
            }
        }
    }

    #[test]
    fn mixed_scenario_specs_resolve_by_transaction_type() {
        for scenario in MixedScenario::ALL {
            let program = client_program(&WorkloadConfig {
                app: scenario.app(),
                sessions: 3,
                transactions_per_session: 3,
                seed: 1,
            });
            let spec = scenario.spec_for(&program);
            for (s, session) in program.sessions.iter().enumerate() {
                for (i, t) in session.transactions.iter().enumerate() {
                    let want = scenario
                        .rules()
                        .iter()
                        .find(|(n, _)| *n == t.name)
                        .map(|&(_, l)| l)
                        .unwrap_or(scenario.default_level());
                    assert_eq!(
                        spec.level_of(s as u32, i as u32),
                        want,
                        "{scenario} mis-assigned {} at s{s}.t{i}",
                        t.name
                    );
                }
            }
            // The uniform base is pointwise weaker than the resolved spec,
            // as `explore-ce*` requires.
            let base = txdpor_history::LevelSpec::uniform(scenario.base_level());
            assert!(
                base.weaker_or_equal(&spec),
                "{scenario}: base {} not pointwise weaker than {spec}",
                scenario.base_level()
            );
        }
    }

    #[test]
    fn app_names_and_display() {
        assert_eq!(App::Tpcc.name(), "tpcc");
        assert_eq!(App::ShoppingCart.to_string(), "shoppingCart");
        assert_eq!(App::ALL.len(), 5);
    }

    #[test]
    fn session_and_transaction_scaling() {
        for sessions in 1..=4 {
            for txns in 1..=4 {
                let p = client_program(&WorkloadConfig {
                    app: App::Wikipedia,
                    sessions,
                    transactions_per_session: txns,
                    seed: 1,
                });
                assert_eq!(p.num_sessions(), sessions);
                assert_eq!(p.num_transactions(), sessions * txns);
            }
        }
    }
}
