//! Client-program (workload) generation for the benchmark applications
//! (§7.2–7.3).
//!
//! A *client program* consists of a number of sessions, each a sequence of
//! transactions drawn from the application's transaction types with
//! concrete parameters. Generation is seeded so that the "five independent
//! client programs per application" of the paper's evaluation are
//! reproducible.

use rand::rngs::StdRng;
use rand::SeedableRng;

use txdpor_program::{Program, Session, TransactionDef};

use crate::{courseware, shopping_cart, tpcc, twitter, wikipedia};

/// The five benchmark applications of the paper's evaluation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum App {
    /// Shopping Cart (Sivaramakrishnan et al. 2015).
    ShoppingCart,
    /// Twitter (Difallah et al. 2013).
    Twitter,
    /// Courseware (Nair et al. 2020).
    Courseware,
    /// Wikipedia (Difallah et al. 2013).
    Wikipedia,
    /// TPC-C (TPC 2010).
    Tpcc,
}

impl App {
    /// All applications, in the order used by the paper's tables.
    pub const ALL: [App; 5] = [
        App::Courseware,
        App::ShoppingCart,
        App::Tpcc,
        App::Twitter,
        App::Wikipedia,
    ];

    /// Lowercase name used in benchmark identifiers (`tpcc-3`, …).
    pub fn name(self) -> &'static str {
        match self {
            App::ShoppingCart => "shoppingCart",
            App::Twitter => "twitter",
            App::Courseware => "courseware",
            App::Wikipedia => "wikipedia",
            App::Tpcc => "tpcc",
        }
    }

    fn random_transaction(self, rng: &mut StdRng) -> TransactionDef {
        match self {
            App::ShoppingCart => shopping_cart::random_transaction(rng),
            App::Twitter => twitter::random_transaction(rng),
            App::Courseware => courseware::random_transaction(rng),
            App::Wikipedia => wikipedia::random_transaction(rng),
            App::Tpcc => tpcc::random_transaction(rng),
        }
    }

    fn initial_values(self) -> Vec<(String, txdpor_history::Value)> {
        match self {
            App::ShoppingCart => shopping_cart::initial_values(),
            App::Twitter => twitter::initial_values(),
            App::Courseware => courseware::initial_values(),
            App::Wikipedia => wikipedia::initial_values(),
            App::Tpcc => tpcc::initial_values(),
        }
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters of a generated client program.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Application the transactions are drawn from.
    pub app: App,
    /// Number of parallel sessions.
    pub sessions: usize,
    /// Number of transactions per session.
    pub transactions_per_session: usize,
    /// Seed controlling the choice of transaction types and parameters.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The configuration of the paper's first experiment: 3 sessions with 3
    /// transactions each.
    pub fn paper_default(app: App, seed: u64) -> Self {
        WorkloadConfig {
            app,
            sessions: 3,
            transactions_per_session: 3,
            seed,
        }
    }
}

/// Generates a client program from a workload configuration.
pub fn client_program(config: &WorkloadConfig) -> Program {
    let mut rng = StdRng::seed_from_u64(
        config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(config.app as u64),
    );
    let sessions = (0..config.sessions)
        .map(|_| {
            Session::new(
                (0..config.transactions_per_session)
                    .map(|_| config.app.random_transaction(&mut rng))
                    .collect(),
            )
        })
        .collect();
    let mut program = Program::new(sessions);
    program.init_values = config.app.initial_values();
    program
}

/// Generates the `variants` independent client programs of an application
/// used by the paper's first experiment, named `"<app>-<i>"`.
pub fn benchmark_programs(
    app: App,
    variants: usize,
    sessions: usize,
    transactions_per_session: usize,
) -> Vec<(String, Program)> {
    (1..=variants)
        .map(|i| {
            let config = WorkloadConfig {
                app,
                sessions,
                transactions_per_session,
                seed: i as u64,
            };
            (format!("{}-{i}", app.name()), client_program(&config))
        })
        .collect()
}

/// The full benchmark suite of Fig. 14 / Table F.1: five client programs
/// per application, 3 sessions × 3 transactions.
pub fn paper_benchmark_suite() -> Vec<(String, Program)> {
    App::ALL
        .into_iter()
        .flat_map(|app| benchmark_programs(app, 5, 3, 3))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let c = WorkloadConfig::paper_default(App::Tpcc, 3);
        assert_eq!(client_program(&c), client_program(&c));
        let c2 = WorkloadConfig { seed: 4, ..c };
        assert_ne!(client_program(&c), client_program(&c2));
    }

    #[test]
    fn paper_suite_has_25_programs() {
        let suite = paper_benchmark_suite();
        assert_eq!(suite.len(), 25);
        for (name, p) in &suite {
            assert_eq!(p.num_sessions(), 3, "{name}");
            assert_eq!(p.num_transactions(), 9, "{name}");
        }
        // Names follow the paper's convention.
        assert!(suite.iter().any(|(n, _)| n == "tpcc-1"));
        assert!(suite.iter().any(|(n, _)| n == "wikipedia-5"));
    }

    #[test]
    fn programs_of_all_apps_execute_serially() {
        for app in App::ALL {
            for seed in 1..=3 {
                let p = client_program(&WorkloadConfig {
                    app,
                    sessions: 2,
                    transactions_per_session: 2,
                    seed,
                });
                let result = txdpor_program::execute_serial(&p);
                assert!(result.is_ok(), "{app} seed {seed} failed: {result:?}");
            }
        }
    }

    #[test]
    fn app_names_and_display() {
        assert_eq!(App::Tpcc.name(), "tpcc");
        assert_eq!(App::ShoppingCart.to_string(), "shoppingCart");
        assert_eq!(App::ALL.len(), 5);
    }

    #[test]
    fn session_and_transaction_scaling() {
        for sessions in 1..=4 {
            for txns in 1..=4 {
                let p = client_program(&WorkloadConfig {
                    app: App::Wikipedia,
                    sessions,
                    transactions_per_session: txns,
                    seed: 1,
                });
                assert_eq!(p.num_sessions(), sessions);
                assert_eq!(p.num_transactions(), sessions * txns);
            }
        }
    }
}
