//! Property tests for the incremental consistency engines, driven by random
//! interleavings of the benchmark application workloads.
//!
//! A long-lived engine follows one history through random scheduler walks,
//! checkpoint/mutate/rollback cycles and `ValidWrites`-style wr churn,
//! syncing its index from the history's mutation-delta log. At every step
//! its verdict must be bit-identical to a fresh from-scratch engine on the
//! same history — for every isolation level, with and without result
//! memoisation. This pins the whole observer pipeline: delta recording
//! (including the inverse deltas emitted by rollbacks and
//! `retract_begin`), incremental closure maintenance, the LIFO undo stack
//! and each destructive fallback path.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use txdpor_apps::workload::{client_program, App, WorkloadConfig};
use txdpor_history::{
    engine_for, engine_for_with, ConsistencyChecker, Event, EventId, EventKind, History,
    IsolationLevel, TxId, VarTable,
};
use txdpor_program::{initial_history, oracle_next, Program, SchedulerStep, TxStep};

/// Applies one scheduler step to the history, choosing the wr source of
/// external reads at random among the committed writers. Returns `false`
/// when the program is finished.
fn apply_random_step(
    program: &Program,
    h: &mut History,
    vars: &mut VarTable,
    rng: &mut StdRng,
) -> bool {
    let fresh_event = EventId(h.max_event_id() + 1);
    match oracle_next(program, h, vars).expect("workload programs replay cleanly") {
        SchedulerStep::Finished => false,
        SchedulerStep::Begin {
            session,
            program_index,
        } => {
            let tx = TxId(h.max_tx_id() + 1);
            h.begin_transaction(
                session,
                tx,
                program_index,
                Event::new(fresh_event, EventKind::Begin),
            );
            true
        }
        SchedulerStep::Continue { session, step, .. } => {
            match step {
                TxStep::Read {
                    var,
                    internal_value,
                    ..
                } => {
                    h.append_event(session, Event::new(fresh_event, EventKind::Read(var)));
                    if internal_value.is_none() {
                        let writers = h.committed_writers_of(var);
                        let pick = writers[rng.gen_range(0..writers.len())];
                        h.set_wr(fresh_event, pick);
                    }
                }
                TxStep::Write { var, value } => {
                    h.append_event(
                        session,
                        Event::new(fresh_event, EventKind::Write(var, value)),
                    );
                }
                TxStep::Commit => {
                    h.append_event(session, Event::new(fresh_event, EventKind::Commit));
                }
                TxStep::Abort => {
                    h.append_event(session, Event::new(fresh_event, EventKind::Abort));
                }
            }
            true
        }
    }
}

/// `ValidWrites`-style churn: re-point every re-pointable external read to
/// a random committed writer, unset it, and restore a random choice. The
/// replacement `set_wr` and the out-of-po-order re-insertions exercise the
/// engines' destructive-unset and full-rebuild fallbacks.
fn churn_wr_edges(h: &mut History, rng: &mut StdRng) {
    let reads = h.reads_from();
    for (_, read, var, _) in reads {
        let writers = h.committed_writers_of(var);
        h.set_wr(read, writers[rng.gen_range(0..writers.len())]);
        h.unset_wr(read);
        h.set_wr(read, writers[rng.gen_range(0..writers.len())]);
    }
}

/// One synced engine per isolation level: memoisation disabled so every
/// check exercises the sync-and-decide path, plus a memoised causal engine
/// for the production configuration.
struct EngineFleet {
    engines: Vec<Box<dyn ConsistencyChecker>>,
}

impl EngineFleet {
    fn new() -> Self {
        let mut engines: Vec<Box<dyn ConsistencyChecker>> = IsolationLevel::ALL
            .into_iter()
            .map(|level| engine_for_with(level, false))
            .collect();
        engines.push(engine_for(IsolationLevel::CausalConsistency));
        EngineFleet { engines }
    }

    /// Asserts every engine agrees with a fresh from-scratch check.
    fn assert_agree(&mut self, h: &History) {
        for engine in &mut self.engines {
            let level = engine.level();
            assert_eq!(
                engine.check(h),
                level.satisfies(h),
                "incrementally synced {level} engine disagrees with a fresh check on\n{h}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn incremental_engines_match_fresh_engines(
        (app_idx, seed, prefix, muts) in (0usize..5, 1u64..1000, 0usize..12, 1usize..10)
    ) {
        let app = App::ALL[app_idx];
        let program = client_program(&WorkloadConfig {
            app,
            sessions: 3,
            transactions_per_session: 2,
            seed,
        });
        let mut vars = VarTable::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1dc0_ffee);
        let mut h = initial_history(&program, &mut vars);
        let mut fleet = EngineFleet::new();
        fleet.assert_agree(&h);

        // Random prefix walk with the engines shadowing every step.
        for _ in 0..prefix {
            if !apply_random_step(&program, &mut h, &mut vars, &mut rng) {
                break;
            }
            fleet.assert_agree(&h);
        }

        // Checkpoint, keep walking (checking as we go), churn wr edges,
        // roll back — the engines must follow the inverse deltas too.
        let snapshot = h.clone();
        let mark = h.checkpoint();
        for _ in 0..muts {
            if !apply_random_step(&program, &mut h, &mut vars, &mut rng) {
                break;
            }
            fleet.assert_agree(&h);
        }
        churn_wr_edges(&mut h, &mut rng);
        fleet.assert_agree(&h);
        h.rollback(mark);
        prop_assert_eq!(&h, &snapshot);
        fleet.assert_agree(&h);

        // The engines keep tracking after the rollback.
        for _ in 0..muts {
            if !apply_random_step(&program, &mut h, &mut vars, &mut rng) {
                break;
            }
            fleet.assert_agree(&h);
        }
    }
}
