//! Property tests for the incremental consistency engines, driven by random
//! interleavings of the benchmark application workloads.
//!
//! A long-lived engine follows one history through random scheduler walks,
//! checkpoint/mutate/rollback cycles and `ValidWrites`-style wr churn,
//! syncing its index from the history's mutation-delta log. At every step
//! its verdict must be bit-identical to a fresh from-scratch engine on the
//! same history — for every isolation level, with and without result
//! memoisation. This pins the whole observer pipeline: delta recording
//! (including the inverse deltas emitted by rollbacks and
//! `retract_begin`), incremental closure maintenance, the LIFO undo stack
//! and each destructive fallback path.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use txdpor_apps::workload::{client_program, App, MixedScenario, WorkloadConfig};
use txdpor_history::{
    engine_for, engine_for_spec_with, engine_for_with, ConsistencyChecker, Event, EventId,
    EventKind, History, IsolationLevel, LevelSpec, MixedEngine, TxId, VarTable, DELTA_LOG_CAPACITY,
};
use txdpor_program::{initial_history, oracle_next, Program, SchedulerStep, TxStep};

/// Applies one scheduler step to the history, choosing the wr source of
/// external reads at random among the committed writers. Returns `false`
/// when the program is finished.
fn apply_random_step(
    program: &Program,
    h: &mut History,
    vars: &mut VarTable,
    rng: &mut StdRng,
) -> bool {
    let fresh_event = EventId(h.max_event_id() + 1);
    match oracle_next(program, h, vars).expect("workload programs replay cleanly") {
        SchedulerStep::Finished => false,
        SchedulerStep::Begin {
            session,
            program_index,
        } => {
            let tx = TxId(h.max_tx_id() + 1);
            h.begin_transaction(
                session,
                tx,
                program_index,
                Event::new(fresh_event, EventKind::Begin),
            );
            true
        }
        SchedulerStep::Continue { session, step, .. } => {
            match step {
                TxStep::Read {
                    var,
                    internal_value,
                    ..
                } => {
                    h.append_event(session, Event::new(fresh_event, EventKind::Read(var)));
                    if internal_value.is_none() {
                        let writers = h.committed_writers_of(var);
                        let pick = writers[rng.gen_range(0..writers.len())];
                        h.set_wr(fresh_event, pick);
                    }
                }
                TxStep::Write { var, value } => {
                    h.append_event(
                        session,
                        Event::new(fresh_event, EventKind::Write(var, value)),
                    );
                }
                TxStep::Commit => {
                    h.append_event(session, Event::new(fresh_event, EventKind::Commit));
                }
                TxStep::Abort => {
                    h.append_event(session, Event::new(fresh_event, EventKind::Abort));
                }
            }
            true
        }
    }
}

/// `ValidWrites`-style churn: re-point every re-pointable external read to
/// a random committed writer, unset it, and restore a random choice. The
/// replacement `set_wr` and the out-of-po-order re-insertions exercise the
/// engines' destructive-unset and full-rebuild fallbacks.
fn churn_wr_edges(h: &mut History, rng: &mut StdRng) {
    let reads = h.reads_from();
    for (_, read, var, _) in reads {
        let writers = h.committed_writers_of(var);
        h.set_wr(read, writers[rng.gen_range(0..writers.len())]);
        h.unset_wr(read);
        h.set_wr(read, writers[rng.gen_range(0..writers.len())]);
    }
}

/// A fleet of long-lived engines, each paired with the [`LevelSpec`] it
/// decides: one per isolation level (memoisation disabled so every check
/// exercises the sync-and-decide path), a memoised causal engine for the
/// production configuration, the *mixed* engines of the given specs, and
/// — pinning the uniform-degeneration guarantee — a [`MixedEngine`]
/// *forced* onto the mixed code path for every uniform level.
struct EngineFleet {
    engines: Vec<(Box<dyn ConsistencyChecker>, LevelSpec)>,
}

impl EngineFleet {
    fn new(mixed_specs: &[LevelSpec]) -> Self {
        let mut engines: Vec<(Box<dyn ConsistencyChecker>, LevelSpec)> = IsolationLevel::ALL
            .into_iter()
            .map(|level| {
                (
                    engine_for_with(level, false) as Box<dyn ConsistencyChecker>,
                    LevelSpec::uniform(level),
                )
            })
            .collect();
        engines.push((
            engine_for(IsolationLevel::CausalConsistency),
            LevelSpec::uniform(IsolationLevel::CausalConsistency),
        ));
        for level in IsolationLevel::ALL {
            let spec = LevelSpec::uniform(level);
            engines.push((Box::new(MixedEngine::new(spec.clone(), false)), spec));
        }
        for spec in mixed_specs {
            engines.push((engine_for_spec_with(spec, false), spec.clone()));
            engines.push((engine_for_spec_with(spec, true), spec.clone()));
        }
        EngineFleet { engines }
    }

    /// Asserts every engine agrees with a fresh from-scratch check of its
    /// spec.
    fn assert_agree(&mut self, h: &History) {
        for (engine, spec) in &mut self.engines {
            assert_eq!(
                engine.check(h),
                spec.satisfies(h),
                "incrementally synced {spec} engine disagrees with a fresh check on\n{h}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn incremental_engines_match_fresh_engines(
        (app_idx, seed, prefix, muts) in (0usize..5, 1u64..1000, 0usize..12, 1usize..10)
    ) {
        let app = App::ALL[app_idx];
        let program = client_program(&WorkloadConfig {
            app,
            sessions: 3,
            transactions_per_session: 2,
            seed,
        });
        let mut vars = VarTable::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1dc0_ffee);
        let mut h = initial_history(&program, &mut vars);
        // The app's paper-shaped mixed scenarios, resolved against this
        // program, ride along in the fleet.
        let mixed_specs: Vec<LevelSpec> = MixedScenario::scenarios_for(app)
            .into_iter()
            .map(|sc| sc.spec_for(&program))
            .collect();
        let mut fleet = EngineFleet::new(&mixed_specs);
        fleet.assert_agree(&h);

        // Random prefix walk with the engines shadowing every step.
        for _ in 0..prefix {
            if !apply_random_step(&program, &mut h, &mut vars, &mut rng) {
                break;
            }
            fleet.assert_agree(&h);
        }

        // Checkpoint, keep walking (checking as we go), churn wr edges,
        // roll back — the engines must follow the inverse deltas too.
        let snapshot = h.clone();
        let mark = h.checkpoint();
        for _ in 0..muts {
            if !apply_random_step(&program, &mut h, &mut vars, &mut rng) {
                break;
            }
            fleet.assert_agree(&h);
        }
        churn_wr_edges(&mut h, &mut rng);
        fleet.assert_agree(&h);
        h.rollback(mark);
        prop_assert_eq!(&h, &snapshot);
        fleet.assert_agree(&h);

        // The engines keep tracking after the rollback.
        for _ in 0..muts {
            if !apply_random_step(&program, &mut h, &mut vars, &mut rng) {
                break;
            }
            fleet.assert_agree(&h);
        }
    }
}

/// Regression: a churn burst that overflows [`DELTA_LOG_CAPACITY`] between
/// two engine syncs — with a checkpoint open across the burst — followed
/// by a rollback must leave every engine on the *full-rebuild* path (the
/// trimmed delta window is unreplayable), never on a silently divergent
/// incremental sync. Verdicts are pinned bit-identical to fresh engines on
/// both sides of the overflow boundary.
#[test]
fn delta_log_eviction_with_open_checkpoint_forces_full_rebuild() {
    let program = client_program(&WorkloadConfig {
        app: App::Tpcc,
        sessions: 3,
        transactions_per_session: 2,
        seed: 5,
    });
    let mut vars = VarTable::new();
    let mut rng = StdRng::seed_from_u64(0xeb1c7);
    let mut h = initial_history(&program, &mut vars);
    // Walk until at least one re-pointable external read exists.
    while h.reads_from().is_empty() {
        assert!(
            apply_random_step(&program, &mut h, &mut vars, &mut rng),
            "tpcc workloads read before finishing"
        );
    }
    let mixed = MixedScenario::TpccPaymentSer.spec_for(&program);
    let mut fleet = EngineFleet::new(std::slice::from_ref(&mixed));
    fleet.assert_agree(&h); // sync every engine at the pre-burst generation

    let stats_before: Vec<_> = fleet.engines.iter().map(|(e, _)| e.stats()).collect();

    // Open a checkpoint and churn one read's wr edge until the delta ring
    // has wrapped well past the engines' sync generation, then roll back.
    let snapshot = h.clone();
    let synced_gen = h.generation();
    let mark = h.checkpoint();
    let (_, read, var, _) = h.reads_from()[0];
    let writers = h.committed_writers_of(var);
    for i in 0..DELTA_LOG_CAPACITY {
        h.set_wr(read, writers[i % writers.len()]);
        h.unset_wr(read);
        h.set_wr(read, writers[(i + 1) % writers.len()]);
        h.unset_wr(read);
    }
    h.rollback(mark);
    assert_eq!(h, snapshot, "rollback must restore the history exactly");
    assert!(
        h.deltas_since(synced_gen).is_none(),
        "the burst must actually trim the engines' sync window"
    );

    // Every engine re-syncs by rebuilding — and answers exactly like a
    // fresh engine. Memoised engines may legitimately serve the restored
    // (structurally pre-burst) history from their memo instead; what is
    // forbidden is an *incremental* sync across the trimmed window.
    fleet.assert_agree(&h);
    for ((engine, spec), before) in fleet.engines.iter().zip(stats_before) {
        let after = engine.stats();
        let rebuilt = after.full_rebuilds > before.full_rebuilds;
        let memo_served = after.memo_hits > before.memo_hits;
        let trivial = spec.as_uniform() == Some(IsolationLevel::Trivial);
        assert!(
            rebuilt || memo_served || trivial,
            "{spec} engine crossed a trimmed delta window without a rebuild"
        );
        assert_eq!(
            after.incremental_hits, before.incremental_hits,
            "{spec} engine claimed an incremental sync across a trimmed delta window"
        );
    }

    // And keeps tracking incrementally afterwards.
    for _ in 0..6 {
        if !apply_random_step(&program, &mut h, &mut vars, &mut rng) {
            break;
        }
        fleet.assert_agree(&h);
    }
}
