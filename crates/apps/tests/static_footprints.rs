//! Soundness of the static read/write-set analysis against every
//! dynamically explored execution of all five benchmark applications:
//! each executed transaction's events must fall inside its type's static
//! footprint, and the static communication graph must coarsen (never
//! refine) the dynamic per-history decomposition.

use txdpor_analysis::{decompose, ProgramFootprints};
use txdpor_apps::{client_program, App, WorkloadConfig};
use txdpor_explore::{explore, ExploreConfig};
use txdpor_history::IsolationLevel;

#[test]
fn static_footprints_cover_every_explored_execution() {
    for app in App::ALL {
        for seed in 1..=2u64 {
            let p = client_program(&WorkloadConfig {
                app,
                sessions: 2,
                transactions_per_session: 2,
                seed,
            });
            let fps = ProgramFootprints::analyze(&p);
            let report = explore(
                &p,
                ExploreConfig::explore_ce(IsolationLevel::CausalConsistency).collecting_histories(),
            )
            .unwrap_or_else(|e| panic!("{app} seed {seed} failed to explore: {e}"));
            assert!(report.outputs > 0, "{app} seed {seed} explored nothing");
            for h in &report.histories {
                // Superset property: every dynamic read/write is covered
                // by the static set of its transaction type.
                if let Err(e) = fps.check_covers_history(h, &report.vars) {
                    panic!("{app} seed {seed}: {e}");
                }
                // The static graph over-approximates the dynamic edges,
                // so the dynamic split is a refinement of the static one.
                assert!(
                    decompose(h).len() >= fps.predicted_components(),
                    "{app} seed {seed}: dynamic decomposition coarser than \
                     the static prediction"
                );
            }
        }
    }
}
