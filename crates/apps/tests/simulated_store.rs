//! End-to-end: every benchmark application executed against the simulated
//! distributed store under network faults, with the recorded history
//! checked against the deployment's claimed isolation spec.

use txdpor_apps::{app_deployments, app_sim_config, App};
use txdpor_history::engine_for_spec;
use txdpor_store::{run_simulation, Deployment, FaultPlan};

#[test]
fn every_app_is_deterministic_per_seed_under_faults() {
    for app in App::ALL {
        for preset in ["jitter", "lossy"] {
            let cfg = app_sim_config(
                app,
                3,
                2,
                13,
                Deployment::si(),
                FaultPlan::preset(preset).unwrap(),
            );
            let a = run_simulation(&cfg);
            let b = run_simulation(&cfg);
            assert_eq!(
                a.history.fingerprint_hash(),
                b.history.fingerprint_hash(),
                "{}/{preset}: replay diverged",
                app.name()
            );
            assert_eq!(a.stats, b.stats, "{}/{preset}", app.name());
        }
    }
}

#[test]
fn every_app_passes_every_honest_deployment_with_a_replayable_witness() {
    for app in App::ALL {
        for deployment in app_deployments(app) {
            if !deployment.honest() {
                continue; // the dishonest ones are exercised below
            }
            for preset in ["lossy", "crashy"] {
                for seed in [1u64, 23] {
                    let cfg = app_sim_config(
                        app,
                        3,
                        2,
                        seed,
                        deployment.clone(),
                        FaultPlan::preset(preset).unwrap(),
                    );
                    let out = run_simulation(&cfg);
                    let label = format!("{}/{}/{preset}/{}", app.name(), deployment.name, seed);
                    assert!(out.stats.committed > 0, "{label}: nothing committed");
                    assert!(out.errors.is_empty(), "{label}: {:?}", out.errors);
                    assert!(
                        out.invariant_breaches.is_empty(),
                        "{label}: {:?}",
                        out.invariant_breaches
                    );
                    let verdict = engine_for_spec(&out.claimed).check_witnessed(&out.history);
                    let witness = verdict.witness().unwrap_or_else(|| {
                        panic!(
                            "{label}: honest deployment violated its claim: {}",
                            verdict.violation().unwrap()
                        )
                    });
                    assert!(
                        witness.replays(&out.history, &out.claimed),
                        "{label}: witness does not replay"
                    );
                }
            }
        }
    }
}

#[test]
fn the_weakened_deployment_is_caught_on_at_least_one_workload() {
    // si-unchecked runs causal-mode concurrency control while claiming
    // Snapshot Isolation; under contention some app workload must produce
    // a lost update the checker flags. Sweep a few seeds per app and
    // require at least one catch overall (each catch's core must chain
    // into a closed cycle).
    let mut caught = Vec::new();
    'apps: for app in App::ALL {
        for seed in 0..8u64 {
            let cfg = app_sim_config(
                app,
                4,
                3,
                seed,
                Deployment::si_unchecked(),
                FaultPlan::preset("jitter").unwrap(),
            );
            let out = run_simulation(&cfg);
            let verdict = engine_for_spec(&out.claimed).check_witnessed(&out.history);
            if let Some(violation) = verdict.violation() {
                let cycle = &violation.cycle;
                assert!(cycle.len() >= 2);
                for (e, next) in cycle.iter().zip(cycle.iter().cycle().skip(1)) {
                    assert_eq!(e.to, next.from, "core is not a closed cycle: {violation}");
                }
                caught.push((app.name(), seed));
                continue 'apps;
            }
        }
    }
    assert!(
        !caught.is_empty(),
        "no app workload exposed the weakened deployment"
    );
}

#[test]
fn the_crash_unsafe_deployment_is_caught_under_each_crash_preset() {
    // no-wal loses undecided prewrite state on crash, so a concurrent
    // writer can slip past a forgotten lock and violate the claimed
    // Snapshot Isolation's first-committer-wins. Each crash preset must be
    // caught on at least one app × seed, with a closed violation core.
    for preset in ["crashy", "crash-chaos"] {
        let mut caught = Vec::new();
        for app in App::ALL {
            for seed in 0..8u64 {
                let cfg = app_sim_config(
                    app,
                    4,
                    3,
                    seed,
                    Deployment::no_wal(),
                    FaultPlan::preset(preset).unwrap(),
                );
                let out = run_simulation(&cfg);
                assert!(
                    out.invariant_breaches.is_empty(),
                    "{}/{preset}/{seed}: {:?}",
                    app.name(),
                    out.invariant_breaches
                );
                let verdict = engine_for_spec(&out.claimed).check_witnessed(&out.history);
                if let Some(violation) = verdict.violation() {
                    let cycle = &violation.cycle;
                    assert!(cycle.len() >= 2);
                    for (e, next) in cycle.iter().zip(cycle.iter().cycle().skip(1)) {
                        assert_eq!(e.to, next.from, "core is not a closed cycle: {violation}");
                    }
                    caught.push((app.name(), seed));
                }
            }
        }
        assert!(
            !caught.is_empty(),
            "{preset}: no app workload exposed the crash-unsafe deployment"
        );
    }
}
