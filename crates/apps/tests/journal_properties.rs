//! Property tests for the `History` undo journal, driven by random
//! interleavings of the benchmark application workloads.
//!
//! The exploration algorithms rely on the rollback contract: after
//! `checkpoint → mutate* → rollback`, the history must be bit-identical to
//! its pre-mutation state — structurally (`==`), canonically
//! (`fingerprint()` / `fingerprint_hash()`), and in the incrementally
//! maintained rolling hash the consistency-engine memos key on
//! (`live_hash()`). Each case replays a random scheduler walk of a random
//! app workload, checkpoints at a random depth, keeps walking (with extra
//! set/unset churn on wr edges), rolls back and compares against a
//! snapshot clone.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use txdpor_apps::workload::{client_program, App, WorkloadConfig};
use txdpor_history::{Event, EventId, EventKind, History, TxId, VarTable};
use txdpor_program::{initial_history, oracle_next, Program, SchedulerStep, TxStep};

/// Applies one scheduler step to the history, choosing the wr source of
/// external reads at random among the committed writers. Returns `false`
/// when the program is finished.
fn apply_random_step(
    program: &Program,
    h: &mut History,
    vars: &mut VarTable,
    rng: &mut StdRng,
) -> bool {
    let fresh_event = EventId(h.max_event_id() + 1);
    match oracle_next(program, h, vars).expect("workload programs replay cleanly") {
        SchedulerStep::Finished => false,
        SchedulerStep::Begin {
            session,
            program_index,
        } => {
            let tx = TxId(h.max_tx_id() + 1);
            h.begin_transaction(
                session,
                tx,
                program_index,
                Event::new(fresh_event, EventKind::Begin),
            );
            true
        }
        SchedulerStep::Continue { session, step, .. } => {
            match step {
                TxStep::Read {
                    var,
                    internal_value,
                    ..
                } => {
                    h.append_event(session, Event::new(fresh_event, EventKind::Read(var)));
                    if internal_value.is_none() {
                        let writers = h.committed_writers_of(var);
                        let pick = writers[rng.gen_range(0..writers.len())];
                        h.set_wr(fresh_event, pick);
                    }
                }
                TxStep::Write { var, value } => {
                    h.append_event(
                        session,
                        Event::new(fresh_event, EventKind::Write(var, value)),
                    );
                }
                TxStep::Commit => {
                    h.append_event(session, Event::new(fresh_event, EventKind::Commit));
                }
                TxStep::Abort => {
                    h.append_event(session, Event::new(fresh_event, EventKind::Abort));
                }
            }
            true
        }
    }
}

/// Extra churn on the wr relation: re-point every re-pointable external
/// read to a random committed writer, unset it, and restore a random
/// choice — the set/unset traffic `ValidWrites` generates.
fn churn_wr_edges(h: &mut History, rng: &mut StdRng) {
    let reads = h.reads_from();
    for (_, read, var, _) in reads {
        let writers = h.committed_writers_of(var);
        h.set_wr(read, writers[rng.gen_range(0..writers.len())]);
        h.unset_wr(read);
        h.set_wr(read, writers[rng.gen_range(0..writers.len())]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn rollback_restores_histories_from_app_workloads(
        (app_idx, seed, prefix, muts) in (0usize..5, 1u64..1000, 0usize..14, 1usize..12)
    ) {
        let app = App::ALL[app_idx];
        let program = client_program(&WorkloadConfig {
            app,
            sessions: 3,
            transactions_per_session: 2,
            seed,
        });
        let mut vars = VarTable::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xd0_07);
        let mut h = initial_history(&program, &mut vars);

        // Random prefix walk (journal disarmed: no checkpoint here).
        for _ in 0..prefix {
            if !apply_random_step(&program, &mut h, &mut vars, &mut rng) {
                break;
            }
        }

        // Snapshot, checkpoint, keep mutating, churn wr edges, roll back.
        let snapshot = h.clone();
        let mark = h.checkpoint();
        let mut progressed = false;
        for _ in 0..muts {
            if !apply_random_step(&program, &mut h, &mut vars, &mut rng) {
                break;
            }
            progressed = true;
        }
        churn_wr_edges(&mut h, &mut rng);
        if progressed {
            prop_assert!(h != snapshot || h.num_events() == snapshot.num_events());
        }
        h.rollback(mark);

        prop_assert_eq!(&h, &snapshot);
        prop_assert_eq!(h.live_hash(), snapshot.live_hash());
        prop_assert_eq!(h.fingerprint_hash(), snapshot.fingerprint_hash());
        prop_assert_eq!(h.fingerprint(), snapshot.fingerprint());
        prop_assert_eq!(h.max_event_id(), snapshot.max_event_id());
        prop_assert_eq!(h.max_tx_id(), snapshot.max_tx_id());
        prop_assert_eq!(h.num_pending(), snapshot.num_pending());

        // The restored history is indistinguishable going forward: the same
        // walk applied to the original and the restored history agree.
        let mut rng_a = StdRng::seed_from_u64(seed ^ 0xbeef);
        let mut rng_b = StdRng::seed_from_u64(seed ^ 0xbeef);
        let mut replay = snapshot.clone();
        let mut vars_b = vars.clone();
        for _ in 0..muts {
            let a = apply_random_step(&program, &mut h, &mut vars, &mut rng_a);
            let b = apply_random_step(&program, &mut replay, &mut vars_b, &mut rng_b);
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(&h, &replay);
        prop_assert_eq!(h.live_hash(), replay.live_hash());
    }
}
