//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides the subset of Criterion's API used by the benches in
//! `crates/bench/benches`: [`Criterion`], [`BenchmarkId`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of Criterion's full statistical pipeline it runs a short warm-up,
//! then `sample_size` timed iterations, and prints mean / min / max wall
//! times per benchmark — enough to compare configurations, not to publish.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies a benchmark within a group, e.g. a parameter point.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark driver handed to `criterion_group!` target functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
            measurement_time: None,
        }
    }

    /// Benchmark a closure outside of any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), 10, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Set the target measurement time (accepted for API compatibility;
    /// sampling here is iteration-count driven).
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = Some(t);
        self
    }

    /// Benchmark `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Benchmark a closure labelled by `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the payload.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `payload` repeatedly, recording one wall-time sample per run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        // Warm-up run, untimed.
        black_box(payload());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(payload());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {label}: no samples");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().unwrap();
    let max = b.samples.iter().max().unwrap();
    println!(
        "  {label}: mean {mean:?} min {min:?} max {max:?} ({} samples)",
        b.samples.len()
    );
}

/// Declare a benchmark group: a name followed by target functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark entry point from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `--list` support keeps `cargo test` (which runs bench targets
            // with --list in some configurations) and tooling happy.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--list") {
                return;
            }
            $( $group(); )+
        }
    };
}
