//! Offline stand-in for the `rand` crate (0.8-style API).
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides the small, deterministic subset of `rand`'s API that
//! the workspace actually uses: the [`Rng`] trait with `gen_range` /
//! `gen_bool` / `gen`, the [`SeedableRng`] constructor trait, and
//! [`rngs::StdRng`] backed by the SplitMix64 generator. The statistical
//! quality is more than sufficient for workload generation; the stream is
//! *not* identical to upstream `rand`, only API-compatible.

#![warn(missing_docs)]

use std::ops::{Bound, RangeBounds};

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
///
/// Bounds are widened to `i128` internally so that inclusive ranges ending
/// at the type's `MAX` (e.g. `0..=u64::MAX`) work without overflow.
pub trait SampleUniform: Copy {
    /// The smallest representable value, used to resolve unbounded starts.
    const MIN: Self;
    /// Widen to `i128` (lossless for all supported 64-bit-or-smaller types).
    fn to_i128(self) -> i128;
    /// Narrow from `i128`; only called with values inside the sampled range.
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            const MIN: Self = <$t>::MIN;
            fn to_i128(self) -> i128 { self as i128 }
            fn from_i128(v: i128) -> Self { v as $t }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The raw generator interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Return the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        T: SampleUniform,
        B: RangeBounds<T>,
    {
        let low = match range.start_bound() {
            Bound::Included(&v) => v.to_i128(),
            Bound::Excluded(&v) => v.to_i128() + 1,
            Bound::Unbounded => T::MIN.to_i128(),
        };
        let high = match range.end_bound() {
            Bound::Included(&v) => v.to_i128() + 1,
            Bound::Excluded(&v) => v.to_i128(),
            Bound::Unbounded => panic!("gen_range requires a bounded end"),
        };
        assert!(low < high, "cannot sample empty range {low}..{high}");
        let span = (high - low) as u128;
        let v = (((self.next_u64() as u128) << 64 | self.next_u64() as u128) % span) as i128;
        T::from_i128(low + v)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 random bits give a uniform float in [0, 1).
        let f = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        f < p
    }

    /// Sample a random value of a supported type (`bool`, integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable by [`Rng::gen`] from the full uniform distribution.
pub trait Standard: Sized {
    /// Sample a uniformly distributed value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    /// A uniform float in `[0, 1)` from 53 random bits, matching upstream
    /// `rand`'s `Standard` distribution for `f64`.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Generators that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// A deterministic 64-bit generator (SplitMix64).
    ///
    /// Unlike upstream `rand`, the output stream is SplitMix64 rather than
    /// ChaCha12 — deterministic, fast, and statistically fine for workload
    /// generation, which is all this workspace uses it for.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // Discard one output so that small seeds decorrelate.
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_range_full_width_inclusive() {
        let mut rng = StdRng::seed_from_u64(9);
        // Inclusive ends at the type's MAX must not overflow.
        let _: u64 = rng.gen_range(0..=u64::MAX);
        let _: i64 = rng.gen_range(i64::MIN..=i64::MAX);
        let v: u8 = rng.gen_range(255..=255);
        assert_eq!(v, 255);
    }

    #[test]
    #[should_panic(expected = "cannot sample empty range")]
    fn gen_range_rejects_empty_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let _: u32 = rng.gen_range(5..5);
    }

    #[test]
    fn gen_f64_is_unit_interval_and_deterministic() {
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x: f64 = a.gen();
            assert!((0.0..1.0).contains(&x), "{x} outside [0, 1)");
            let y: f64 = b.gen();
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
