//! Offline stand-in for the `proptest` property-testing framework.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate implements the subset of proptest's API used by the workspace
//! tests: the [`Strategy`](strategy::Strategy) trait with `prop_map` and
//! `boxed`, strategies for integer ranges, tuples, [`Just`](strategy::Just),
//! [`collection::vec`], [`any`](arbitrary::any), the [`prop_oneof!`] union
//! macro, and the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`]
//! test macros driven by [`ProptestConfig`](test_runner::ProptestConfig).
//!
//! Unlike upstream proptest it performs no shrinking: each test runs
//! `config.cases` deterministic random cases (seeded per test) and fails by
//! panicking with the offending case number. That is sufficient for the CI
//! gate; failures print the case seed so they can be replayed.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything needed by a typical proptest-based test module.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Union of several strategies producing the same value type, sampled
/// uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Assert a boolean condition inside a [`proptest!`] test body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a [`proptest!`] test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Define property tests: each `fn name(pat in strategy) { body }` becomes a
/// `#[test]` running `config.cases` random cases of `body` with `pat` bound
/// to a generated value.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]; parses one test item at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($pat:pat in $strategy:expr) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let strategy = $strategy;
            for case in 0..config.cases {
                let seed = $crate::test_runner::case_seed(stringify!($name), case);
                let mut runner = $crate::test_runner::rng_from_seed(seed);
                let $pat = $crate::strategy::Strategy::generate(&strategy, &mut runner);
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (replay seed {:#x})",
                        case + 1, config.cases, stringify!($name), seed,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_items!(($config); $($rest)*);
    };
}
