//! The [`any`] entry point and the [`Arbitrary`] trait.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

use rand::Rng as _;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<bool>()`, `any::<u32>()`, ….
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}
