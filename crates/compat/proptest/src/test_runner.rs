//! Test-runner configuration and the deterministic per-case RNG.

pub use rand::rngs::StdRng as TestRng;
use rand::SeedableRng as _;

/// Configuration accepted by `#![proptest_config(..)]`.
///
/// Only `cases` is honoured; the other fields exist for source compatibility
/// with upstream proptest configuration literals.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; failures are never persisted.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 65536,
        }
    }
}

/// Deterministic seed for one case of one named property test.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the test name, mixed with the case number.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash ^ (u64::from(case) << 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Build the per-case RNG from a seed (used by the `proptest!` expansion).
pub fn rng_from_seed(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}
