//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Bound, RangeBounds};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

use rand::Rng as _;

/// Strategy for a `Vec` whose length is drawn from a size range and whose
/// elements come from an inner strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

/// A `Vec<T>` strategy: length in `size` (any usize range), elements from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl RangeBounds<usize>) -> VecStrategy<S> {
    let min = match size.start_bound() {
        Bound::Included(&n) => n,
        Bound::Excluded(&n) => n + 1,
        Bound::Unbounded => 0,
    };
    let max = match size.end_bound() {
        Bound::Included(&n) => n,
        Bound::Excluded(&n) => {
            assert!(n > min, "empty size range for collection::vec");
            n - 1
        }
        Bound::Unbounded => min + 16,
    };
    assert!(min <= max, "empty size range for collection::vec");
    VecStrategy { element, min, max }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.min..=self.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_from_seed;

    #[test]
    fn lengths_stay_in_range() {
        let mut rng = rng_from_seed(3);
        let strat = vec(0..10u32, 2..=5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
        }
    }

    #[test]
    #[should_panic(expected = "empty size range")]
    fn empty_excluded_range_is_rejected() {
        let _ = vec(0..10u32, 0..0);
    }
}
