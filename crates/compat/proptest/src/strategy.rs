//! The [`Strategy`] trait and the combinators used by the workspace tests.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

use rand::Rng as _;

/// A recipe for generating random values of type [`Strategy::Value`].
///
/// Unlike upstream proptest there is no shrinking: a strategy is simply a
/// deterministic function of the test RNG.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }
}

/// Object-safe subset of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between strategies of the same value type; built by
/// [`prop_oneof!`](crate::prop_oneof).
#[derive(Debug, Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given (non-empty) alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
