//! Communication-graph decomposition of histories.
//!
//! The *communication graph* of a history has one node per session and an
//! edge between two sessions whenever they access (read or write) a common
//! global variable. Its connected components partition the sessions, and —
//! because the write-read relation is same-variable and the session order
//! is same-session — every `so ∪ wr` edge stays inside one component. The
//! sub-history induced by a component can therefore be checked against any
//! supported isolation level independently of the others; the whole
//! history is consistent iff every component is (see the soundness
//! argument on [`crate::checker::DecomposingChecker`]).
//!
//! Sub-histories keep the **original session, transaction and event ids**
//! (so `so`-positions, and with them mixed [`LevelSpec`] overrides, apply
//! verbatim and recombined evidence needs no id translation); only global
//! variables are renumbered densely in first-occurrence order — the
//! `map_vars`-style canonical form — with a back-map kept per component.
//!
//! [`LevelSpec`]: txdpor_history::LevelSpec

use txdpor_history::{Event, EventKind, History, SessionId, TxId, Var};

/// One connected component of the communication graph, with everything
/// needed to check it independently and map evidence back.
#[derive(Clone, Debug)]
pub struct Component {
    /// Sessions of the component, ascending.
    pub sessions: Vec<SessionId>,
    /// Number of (non-init) transactions in the component.
    pub transactions: usize,
    /// Back-map from the sub-history's dense variable ids to the original
    /// ids: `var_map[new.0 as usize] == old`.
    pub var_map: Vec<Var>,
}

impl Component {
    /// Translates a variable of the component's sub-history back to the
    /// original history's numbering. Identity for variables outside the
    /// map (defensive: evidence only ever cites component variables).
    pub fn original_var(&self, x: Var) -> Var {
        self.var_map.get(x.0 as usize).copied().unwrap_or(x)
    }
}

/// The communication-graph decomposition of one history.
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// The connected components, ordered by their smallest session id.
    pub components: Vec<Component>,
}

impl Decomposition {
    /// Number of components (0 for an empty history).
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the history had no sessions at all.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Number of transactions in the largest component (0 when empty).
    pub fn largest(&self) -> usize {
        self.components
            .iter()
            .map(|c| c.transactions)
            .max()
            .unwrap_or(0)
    }
}

/// Minimal union-find over dense indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }
}

/// Computes the communication-graph decomposition of a history.
///
/// Conservative coupling: *any* read or write event on a variable couples
/// its session to that variable — pending and aborted transactions
/// included — so the split can never separate sessions that any axiom
/// could relate.
pub fn decompose(h: &History) -> Decomposition {
    let sessions: Vec<(SessionId, &[TxId])> = h.sessions().collect();
    let n = sessions.len();
    let mut uf = UnionFind::new(n);
    // First session (dense index) seen touching each variable.
    let mut var_owner: Vec<Option<usize>> = Vec::new();
    for (k, (_, txs)) in sessions.iter().enumerate() {
        for t in txs.iter() {
            for e in &h.tx(*t).events {
                let Some(x) = e.var() else { continue };
                let xi = x.0 as usize;
                if var_owner.len() <= xi {
                    var_owner.resize(xi + 1, None);
                }
                match var_owner[xi] {
                    Some(owner) => uf.union(owner, k),
                    None => var_owner[xi] = Some(k),
                }
            }
        }
    }
    // Group sessions by root, preserving ascending session order.
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for k in 0..n {
        let root = uf.find(k);
        match groups.iter_mut().find(|(r, _)| *r == root) {
            Some((_, members)) => members.push(k),
            None => groups.push((root, vec![k])),
        }
    }
    let components = groups
        .into_iter()
        .map(|(_, members)| {
            let mut var_map = Vec::new();
            let mut transactions = 0usize;
            for &k in &members {
                for t in sessions[k].1 {
                    transactions += 1;
                    for e in &h.tx(*t).events {
                        if let Some(x) = e.var() {
                            if !var_map.contains(&x) {
                                var_map.push(x);
                            }
                        }
                    }
                }
            }
            Component {
                sessions: members.iter().map(|&k| sessions[k].0).collect(),
                transactions,
                var_map,
            }
        })
        .collect();
    Decomposition { components }
}

/// Builds the sub-history induced by one component: original session,
/// transaction and event ids, variables densely renumbered through the
/// component's `var_map` (old `var_map[j]` becomes `Var(j)`), init values
/// restricted to the component's variables, and `wr` edges carried over
/// (they are same-variable, hence intra-component by construction).
pub fn component_history(h: &History, c: &Component) -> History {
    let renumber = |x: Var| -> Var {
        let j = c
            .var_map
            .iter()
            .position(|&y| y == x)
            .expect("component event cites a variable outside its var_map");
        Var(j as u32)
    };
    let init = h
        .init_values()
        .iter()
        .filter(|(x, _)| c.var_map.contains(x))
        .map(|(x, v)| (renumber(*x), v.clone()))
        .collect::<Vec<_>>();
    let mut sub = History::new(init);
    for &s in &c.sessions {
        for &t in h.session_txs(s) {
            let log = h.tx(t);
            let mut events = log.events.iter();
            let begin = events
                .next()
                .expect("transaction log starts with its begin event");
            debug_assert!(begin.kind.is_begin());
            sub.begin_transaction(
                s,
                t,
                log.program_index,
                Event::new(begin.id, EventKind::Begin),
            );
            for e in events {
                let kind = match &e.kind {
                    EventKind::Read(x) => EventKind::Read(renumber(*x)),
                    EventKind::Write(x, v) => EventKind::Write(renumber(*x), v.clone()),
                    other => other.clone(),
                };
                sub.append_event(s, Event::new(e.id, kind));
            }
        }
    }
    for (reader, read, _, writer) in h.reads_from() {
        if c.sessions.contains(&h.tx(reader).session) {
            sub.set_wr(read, writer);
        }
    }
    sub
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdpor_history::{EventId, IsolationLevel, Value};

    /// Two independent increment pairs on x and y, plus one session
    /// touching both (forcing a single component), built by hand.
    fn fresh(next: &mut u32) -> EventId {
        *next += 1;
        EventId(*next)
    }

    fn push_incr(h: &mut History, next: &mut u32, s: u32, t: u32, idx: usize, x: Var, from: TxId) {
        h.begin_transaction(
            SessionId(s),
            TxId(t),
            idx,
            Event::new(fresh(next), EventKind::Begin),
        );
        let r = fresh(next);
        h.append_event(SessionId(s), Event::new(r, EventKind::Read(x)));
        h.append_event(
            SessionId(s),
            Event::new(fresh(next), EventKind::Write(x, Value::Int(1))),
        );
        h.append_event(SessionId(s), Event::new(fresh(next), EventKind::Commit));
        h.set_wr(r, from);
    }

    #[test]
    fn disjoint_sessions_split_and_shared_vars_join() {
        let (x, y) = (Var(0), Var(1));
        let mut h = History::new([]);
        let mut next = 0;
        push_incr(&mut h, &mut next, 0, 1, 0, x, TxId::INIT);
        push_incr(&mut h, &mut next, 1, 2, 0, x, TxId(1));
        push_incr(&mut h, &mut next, 2, 3, 0, y, TxId::INIT);
        push_incr(&mut h, &mut next, 3, 4, 0, y, TxId(3));
        let d = decompose(&h);
        assert_eq!(d.len(), 2);
        assert_eq!(d.largest(), 2);
        assert_eq!(d.components[0].sessions, vec![SessionId(0), SessionId(1)]);
        assert_eq!(d.components[1].sessions, vec![SessionId(2), SessionId(3)]);
        // A bridging session collapses everything into one component.
        push_incr(&mut h, &mut next, 4, 5, 0, x, TxId(2));
        push_incr(&mut h, &mut next, 4, 6, 1, y, TxId(4));
        let d = decompose(&h);
        assert_eq!(d.len(), 1);
        assert_eq!(d.components[0].transactions, 6);
    }

    #[test]
    fn component_histories_keep_ids_and_renumber_vars() {
        let (x, y) = (Var(7), Var(3));
        let mut h = History::new([(y, Value::Int(9))]);
        let mut next = 0;
        push_incr(&mut h, &mut next, 0, 1, 0, x, TxId::INIT);
        push_incr(&mut h, &mut next, 1, 2, 0, y, TxId::INIT);
        let d = decompose(&h);
        assert_eq!(d.len(), 2);
        let c1 = &d.components[1];
        assert_eq!(c1.var_map, vec![y]);
        let sub = component_history(&h, c1);
        // Original ids survive; the single variable is now Var(0).
        assert_eq!(sub.session_txs(SessionId(1)), &[TxId(2)]);
        assert_eq!(sub.tx_session_index(TxId(2)), Some(0));
        assert_eq!(sub.init_values(), &[(Var(0), Value::Int(9))]);
        assert!(sub.tx(TxId(2)).writes_var(Var(0)));
        assert_eq!(c1.original_var(Var(0)), y);
        let rf = sub.reads_from();
        assert_eq!(rf.len(), 1);
        assert_eq!(rf[0].0, TxId(2));
        assert_eq!(rf[0].3, TxId::INIT);
        // The sub-history is consistent on its own.
        assert!(IsolationLevel::Serializability.satisfies(&sub));
    }
}
