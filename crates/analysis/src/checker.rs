//! A verdict-preserving wrapper that checks each communication-graph
//! component of a history independently.

use std::collections::VecDeque;
use std::sync::Arc;

use txdpor_history::{
    engine_for_spec_with, ConsistencyChecker, EngineStats, History, IsolationLevel, LevelSpec,
    SharedMemo, TxId, Verdict, Violation, ViolationEdge, Witness,
};

use crate::decompose::{component_history, decompose, Decomposition};

/// Wraps a consistency engine with communication-graph decomposition.
///
/// # Soundness
///
/// Every axiom of every supported level (RC, RA, CC, PC, SI, SER and
/// mixed specs) constrains a reader through `po`/`so`/`wr` edges and
/// same-variable write conflicts only. `wr` edges are same-variable and
/// sessions lie wholly inside one component, so *no* axiom ever relates
/// transactions of different components. Hence:
///
/// * if each component admits a commit order satisfying its transactions'
///   axioms, **any** interleaving of those orders that preserves each
///   component's internal order is a commit order for the whole history —
///   cross-component pairs are unconstrained (no shared variables, no
///   shared sessions), so their relative order can never violate an axiom;
/// * conversely, the restriction of a whole-history commit order to a
///   component's transactions is a commit order for that component.
///
/// The whole-history verdict is therefore exactly the conjunction of the
/// per-component verdicts, and [`check_witnessed`] recombines evidence
/// losslessly: witnesses merge per-component commit orders (deterministic
/// smallest-head merge, still [`Witness::replays`]-verifiable against the
/// original history) and a violation core of any component *is* a core of
/// the whole history once its variables are mapped back through the
/// component's renumbering.
///
/// # Cost model
///
/// Decomposition is pure pre-processing: a boolean [`check`] only splits
/// when the spec has a strong member (PC/SI/SER), where the commit-order
/// search is super-polynomial in instance size and splitting pays
/// exponentially; polynomial weak checks go straight to the wrapped
/// engine, whose incremental indexes are faster than any rebuild.
/// [`check_witnessed`] (once per complete history / recorded execution)
/// always decomposes. Single-component histories short-circuit to the
/// wrapped engine on the *original* object, preserving its memo and
/// incremental state.
///
/// [`check`]: ConsistencyChecker::check
/// [`check_witnessed`]: ConsistencyChecker::check_witnessed
pub struct DecomposingChecker {
    spec: LevelSpec,
    /// Whole-history engine: the single-component fast path, keeping
    /// incrementality and memoisation on the original history object.
    inner: Box<dyn ConsistencyChecker>,
    /// Component engine: sub-histories are fresh objects, so this engine
    /// full-rebuilds per component but memoises canonical component
    /// shapes across calls (components are var-renumbered canonically).
    scratch: Box<dyn ConsistencyChecker>,
    /// Whether boolean checks attempt to split (see the cost model above).
    split_boolean_checks: bool,
    components: u64,
    largest_component: u64,
    decomposed_checks: u64,
}

impl DecomposingChecker {
    /// Creates a decomposing checker for a level specification, with
    /// result memoisation on or off for both wrapped engines.
    pub fn new(spec: &LevelSpec, memoize: bool) -> Self {
        DecomposingChecker {
            spec: spec.clone(),
            inner: engine_for_spec_with(spec, memoize),
            scratch: engine_for_spec_with(spec, memoize),
            split_boolean_checks: spec.has_strong(),
            components: 0,
            largest_component: 0,
            decomposed_checks: 0,
        }
    }

    /// Maximum number of communication-graph components seen over all
    /// decomposed histories (0 if nothing was decomposed yet).
    pub fn components(&self) -> u64 {
        self.components
    }

    /// Transaction count of the largest component seen (0 if nothing was
    /// decomposed yet).
    pub fn largest_component(&self) -> u64 {
        self.largest_component
    }

    /// Checks that actually split into ≥ 2 independently-checked parts.
    pub fn decomposed_checks(&self) -> u64 {
        self.decomposed_checks
    }

    fn note(&mut self, d: &Decomposition) {
        self.components = self.components.max(d.len() as u64);
        self.largest_component = self.largest_component.max(d.largest() as u64);
    }

    /// Merges per-component witness commit orders into one whole-history
    /// order: init first, then a deterministic smallest-head interleaving
    /// preserving each component's internal order (any interleaving is
    /// valid — see the soundness note on the type).
    fn merge_witnesses(parts: Vec<Witness>) -> Witness {
        let mut queues: Vec<VecDeque<TxId>> = parts
            .into_iter()
            .map(|w| {
                w.commit_order
                    .into_iter()
                    .filter(|t| !t.is_init())
                    .collect()
            })
            .collect();
        let mut order = vec![TxId::INIT];
        loop {
            let next = queues
                .iter()
                .enumerate()
                .filter_map(|(k, q)| q.front().map(|t| (*t, k)))
                .min();
            match next {
                Some((t, k)) => {
                    queues[k].pop_front();
                    order.push(t);
                }
                None => break,
            }
        }
        Witness {
            commit_order: order,
        }
    }

    /// Checks every component independently, recombining the evidence.
    fn check_witnessed_decomposed(&mut self, h: &History, d: &Decomposition) -> Verdict {
        self.decomposed_checks += 1;
        let mut witnesses = Vec::with_capacity(d.len());
        for c in &d.components {
            let sub = component_history(h, c);
            match self.scratch.check_witnessed(&sub) {
                Verdict::Consistent(w) => witnesses.push(w),
                Verdict::Inconsistent(v) => {
                    // Session/tx/event ids are original already; only the
                    // component's dense variable ids need mapping back.
                    let cycle = v
                        .cycle
                        .into_iter()
                        .map(|mut e: ViolationEdge| {
                            if let txdpor_history::EdgeReason::Forced(ref mut i) = e.reason {
                                i.var = c.original_var(i.var);
                            }
                            e
                        })
                        .collect();
                    return Verdict::Inconsistent(Violation { cycle });
                }
            }
        }
        let witness = Self::merge_witnesses(witnesses);
        debug_assert!(
            witness.replays(h, &self.spec),
            "recombined witness fails to replay"
        );
        Verdict::Consistent(witness)
    }
}

impl std::fmt::Debug for DecomposingChecker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecomposingChecker")
            .field("spec", &self.spec)
            .field("split_boolean_checks", &self.split_boolean_checks)
            .field("components", &self.components)
            .field("largest_component", &self.largest_component)
            .field("decomposed_checks", &self.decomposed_checks)
            .finish_non_exhaustive()
    }
}

impl ConsistencyChecker for DecomposingChecker {
    fn spec(&self) -> LevelSpec {
        self.spec.clone()
    }

    fn level(&self) -> IsolationLevel {
        self.inner.level()
    }

    fn check(&mut self, h: &History) -> bool {
        if !self.split_boolean_checks || h.num_transactions() < 2 {
            return self.inner.check(h);
        }
        let d = decompose(h);
        self.note(&d);
        if d.len() <= 1 {
            return self.inner.check(h);
        }
        self.decomposed_checks += 1;
        d.components.iter().all(|c| {
            let sub = component_history(h, c);
            self.scratch.check(&sub)
        })
    }

    fn check_witnessed(&mut self, h: &History) -> Verdict {
        if h.num_transactions() < 2 {
            return self.inner.check_witnessed(h);
        }
        let d = decompose(h);
        self.note(&d);
        if d.len() <= 1 {
            return self.inner.check_witnessed(h);
        }
        self.check_witnessed_decomposed(h, &d)
    }

    fn attach_shared_memo(&mut self, memo: Arc<SharedMemo>) {
        self.inner.attach_shared_memo(Arc::clone(&memo));
        self.scratch.attach_shared_memo(memo);
    }

    fn stats(&self) -> EngineStats {
        let mut s = self.inner.stats();
        s.absorb(&self.scratch.stats());
        s
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.scratch.reset();
        self.components = 0;
        self.largest_component = 0;
        self.decomposed_checks = 0;
    }
}
