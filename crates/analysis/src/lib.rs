//! Static pre-processing for the txdpor checking and exploration stack.
//!
//! Two cooperating passes, both *pure pre-processing*: they never change a
//! verdict, they only make computing it cheaper.
//!
//! * [`fn@decompose`] — **communication-graph decomposition of histories**.
//!   Sessions touching a common variable are connected in the
//!   communication graph; its connected components induce sub-histories
//!   that can be checked independently (every axiom of every supported
//!   isolation level is var-local or session-local, so consistency of the
//!   whole history is exactly the conjunction over components).
//!   [`DecomposingChecker`] wraps any [`ConsistencyChecker`] with this
//!   split, recombining per-component witnesses into a whole-history
//!   commit order and mapping violation cores back to original ids.
//! * [`footprint`] — **static read/write-set extraction over program
//!   texts**. An abstract interpretation of transaction bodies (branches
//!   union, statically unknown addresses widen to ⊤ per variable family)
//!   yields per-transaction-type footprints, a sound *independence*
//!   relation between transaction types, and a prediction of the dynamic
//!   component structure before anything executes.
//!
//! [`ConsistencyChecker`]: txdpor_history::ConsistencyChecker

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checker;
pub mod decompose;
pub mod footprint;

pub use checker::DecomposingChecker;
pub use decompose::{decompose, Component, Decomposition};
pub use footprint::{AccessSet, ProgramFootprints, TxFootprint};
