//! Static read/write-set extraction over transactional programs.
//!
//! An abstract interpretation of transaction bodies computes, for every
//! transaction *type* (a `(session, index)` position of the program text),
//! a sound over-approximation of the global variables it can read and
//! write in **any** execution:
//!
//! * locals are tracked by a constant-propagation domain — a local is
//!   either a known [`Value`] (its assignment evaluated from known
//!   operands) or ⊤ (in particular after every `read`, whose result is
//!   execution-dependent);
//! * both branches of an `if` are unioned and their environments joined
//!   pointwise (differing bindings widen to ⊤);
//! * a global reference `base[e]` with a statically known integer index
//!   contributes the exact dynamic name `base[i]`; an unknown index widens
//!   to ⊤ *for that variable family* — every `base[·]` cell;
//! * `abort` is treated as a no-op (events before an abort still happen,
//!   anything after can only shrink the dynamic sets).
//!
//! From the footprints follow a sound *independence* relation between
//! transaction types (no write-write, write-read or read-write overlap is
//! statically possible — so the transactions can never dynamically
//! conflict) and a static prediction of the communication-graph component
//! structure (a coarsening of [`fn@crate::decompose`]'s dynamic split).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use txdpor_history::{History, TransactionLog, Value, VarTable};
use txdpor_program::{Env, Expr, GlobalRef, Instr, Program};

/// An over-approximated set of dynamic global-variable names.
///
/// Dynamic names come from [`GlobalRef::resolve`]: a plain reference
/// `base` resolves to `"base"`, an indexed one to `"base[i]"` — a plain
/// name and an indexed cell of the same base are *different* variables.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessSet {
    /// Plain (un-indexed) names accessed.
    plain: BTreeSet<String>,
    /// `(base, i)` cells accessed at a statically known index.
    exact: BTreeSet<(String, i64)>,
    /// Bases accessed at a statically unknown index: ⊤ over the whole
    /// `base[·]` family (but not over the plain name `base`).
    families: BTreeSet<String>,
}

impl AccessSet {
    fn insert_ref(&mut self, global: &GlobalRef, env: &AbsEnv) {
        match &global.index {
            None => {
                self.plain.insert(global.base.clone());
            }
            Some(e) => match env.eval(e).and_then(|v| v.as_int()) {
                Some(i) => {
                    self.exact.insert((global.base.clone(), i));
                }
                None => {
                    self.families.insert(global.base.clone());
                }
            },
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.plain.is_empty() && self.exact.is_empty() && self.families.is_empty()
    }

    /// Whether the two over-approximations can denote a common dynamic
    /// variable.
    pub fn overlaps(&self, other: &AccessSet) -> bool {
        self.plain.intersection(&other.plain).next().is_some()
            || self.exact.intersection(&other.exact).next().is_some()
            || self.families.intersection(&other.families).next().is_some()
            || self.exact.iter().any(|(b, _)| other.families.contains(b))
            || other.exact.iter().any(|(b, _)| self.families.contains(b))
    }

    /// Whether the set covers a dynamic variable name (as interned in a
    /// [`VarTable`] by [`GlobalRef::resolve`]).
    pub fn covers_name(&self, name: &str) -> bool {
        match name.find('[') {
            Some(k) if name.ends_with(']') => {
                let base = &name[..k];
                if self.families.contains(base) {
                    return true;
                }
                name[k + 1..name.len() - 1]
                    .parse::<i64>()
                    .is_ok_and(|i| self.exact.contains(&(base.to_owned(), i)))
            }
            _ => self.plain.contains(name),
        }
    }

    /// Number of distinct statically named entries (families count as one).
    pub fn len(&self) -> usize {
        self.plain.len() + self.exact.len() + self.families.len()
    }
}

impl fmt::Display for AccessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut item = |f: &mut fmt::Formatter<'_>, s: &str| -> fmt::Result {
            if !first {
                f.write_str(",")?;
            }
            first = false;
            f.write_str(s)
        };
        f.write_str("{")?;
        for b in &self.plain {
            item(f, b)?;
        }
        for (b, i) in &self.exact {
            item(f, &format!("{b}[{i}]"))?;
        }
        for b in &self.families {
            item(f, &format!("{b}[⊤]"))?;
        }
        f.write_str("}")
    }
}

/// Static footprint of one transaction type.
#[derive(Clone, Debug, Default)]
pub struct TxFootprint {
    /// Over-approximation of the globals any execution can read.
    pub reads: AccessSet,
    /// Over-approximation of the globals any execution can write.
    pub writes: AccessSet,
}

impl TxFootprint {
    /// Whether the two transaction types can dynamically conflict: a
    /// write-write, write-read or read-write overlap is statically
    /// possible.
    pub fn may_conflict(&self, other: &TxFootprint) -> bool {
        self.writes.overlaps(&other.writes)
            || self.writes.overlaps(&other.reads)
            || self.reads.overlaps(&other.writes)
    }

    /// Whether the two transaction types can touch a common variable at
    /// all (read-read included) — the static communication-graph edge.
    pub fn shares_variable(&self, other: &TxFootprint) -> bool {
        self.may_conflict(other) || self.reads.overlaps(&other.reads)
    }

    /// Whether the footprint covers every read and every write event of an
    /// executed transaction log, resolving [`txdpor_history::Var`] ids
    /// through the execution's variable table. Returns the offending
    /// `(kind, name)` on divergence.
    pub fn covers_log(&self, log: &TransactionLog, vars: &VarTable) -> Result<(), String> {
        for e in &log.events {
            match &e.kind {
                txdpor_history::EventKind::Read(x) => {
                    let name = vars.name(*x);
                    if !self.reads.covers_name(name) {
                        return Err(format!(
                            "read of `{name}` outside static set {}",
                            self.reads
                        ));
                    }
                }
                txdpor_history::EventKind::Write(x, _) => {
                    let name = vars.name(*x);
                    if !self.writes.covers_name(name) {
                        return Err(format!(
                            "write of `{name}` outside static set {}",
                            self.writes
                        ));
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// Constant-propagation abstract environment: known locals carry their
/// value, ⊤ locals are absent from the concrete view.
#[derive(Clone, Debug, Default)]
struct AbsEnv {
    /// `Some(v)` = known to be `v` in every execution reaching here;
    /// `None` = ⊤.
    locals: BTreeMap<String, Option<Value>>,
}

impl AbsEnv {
    /// Evaluates an expression to a known value, or `None` when any input
    /// is ⊤ (or evaluation would fail).
    fn eval(&self, e: &Expr) -> Option<Value> {
        let mut env = Env::new();
        for (name, v) in &self.locals {
            if let Some(v) = v {
                env.set(name, v.clone());
            }
        }
        e.eval(&env).ok()
    }

    fn set(&mut self, local: &str, v: Option<Value>) {
        self.locals.insert(local.to_owned(), v);
    }

    /// Pointwise join of two branch environments: bindings agreeing on a
    /// known value stay known, everything else widens to ⊤.
    fn join(a: AbsEnv, b: AbsEnv) -> AbsEnv {
        let mut out = AbsEnv::default();
        let keys: BTreeSet<&String> = a.locals.keys().chain(b.locals.keys()).collect();
        for k in keys {
            let v = match (a.locals.get(k), b.locals.get(k)) {
                (Some(Some(x)), Some(Some(y))) if x == y => Some(x.clone()),
                _ => None,
            };
            out.locals.insert(k.clone(), v);
        }
        out
    }
}

fn interpret(body: &[Instr], env: &mut AbsEnv, fp: &mut TxFootprint) {
    for instr in body {
        match instr {
            Instr::Assign { local, expr } => {
                let v = env.eval(expr);
                env.set(local, v);
            }
            Instr::Read { local, global } => {
                fp.reads.insert_ref(global, env);
                // The value read depends on the execution: ⊤.
                env.set(local, None);
            }
            Instr::Write { global, .. } => {
                fp.writes.insert_ref(global, env);
            }
            Instr::Abort => {}
            Instr::If {
                then_branch,
                else_branch,
                ..
            } => {
                let mut then_env = env.clone();
                let mut else_env = env.clone();
                interpret(then_branch, &mut then_env, fp);
                interpret(else_branch, &mut else_env, fp);
                *env = AbsEnv::join(then_env, else_env);
            }
        }
    }
}

/// Per-transaction-type footprints of a whole program, with the derived
/// independence relation and component prediction.
#[derive(Clone, Debug)]
pub struct ProgramFootprints {
    /// `per_tx[session][index]`.
    per_tx: Vec<Vec<TxFootprint>>,
    /// Flat base index of each session in the independence matrix.
    offsets: Vec<usize>,
    /// Total number of transaction types (side of the matrix).
    n: usize,
    /// Row-major `n × n` matrix: `true` iff the two transaction types are
    /// statically independent (can never conflict).
    independent: Vec<bool>,
}

impl ProgramFootprints {
    /// Runs the abstract interpretation over every transaction of the
    /// program.
    pub fn analyze(p: &Program) -> ProgramFootprints {
        let per_tx: Vec<Vec<TxFootprint>> = p
            .sessions
            .iter()
            .map(|s| {
                s.transactions
                    .iter()
                    .map(|t| {
                        let mut fp = TxFootprint::default();
                        let mut env = AbsEnv::default();
                        interpret(&t.body, &mut env, &mut fp);
                        fp
                    })
                    .collect()
            })
            .collect();
        let mut offsets = Vec::with_capacity(per_tx.len());
        let mut n = 0usize;
        for s in &per_tx {
            offsets.push(n);
            n += s.len();
        }
        let flat: Vec<&TxFootprint> = per_tx.iter().flatten().collect();
        let mut independent = vec![false; n * n];
        for a in 0..n {
            for b in 0..n {
                independent[a * n + b] = !flat[a].may_conflict(flat[b]);
            }
        }
        ProgramFootprints {
            per_tx,
            offsets,
            n,
            independent,
        }
    }

    /// The footprint of the transaction type at `(session, index)`.
    pub fn footprint(&self, session: usize, index: usize) -> Option<&TxFootprint> {
        self.per_tx.get(session)?.get(index)
    }

    /// Total number of transaction types.
    pub fn num_types(&self) -> usize {
        self.n
    }

    fn flat(&self, session: usize, index: usize) -> Option<usize> {
        let base = *self.offsets.get(session)?;
        (index < self.per_tx[session].len()).then_some(base + index)
    }

    /// Whether the transaction types at the two positions are statically
    /// independent — they can never dynamically conflict, in any
    /// execution. Unknown positions are conservatively dependent.
    pub fn independent(&self, a: (usize, usize), b: (usize, usize)) -> bool {
        match (self.flat(a.0, a.1), self.flat(b.0, b.1)) {
            (Some(i), Some(j)) => self.independent[i * self.n + j],
            _ => false,
        }
    }

    /// Same query addressed by executed transaction logs (their session id
    /// and program index identify the transaction type).
    pub fn independent_logs(&self, a: &TransactionLog, b: &TransactionLog) -> bool {
        self.independent(
            (a.session.0 as usize, a.program_index),
            (b.session.0 as usize, b.program_index),
        )
    }

    /// Predicted number of communication-graph components over the
    /// program's sessions: sessions whose transaction types can touch a
    /// common variable are joined. Every dynamic decomposition of an
    /// execution of the program has **at least** this many components
    /// (the static graph over-approximates the dynamic edges).
    pub fn predicted_components(&self) -> usize {
        let n = self.per_tx.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        for s1 in 0..n {
            for s2 in s1 + 1..n {
                let touch = self.per_tx[s1]
                    .iter()
                    .any(|a| self.per_tx[s2].iter().any(|b| a.shares_variable(b)));
                if touch {
                    let (r1, r2) = (find(&mut parent, s1), find(&mut parent, s2));
                    if r1 != r2 {
                        parent[r1.max(r2)] = r1.min(r2);
                    }
                }
            }
        }
        (0..n).filter(|&i| find(&mut parent, i) == i).count()
    }

    /// Debug-build soundness check: every executed transaction's dynamic
    /// read/write events must fall inside its type's static footprint.
    /// Returns the offending transaction and divergence on failure.
    pub fn check_covers_history(&self, h: &History, vars: &VarTable) -> Result<(), String> {
        for log in h.transactions() {
            let Some(fp) = self.footprint(log.session.0 as usize, log.program_index) else {
                return Err(format!(
                    "transaction {} at (s{}, i{}) has no static footprint",
                    log.id, log.session.0, log.program_index
                ));
            };
            fp.covers_log(log, vars).map_err(|e| {
                format!(
                    "static footprint unsound for {} (s{}, program index {}): {e}",
                    log.id, log.session.0, log.program_index
                )
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdpor_program::dsl::*;
    use txdpor_program::{Session, TransactionDef};

    fn two_session_program() -> Program {
        // s0: reads x, conditionally writes x; writes order[id] for a
        //     constant id, and stock[k] for a k it read (unknown index).
        // s1: touches only y.
        let t0 = TransactionDef::new(
            "touch-x",
            vec![
                read("a", g("x")),
                iff(
                    ge(local("a"), cint(1)),
                    vec![write(g("x"), add(local("a"), cint(1)))],
                ),
                assign("id", cint(7)),
                write(gi("order", local("id")), cint(1)),
                read("k", g("next")),
                write(gi("stock", local("k")), cint(0)),
            ],
        );
        let t1 = TransactionDef::new("touch-y", vec![read("b", g("y")), write(g("y"), cint(2))]);
        Program::new(vec![Session::new(vec![t0]), Session::new(vec![t1])])
    }

    #[test]
    fn footprints_track_exact_and_top_addresses() {
        let fps = ProgramFootprints::analyze(&two_session_program());
        let fp = fps.footprint(0, 0).expect("footprint of s0.t0");
        assert!(fp.reads.covers_name("x"));
        assert!(fp.reads.covers_name("next"));
        assert!(fp.writes.covers_name("x"));
        // Constant-propagated index: exactly order[7].
        assert!(fp.writes.covers_name("order[7]"));
        assert!(!fp.writes.covers_name("order[8]"));
        // Unknown index: the whole stock family, but not plain `stock`.
        assert!(fp.writes.covers_name("stock[3]"));
        assert!(fp.writes.covers_name("stock[999]"));
        assert!(!fp.writes.covers_name("stock"));
        assert!(!fp.writes.covers_name("y"));
    }

    #[test]
    fn independence_and_component_prediction() {
        let fps = ProgramFootprints::analyze(&two_session_program());
        assert!(fps.independent((0, 0), (1, 0)));
        assert!(!fps.independent((0, 0), (0, 0)));
        // Unknown positions are conservatively dependent.
        assert!(!fps.independent((0, 0), (5, 0)));
        assert_eq!(fps.predicted_components(), 2);
    }

    #[test]
    fn branches_union_and_joins_widen() {
        // The else-branch writes a different cell than the then-branch;
        // both must appear. After the join the local is ⊤, so the final
        // write widens to the family.
        let t = TransactionDef::new(
            "branchy",
            vec![
                read("c", g("flag")),
                if_else(
                    ge(local("c"), cint(1)),
                    vec![assign("i", cint(1))],
                    vec![assign("i", cint(2))],
                ),
                write(gi("row", local("i")), cint(0)),
            ],
        );
        let p = Program::new(vec![Session::new(vec![t])]);
        let fps = ProgramFootprints::analyze(&p);
        let fp = fps.footprint(0, 0).expect("footprint");
        assert!(fp.writes.covers_name("row[1]"));
        assert!(fp.writes.covers_name("row[2]"));
        // ⊤ join covers any cell the two known values disagree on.
        assert!(fp.writes.covers_name("row[55]"));
    }

    #[test]
    fn read_read_overlap_is_not_a_conflict_but_shares_a_variable() {
        let reader = || TransactionDef::new("r", vec![read("a", g("x"))]);
        let p = Program::new(vec![
            Session::new(vec![reader()]),
            Session::new(vec![reader()]),
        ]);
        let fps = ProgramFootprints::analyze(&p);
        assert!(fps.independent((0, 0), (1, 0)));
        // …but they still share a variable, so one predicted component.
        assert_eq!(fps.predicted_components(), 1);
    }
}
