//! Property test: decomposed checking is indistinguishable from
//! whole-history checking — same verdicts, replayable recombined
//! witnesses, structurally valid recombined violation cores — over random
//! history × spec pairs (PC and mixed per-transaction specs included).

use txdpor_analysis::{decompose, DecomposingChecker};
use txdpor_history::check::satisfies;
use txdpor_history::testkit::{assert_verdict_valid, random_history, random_spec};
use txdpor_history::{satisfies_spec, ConsistencyChecker, IsolationLevel, LevelSpec};

/// A corpus wide enough (4 sessions over 4 variables) that a healthy
/// fraction of histories genuinely split into ≥ 2 components.
fn corpus(seed: u64) -> txdpor_history::History {
    random_history(seed, 4, 2, 4)
}

#[test]
fn decomposed_verdict_equals_whole_history_verdict_uniform() {
    let mut split_seen = 0u32;
    for seed in 0..250u64 {
        let h = corpus(seed);
        if decompose(&h).len() > 1 {
            split_seen += 1;
        }
        for level in IsolationLevel::ALL {
            let spec = LevelSpec::uniform(level);
            let expected = satisfies(&h, level);
            let mut dc = DecomposingChecker::new(&spec, true);
            assert_eq!(
                dc.check(&h),
                expected,
                "decomposed boolean verdict diverged for {level} on seed {seed}:\n{h}"
            );
            let verdict = dc.check_witnessed(&h);
            assert_verdict_valid(
                &h,
                &spec,
                &verdict,
                expected,
                &format!("decomposed {level} on seed {seed}"),
            );
        }
    }
    // The corpus must actually exercise the decomposed path, not just the
    // single-component fast path.
    assert!(
        split_seen >= 25,
        "corpus barely decomposes: only {split_seen}/250 histories split"
    );
}

#[test]
fn decomposed_verdict_equals_whole_history_verdict_mixed_specs() {
    for seed in 0..250u64 {
        let h = corpus(seed);
        let spec = random_spec(seed, &h);
        let expected = satisfies_spec(&h, &spec);
        let mut dc = DecomposingChecker::new(&spec, true);
        assert_eq!(
            dc.check(&h),
            expected,
            "decomposed boolean verdict diverged for spec {spec} on seed {seed}:\n{h}"
        );
        let verdict = dc.check_witnessed(&h);
        assert_verdict_valid(
            &h,
            &spec,
            &verdict,
            expected,
            &format!("decomposed spec {spec} on seed {seed}"),
        );
    }
}

#[test]
fn counters_track_the_decomposition() {
    // A history that provably splits: sessions 0–1 on variable 0,
    // sessions 2–3 on variable 1 (seeds are searched for that shape).
    for seed in 0..250u64 {
        let h = corpus(seed);
        let d = decompose(&h);
        if d.len() < 2 {
            continue;
        }
        let spec = LevelSpec::uniform(IsolationLevel::Serializability);
        let mut dc = DecomposingChecker::new(&spec, true);
        dc.check(&h);
        assert_eq!(dc.components(), d.len() as u64);
        assert_eq!(dc.largest_component(), d.largest() as u64);
        assert_eq!(dc.decomposed_checks(), 1);
        dc.reset();
        assert_eq!(dc.components(), 0);
        return;
    }
    panic!("no splitting history found in the corpus");
}
