//! Local-variable expressions and environments.
//!
//! The paper leaves the syntax of local expressions unspecified (§2.1); we
//! provide integer arithmetic, comparisons, Boolean connectives and a few
//! set operations so that the SQL-style benchmark applications of §7.2 can
//! be modelled (tables as "set" variables of row ids).

use std::collections::BTreeMap;
use std::fmt;

use txdpor_history::Value;

/// Error raised when evaluating an expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A local variable was used before being assigned.
    UndefinedLocal(String),
    /// An operand had the wrong type (e.g. adding a set to an integer).
    TypeMismatch {
        /// What the operator expected.
        expected: &'static str,
        /// A rendering of the offending value.
        found: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UndefinedLocal(name) => write!(f, "undefined local variable `{name}`"),
            EvalError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// A valuation of local variables, scoped to the current transaction of a
/// session (rule `spawn` of the operational semantics resets it).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Env {
    vars: BTreeMap<String, Value>,
}

impl Env {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a local variable.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.vars.get(name)
    }

    /// Assigns a local variable.
    pub fn set(&mut self, name: &str, value: Value) {
        self.vars.insert(name.to_owned(), value);
    }

    /// Number of bound locals.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether no local is bound.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Iterates over the bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.vars.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// An expression over local variables, interpreted as a [`Value`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// A constant value.
    Const(Value),
    /// The current value of a local variable.
    Local(String),
    /// Integer addition.
    Add(Box<Expr>, Box<Expr>),
    /// Integer subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Integer multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Equality test (works on any two values of the same shape).
    Eq(Box<Expr>, Box<Expr>),
    /// Disequality test.
    Ne(Box<Expr>, Box<Expr>),
    /// Integer less-than.
    Lt(Box<Expr>, Box<Expr>),
    /// Integer less-or-equal.
    Le(Box<Expr>, Box<Expr>),
    /// Integer greater-than.
    Gt(Box<Expr>, Box<Expr>),
    /// Integer greater-or-equal.
    Ge(Box<Expr>, Box<Expr>),
    /// Boolean conjunction (on truthiness).
    And(Box<Expr>, Box<Expr>),
    /// Boolean disjunction (on truthiness).
    Or(Box<Expr>, Box<Expr>),
    /// Boolean negation (on truthiness).
    Not(Box<Expr>),
    /// Set insertion: `SetInsert(s, e)` is `s ∪ {e}`.
    SetInsert(Box<Expr>, Box<Expr>),
    /// Set removal: `SetRemove(s, e)` is `s \ {e}`.
    SetRemove(Box<Expr>, Box<Expr>),
    /// Set membership test.
    SetContains(Box<Expr>, Box<Expr>),
    /// Cardinality of a set.
    SetSize(Box<Expr>),
}

impl Expr {
    /// Evaluates the expression under the given environment.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if a local is unbound or an operand has the
    /// wrong type.
    pub fn eval(&self, env: &Env) -> Result<Value, EvalError> {
        fn int(v: Value) -> Result<i64, EvalError> {
            v.as_int().ok_or(EvalError::TypeMismatch {
                expected: "integer",
                found: v.to_string(),
            })
        }
        fn set(v: Value) -> Result<std::collections::BTreeSet<i64>, EvalError> {
            match v {
                Value::Set(s) => Ok(s),
                other => Err(EvalError::TypeMismatch {
                    expected: "set",
                    found: other.to_string(),
                }),
            }
        }
        match self {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Local(name) => env
                .get(name)
                .cloned()
                .ok_or_else(|| EvalError::UndefinedLocal(name.clone())),
            Expr::Add(a, b) => Ok(Value::Int(int(a.eval(env)?)? + int(b.eval(env)?)?)),
            Expr::Sub(a, b) => Ok(Value::Int(int(a.eval(env)?)? - int(b.eval(env)?)?)),
            Expr::Mul(a, b) => Ok(Value::Int(int(a.eval(env)?)? * int(b.eval(env)?)?)),
            Expr::Eq(a, b) => Ok(Value::bool(a.eval(env)? == b.eval(env)?)),
            Expr::Ne(a, b) => Ok(Value::bool(a.eval(env)? != b.eval(env)?)),
            Expr::Lt(a, b) => Ok(Value::bool(int(a.eval(env)?)? < int(b.eval(env)?)?)),
            Expr::Le(a, b) => Ok(Value::bool(int(a.eval(env)?)? <= int(b.eval(env)?)?)),
            Expr::Gt(a, b) => Ok(Value::bool(int(a.eval(env)?)? > int(b.eval(env)?)?)),
            Expr::Ge(a, b) => Ok(Value::bool(int(a.eval(env)?)? >= int(b.eval(env)?)?)),
            Expr::And(a, b) => Ok(Value::bool(a.eval(env)?.truthy() && b.eval(env)?.truthy())),
            Expr::Or(a, b) => Ok(Value::bool(a.eval(env)?.truthy() || b.eval(env)?.truthy())),
            Expr::Not(a) => Ok(Value::bool(!a.eval(env)?.truthy())),
            Expr::SetInsert(s, e) => {
                let mut s = set(s.eval(env)?)?;
                s.insert(int(e.eval(env)?)?);
                Ok(Value::Set(s))
            }
            Expr::SetRemove(s, e) => {
                let mut s = set(s.eval(env)?)?;
                s.remove(&int(e.eval(env)?)?);
                Ok(Value::Set(s))
            }
            Expr::SetContains(s, e) => {
                let s = set(s.eval(env)?)?;
                Ok(Value::bool(s.contains(&int(e.eval(env)?)?)))
            }
            Expr::SetSize(s) => Ok(Value::Int(set(s.eval(env)?)?.len() as i64)),
        }
    }
}

impl From<i64> for Expr {
    fn from(i: i64) -> Self {
        Expr::Const(Value::Int(i))
    }
}

impl From<Value> for Expr {
    fn from(v: Value) -> Self {
        Expr::Const(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;

    #[test]
    fn arithmetic_and_comparisons() {
        let mut env = Env::new();
        env.set("a", Value::Int(3));
        env.set("b", Value::Int(5));
        assert_eq!(add(local("a"), local("b")).eval(&env), Ok(Value::Int(8)));
        assert_eq!(sub(local("b"), cint(1)).eval(&env), Ok(Value::Int(4)));
        assert_eq!(mul(local("a"), cint(2)).eval(&env), Ok(Value::Int(6)));
        assert_eq!(lt(local("a"), local("b")).eval(&env), Ok(Value::Int(1)));
        assert_eq!(ge(local("a"), local("b")).eval(&env), Ok(Value::Int(0)));
        assert_eq!(le(local("a"), cint(3)).eval(&env), Ok(Value::Int(1)));
        assert_eq!(gt(cint(9), local("b")).eval(&env), Ok(Value::Int(1)));
    }

    #[test]
    fn equality_and_booleans() {
        let mut env = Env::new();
        env.set("a", Value::Int(1));
        assert_eq!(eq(local("a"), cint(1)).eval(&env), Ok(Value::Int(1)));
        assert_eq!(ne(local("a"), cint(1)).eval(&env), Ok(Value::Int(0)));
        assert_eq!(and(cint(1), cint(0)).eval(&env), Ok(Value::Int(0)));
        assert_eq!(or(cint(1), cint(0)).eval(&env), Ok(Value::Int(1)));
        assert_eq!(not(cint(0)).eval(&env), Ok(Value::Int(1)));
    }

    #[test]
    fn set_operations() {
        let mut env = Env::new();
        env.set("s", Value::set_of([1, 2]));
        assert_eq!(
            set_insert(local("s"), cint(3)).eval(&env),
            Ok(Value::set_of([1, 2, 3]))
        );
        assert_eq!(
            set_remove(local("s"), cint(1)).eval(&env),
            Ok(Value::set_of([2]))
        );
        assert_eq!(
            set_contains(local("s"), cint(2)).eval(&env),
            Ok(Value::Int(1))
        );
        assert_eq!(
            set_contains(local("s"), cint(9)).eval(&env),
            Ok(Value::Int(0))
        );
        assert_eq!(set_size(local("s")).eval(&env), Ok(Value::Int(2)));
        assert_eq!(empty_set().eval(&env), Ok(Value::empty_set()));
    }

    #[test]
    fn errors_are_reported() {
        let env = Env::new();
        assert_eq!(
            local("missing").eval(&env),
            Err(EvalError::UndefinedLocal("missing".to_owned()))
        );
        let e = add(Expr::Const(Value::empty_set()), cint(1)).eval(&env);
        assert!(matches!(e, Err(EvalError::TypeMismatch { .. })));
        let e = set_size(cint(1)).eval(&env);
        assert!(matches!(e, Err(EvalError::TypeMismatch { .. })));
        // Display implementations do not panic.
        let err = EvalError::UndefinedLocal("x".into());
        assert!(err.to_string().contains('x'));
    }

    #[test]
    fn env_accessors() {
        let mut env = Env::new();
        assert!(env.is_empty());
        env.set("a", Value::Int(1));
        env.set("a", Value::Int(2));
        assert_eq!(env.len(), 1);
        assert_eq!(env.get("a"), Some(&Value::Int(2)));
        assert_eq!(env.iter().count(), 1);
    }

    #[test]
    fn conversions() {
        assert_eq!(Expr::from(4), Expr::Const(Value::Int(4)));
        assert_eq!(
            Expr::from(Value::empty_set()),
            Expr::Const(Value::empty_set())
        );
    }
}
