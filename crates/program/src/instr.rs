//! Program syntax: instructions, transactions, sessions and programs
//! (Fig. 1 of the paper).

use std::fmt;

use txdpor_history::{Value, Var, VarTable};

use crate::expr::{Env, EvalError, Expr};

/// A reference to a global variable, possibly indexed by a locally computed
/// value (e.g. `order[id]` where `id` was read earlier in the transaction).
///
/// Plain references resolve to their base name; indexed references resolve
/// to `base[i]` where `i` is the integer value of the index expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlobalRef {
    /// Base name of the global variable (table/key name).
    pub base: String,
    /// Optional index expression (row id).
    pub index: Option<Expr>,
}

impl GlobalRef {
    /// A plain, un-indexed global variable.
    pub fn plain(base: impl Into<String>) -> Self {
        GlobalRef {
            base: base.into(),
            index: None,
        }
    }

    /// An indexed global variable `base[index]`.
    pub fn indexed(base: impl Into<String>, index: Expr) -> Self {
        GlobalRef {
            base: base.into(),
            index: Some(index),
        }
    }

    /// Resolves the reference to an interned [`Var`] under the given
    /// environment, interning the resulting name in `vars`.
    ///
    /// # Errors
    ///
    /// Returns an error if the index expression fails to evaluate or does
    /// not produce an integer.
    pub fn resolve(&self, env: &Env, vars: &mut VarTable) -> Result<Var, EvalError> {
        match &self.index {
            None => Ok(vars.intern(&self.base)),
            Some(e) => {
                let v = e.eval(env)?;
                let i = v.as_int().ok_or(EvalError::TypeMismatch {
                    expected: "integer index",
                    found: v.to_string(),
                })?;
                Ok(vars.intern(&format!("{}[{}]", self.base, i)))
            }
        }
    }
}

impl fmt::Display for GlobalRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.index {
            None => write!(f, "{}", self.base),
            Some(_) => write!(f, "{}[·]", self.base),
        }
    }
}

/// An instruction of a transaction body (Fig. 1).
#[derive(Clone, Debug, PartialEq)]
pub enum Instr {
    /// `a := e` — assignment to a local variable.
    Assign {
        /// Target local variable.
        local: String,
        /// Expression over locals.
        expr: Expr,
    },
    /// `a := read(x)` — read a global variable into a local.
    Read {
        /// Target local variable.
        local: String,
        /// Global variable to read.
        global: GlobalRef,
    },
    /// `write(x, e)` — write the value of an expression to a global variable.
    Write {
        /// Global variable to write.
        global: GlobalRef,
        /// Expression whose value is written.
        expr: Expr,
    },
    /// `abort` — abort the transaction.
    Abort,
    /// `if (φ) { … } else { … }` — guarded instructions. The paper only has
    /// a then-branch; the else-branch is a convenience (an empty vector
    /// recovers the paper's form).
    If {
        /// Guard expression over locals.
        cond: Expr,
        /// Instructions executed when the guard is true.
        then_branch: Vec<Instr>,
        /// Instructions executed when the guard is false.
        else_branch: Vec<Instr>,
    },
}

/// A transaction of the program text: a named body of instructions,
/// implicitly delimited by `begin`/`commit`.
#[derive(Clone, Debug, PartialEq)]
pub struct TransactionDef {
    /// Human-readable name (used by assertions and reports).
    pub name: String,
    /// Body of the transaction.
    pub body: Vec<Instr>,
}

impl TransactionDef {
    /// Creates a named transaction.
    pub fn new(name: impl Into<String>, body: Vec<Instr>) -> Self {
        TransactionDef {
            name: name.into(),
            body,
        }
    }
}

/// A session: a sequence of transactions sharing a connection.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Session {
    /// The transactions of the session, in session order.
    pub transactions: Vec<TransactionDef>,
}

impl Session {
    /// Creates a session from its transactions.
    pub fn new(transactions: Vec<TransactionDef>) -> Self {
        Session { transactions }
    }
}

/// A bounded transactional program: parallel sessions plus initial values
/// of global variables (written by the implicit `init` transaction).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Program {
    /// The parallel sessions.
    pub sessions: Vec<Session>,
    /// Initial values of global variables, by name. Variables not listed
    /// start at `0`.
    pub init_values: Vec<(String, Value)>,
}

impl Program {
    /// Creates a program from its sessions (all initial values default to 0).
    pub fn new(sessions: Vec<Session>) -> Self {
        Program {
            sessions,
            init_values: Vec::new(),
        }
    }

    /// Adds an initial value for a global variable.
    pub fn with_init(mut self, name: impl Into<String>, value: Value) -> Self {
        self.init_values.push((name.into(), value));
        self
    }

    /// Number of sessions.
    pub fn num_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Total number of transactions across all sessions.
    pub fn num_transactions(&self) -> usize {
        self.sessions.iter().map(|s| s.transactions.len()).sum()
    }

    /// The transaction definition at the given session/program index.
    pub fn transaction(&self, session: usize, index: usize) -> Option<&TransactionDef> {
        self.sessions.get(session)?.transactions.get(index)
    }

    /// Iterates over `(session, index, definition)` for every transaction.
    pub fn all_transactions(&self) -> impl Iterator<Item = (usize, usize, &TransactionDef)> {
        self.sessions.iter().enumerate().flat_map(|(s, sess)| {
            sess.transactions
                .iter()
                .enumerate()
                .map(move |(i, t)| (s, i, t))
        })
    }

    /// Interns the initial values into a fresh history/variable table pair,
    /// as used by the exploration engines.
    pub fn initial_values_interned(&self, vars: &mut VarTable) -> Vec<(Var, Value)> {
        self.init_values
            .iter()
            .map(|(name, v)| (vars.intern(name), v.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;

    #[test]
    fn global_ref_resolution() {
        let mut vars = VarTable::new();
        let mut env = Env::new();
        env.set("id", Value::Int(7));
        let plain = GlobalRef::plain("stock");
        let idx = GlobalRef::indexed("order", local("id"));
        let v = plain.resolve(&env, &mut vars).unwrap();
        assert_eq!(vars.name(v), "stock");
        let v = idx.resolve(&env, &mut vars).unwrap();
        assert_eq!(vars.name(v), "order[7]");
        // Resolution is stable.
        assert_eq!(
            idx.resolve(&env, &mut vars).unwrap(),
            idx.resolve(&env, &mut vars).unwrap()
        );
        assert_eq!(plain.to_string(), "stock");
        assert_eq!(idx.to_string(), "order[·]");
    }

    #[test]
    fn global_ref_resolution_errors() {
        let mut vars = VarTable::new();
        let env = Env::new();
        let idx = GlobalRef::indexed("order", local("missing"));
        assert!(idx.resolve(&env, &mut vars).is_err());
        let mut env = Env::new();
        env.set("s", Value::empty_set());
        let idx = GlobalRef::indexed("order", local("s"));
        assert!(idx.resolve(&env, &mut vars).is_err());
    }

    #[test]
    fn program_structure_queries() {
        let p = Program::new(vec![
            Session::new(vec![
                TransactionDef::new("t0", vec![assign("a", cint(1))]),
                TransactionDef::new("t1", vec![]),
            ]),
            Session::new(vec![TransactionDef::new("t2", vec![])]),
        ])
        .with_init("x", Value::Int(5));
        assert_eq!(p.num_sessions(), 2);
        assert_eq!(p.num_transactions(), 3);
        assert_eq!(p.transaction(0, 1).unwrap().name, "t1");
        assert!(p.transaction(2, 0).is_none());
        assert_eq!(p.all_transactions().count(), 3);
        let mut vars = VarTable::new();
        let init = p.initial_values_interned(&mut vars);
        assert_eq!(init.len(), 1);
        assert_eq!(vars.name(init[0].0), "x");
        assert_eq!(init[0].1, Value::Int(5));
    }
}
