//! A small embedded DSL for writing transactional programs concisely.
//!
//! The helpers mirror the concrete syntax of Fig. 1: `read`, `write`,
//! `assign`, `abort`, `iff`, plus expression constructors. The benchmark
//! applications of `txdpor-apps` and the examples are written with these.
//!
//! # Example
//!
//! The two-session program of Fig. 10a:
//!
//! ```
//! use txdpor_program::dsl::*;
//! use txdpor_program::{Program, Session, TransactionDef};
//!
//! let program = Program::new(vec![
//!     Session::new(vec![TransactionDef::new(
//!         "reader",
//!         vec![read("a", g("x")), read("b", g("y"))],
//!     )]),
//!     Session::new(vec![TransactionDef::new(
//!         "writer",
//!         vec![write(g("x"), cint(2)), write(g("y"), cint(2))],
//!     )]),
//! ]);
//! assert_eq!(program.num_transactions(), 2);
//! ```

use txdpor_history::Value;

use crate::expr::Expr;
use crate::instr::{GlobalRef, Instr, Program, Session, TransactionDef};

// ---------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------

/// Integer constant expression.
pub fn cint(i: i64) -> Expr {
    Expr::Const(Value::Int(i))
}

/// Constant expression from any value.
pub fn cval(v: Value) -> Expr {
    Expr::Const(v)
}

/// The empty-set constant.
pub fn empty_set() -> Expr {
    Expr::Const(Value::empty_set())
}

/// Reference to a local variable.
pub fn local(name: impl Into<String>) -> Expr {
    Expr::Local(name.into())
}

/// Integer addition.
pub fn add(a: Expr, b: Expr) -> Expr {
    Expr::Add(Box::new(a), Box::new(b))
}

/// Integer subtraction.
pub fn sub(a: Expr, b: Expr) -> Expr {
    Expr::Sub(Box::new(a), Box::new(b))
}

/// Integer multiplication.
pub fn mul(a: Expr, b: Expr) -> Expr {
    Expr::Mul(Box::new(a), Box::new(b))
}

/// Equality test.
pub fn eq(a: Expr, b: Expr) -> Expr {
    Expr::Eq(Box::new(a), Box::new(b))
}

/// Disequality test.
pub fn ne(a: Expr, b: Expr) -> Expr {
    Expr::Ne(Box::new(a), Box::new(b))
}

/// Less-than.
pub fn lt(a: Expr, b: Expr) -> Expr {
    Expr::Lt(Box::new(a), Box::new(b))
}

/// Less-or-equal.
pub fn le(a: Expr, b: Expr) -> Expr {
    Expr::Le(Box::new(a), Box::new(b))
}

/// Greater-than.
pub fn gt(a: Expr, b: Expr) -> Expr {
    Expr::Gt(Box::new(a), Box::new(b))
}

/// Greater-or-equal.
pub fn ge(a: Expr, b: Expr) -> Expr {
    Expr::Ge(Box::new(a), Box::new(b))
}

/// Boolean conjunction.
pub fn and(a: Expr, b: Expr) -> Expr {
    Expr::And(Box::new(a), Box::new(b))
}

/// Boolean disjunction.
pub fn or(a: Expr, b: Expr) -> Expr {
    Expr::Or(Box::new(a), Box::new(b))
}

/// Boolean negation.
pub fn not(a: Expr) -> Expr {
    Expr::Not(Box::new(a))
}

/// Set insertion `s ∪ {e}`.
pub fn set_insert(s: Expr, e: Expr) -> Expr {
    Expr::SetInsert(Box::new(s), Box::new(e))
}

/// Set removal `s \ {e}`.
pub fn set_remove(s: Expr, e: Expr) -> Expr {
    Expr::SetRemove(Box::new(s), Box::new(e))
}

/// Set membership `e ∈ s`.
pub fn set_contains(s: Expr, e: Expr) -> Expr {
    Expr::SetContains(Box::new(s), Box::new(e))
}

/// Set cardinality `|s|`.
pub fn set_size(s: Expr) -> Expr {
    Expr::SetSize(Box::new(s))
}

// ---------------------------------------------------------------------
// Global references
// ---------------------------------------------------------------------

/// A plain global variable reference.
pub fn g(base: impl Into<String>) -> GlobalRef {
    GlobalRef::plain(base)
}

/// An indexed global variable reference `base[index]`.
pub fn gi(base: impl Into<String>, index: Expr) -> GlobalRef {
    GlobalRef::indexed(base, index)
}

// ---------------------------------------------------------------------
// Instructions
// ---------------------------------------------------------------------

/// `local := e`.
pub fn assign(local_name: impl Into<String>, expr: Expr) -> Instr {
    Instr::Assign {
        local: local_name.into(),
        expr,
    }
}

/// `local := read(global)`.
pub fn read(local_name: impl Into<String>, global: GlobalRef) -> Instr {
    Instr::Read {
        local: local_name.into(),
        global,
    }
}

/// `write(global, e)`.
pub fn write(global: GlobalRef, expr: Expr) -> Instr {
    Instr::Write { global, expr }
}

/// `abort`.
pub fn abort() -> Instr {
    Instr::Abort
}

/// `if (cond) { body }`.
pub fn iff(cond: Expr, body: Vec<Instr>) -> Instr {
    Instr::If {
        cond,
        then_branch: body,
        else_branch: Vec::new(),
    }
}

/// `if (cond) { then_branch } else { else_branch }`.
pub fn if_else(cond: Expr, then_branch: Vec<Instr>, else_branch: Vec<Instr>) -> Instr {
    Instr::If {
        cond,
        then_branch,
        else_branch,
    }
}

// ---------------------------------------------------------------------
// Program assembly
// ---------------------------------------------------------------------

/// A named transaction.
pub fn tx(name: impl Into<String>, body: Vec<Instr>) -> TransactionDef {
    TransactionDef::new(name, body)
}

/// A session made of the given transactions.
pub fn session(transactions: Vec<TransactionDef>) -> Session {
    Session::new(transactions)
}

/// A program made of the given sessions.
pub fn program(sessions: Vec<Session>) -> Program {
    Program::new(sessions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsl_builds_expected_ast() {
        let p = program(vec![session(vec![tx(
            "t",
            vec![
                read("a", g("x")),
                iff(eq(local("a"), cint(3)), vec![write(g("y"), cint(1))]),
                if_else(
                    gt(local("a"), cint(0)),
                    vec![assign("b", add(local("a"), cint(1)))],
                    vec![abort()],
                ),
            ],
        )])]);
        assert_eq!(p.num_sessions(), 1);
        let t = p.transaction(0, 0).unwrap();
        assert_eq!(t.body.len(), 3);
        assert!(matches!(t.body[0], Instr::Read { .. }));
        assert!(matches!(t.body[1], Instr::If { ref else_branch, .. } if else_branch.is_empty()));
        assert!(matches!(t.body[2], Instr::If { ref else_branch, .. } if else_branch.len() == 1));
    }
}
