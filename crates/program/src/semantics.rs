//! Operational semantics of transactional programs (§2.3, Appendix B),
//! formulated as *replay*: the local state of a transaction is recovered by
//! re-executing its body against the events already recorded in the history.
//!
//! Replay is deterministic because the value returned by every read is
//! fixed by the history (`wr` for external reads, the preceding write of
//! the same transaction for internal ones), so re-running the body always
//! follows the same control-flow path. The exploration algorithms use
//! [`oracle_next`] as their `Next` scheduler (§5.1): it completes the
//! unique pending transaction first and otherwise starts the oracle-order
//! minimal unstarted transaction.

use std::fmt;

use txdpor_history::{
    Event, EventId, EventKind, History, SessionId, TransactionLog, TxId, Value, Var, VarTable,
};

use crate::expr::{Env, EvalError};
use crate::instr::{Instr, Program, TransactionDef};

/// Error raised while replaying a history against a program.
#[derive(Clone, Debug, PartialEq)]
pub enum SemanticsError {
    /// An expression failed to evaluate.
    Eval(EvalError),
    /// The history contains events that the program cannot have produced.
    ReplayMismatch {
        /// What the program expected at this point.
        expected: String,
        /// What the history contains.
        found: String,
    },
    /// The history references a transaction absent from the program.
    UnknownTransaction {
        /// Session of the offending transaction.
        session: u32,
        /// Program index of the offending transaction.
        index: usize,
    },
    /// The history has more than one pending transaction, violating the
    /// scheduler invariant of §5.1.
    MultiplePending,
}

impl fmt::Display for SemanticsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemanticsError::Eval(e) => write!(f, "evaluation error: {e}"),
            SemanticsError::ReplayMismatch { expected, found } => {
                write!(f, "replay mismatch: expected {expected}, found {found}")
            }
            SemanticsError::UnknownTransaction { session, index } => {
                write!(f, "history references transaction {index} of session {session}, which the program does not define")
            }
            SemanticsError::MultiplePending => {
                write!(f, "history has more than one pending transaction")
            }
        }
    }
}

impl std::error::Error for SemanticsError {}

impl From<EvalError> for SemanticsError {
    fn from(e: EvalError) -> Self {
        SemanticsError::Eval(e)
    }
}

/// The next database step of a transaction, as determined by replaying its
/// body against its log.
#[derive(Clone, Debug, PartialEq)]
pub enum TxStep {
    /// A read instruction. `internal_value` is `Some(v)` when the
    /// transaction already wrote the variable (rule `read-local`), in which
    /// case the read returns `v` and needs no `wr` dependency; otherwise
    /// the read is external (rule `read-extern`) and the exploration must
    /// choose a writer.
    Read {
        /// Variable being read.
        var: Var,
        /// Local variable receiving the value.
        local: String,
        /// Value for internal reads.
        internal_value: Option<Value>,
    },
    /// A write instruction with its evaluated value.
    Write {
        /// Variable being written.
        var: Var,
        /// Value to write.
        value: Value,
    },
    /// The transaction body is finished; the next event is `commit`.
    Commit,
    /// An `abort` instruction; the next event is `abort`.
    Abort,
}

/// Result of replaying a transaction's log.
#[derive(Clone, Debug, PartialEq)]
pub struct TxReplay {
    /// Valuation of local variables after consuming every logged event and
    /// the local instructions that follow them.
    pub env: Env,
    /// The next database step, or `None` if the log is complete.
    pub next: Option<TxStep>,
}

/// Control-flow outcome of walking a (possibly nested) instruction block.
enum Flow {
    /// The block completed; continue with the instructions that follow.
    Fallthrough,
    /// The next database step was reached (log exhausted).
    Need(TxStep),
    /// An abort event was consumed from the log: the transaction is over.
    Ended,
}

struct Walker<'a> {
    history: &'a History,
    log: &'a TransactionLog,
    vars: &'a mut VarTable,
    env: Env,
    cursor: usize,
}

impl Walker<'_> {
    fn last_logged_write(&self, var: Var) -> Option<Value> {
        self.log.events[..self.cursor]
            .iter()
            .rev()
            .find_map(|e| match &e.kind {
                EventKind::Write(x, v) if *x == var => Some(v.clone()),
                _ => None,
            })
    }

    fn mismatch(&self, expected: impl Into<String>) -> SemanticsError {
        let found = self
            .log
            .events
            .get(self.cursor)
            .map(|e| e.kind.to_string())
            .unwrap_or_else(|| "end of log".to_owned());
        SemanticsError::ReplayMismatch {
            expected: expected.into(),
            found,
        }
    }

    fn walk(&mut self, body: &[Instr]) -> Result<Flow, SemanticsError> {
        for instr in body {
            match instr {
                Instr::Assign { local, expr } => {
                    let v = expr.eval(&self.env)?;
                    self.env.set(local, v);
                }
                Instr::Read { local, global } => {
                    let var = global.resolve(&self.env, self.vars)?;
                    if self.cursor < self.log.events.len() {
                        let ev = &self.log.events[self.cursor];
                        match &ev.kind {
                            EventKind::Read(x) if *x == var => {
                                let v = self
                                    .history
                                    .read_value(ev.id)
                                    .ok_or_else(|| self.mismatch("read with a defined value"))?;
                                self.env.set(local, v);
                                self.cursor += 1;
                            }
                            _ => return Err(self.mismatch(format!("read({var})"))),
                        }
                    } else {
                        let internal_value = self.last_logged_write(var);
                        return Ok(Flow::Need(TxStep::Read {
                            var,
                            local: local.clone(),
                            internal_value,
                        }));
                    }
                }
                Instr::Write { global, expr } => {
                    let var = global.resolve(&self.env, self.vars)?;
                    if self.cursor < self.log.events.len() {
                        let ev = &self.log.events[self.cursor];
                        match &ev.kind {
                            EventKind::Write(x, _) if *x == var => {
                                self.cursor += 1;
                            }
                            _ => return Err(self.mismatch(format!("write({var})"))),
                        }
                    } else {
                        let value = expr.eval(&self.env)?;
                        return Ok(Flow::Need(TxStep::Write { var, value }));
                    }
                }
                Instr::Abort => {
                    if self.cursor < self.log.events.len() {
                        let ev = &self.log.events[self.cursor];
                        if ev.kind.is_abort() {
                            self.cursor += 1;
                            return Ok(Flow::Ended);
                        }
                        return Err(self.mismatch("abort"));
                    }
                    return Ok(Flow::Need(TxStep::Abort));
                }
                Instr::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    let taken = if cond.eval(&self.env)?.truthy() {
                        then_branch
                    } else {
                        else_branch
                    };
                    match self.walk(taken)? {
                        Flow::Fallthrough => {}
                        other => return Ok(other),
                    }
                }
            }
        }
        Ok(Flow::Fallthrough)
    }
}

/// Replays a transaction's log against its definition, returning the local
/// environment and the next database step (if the log is incomplete).
///
/// # Errors
///
/// Returns [`SemanticsError::ReplayMismatch`] if the log could not have been
/// produced by the definition, or an evaluation error from the body.
pub fn replay_transaction(
    def: &TransactionDef,
    history: &History,
    log: &TransactionLog,
    vars: &mut VarTable,
) -> Result<TxReplay, SemanticsError> {
    let mut walker = Walker {
        history,
        log,
        vars,
        env: Env::new(),
        cursor: 1, // skip the begin event
    };
    debug_assert!(
        log.events.first().is_some_and(|e| e.kind.is_begin()),
        "transaction log must start with begin"
    );
    let flow = walker.walk(&def.body)?;
    let next = match flow {
        Flow::Need(step) => Some(step),
        Flow::Ended => None,
        Flow::Fallthrough => {
            if walker.cursor < log.events.len() {
                let ev = &log.events[walker.cursor];
                if ev.kind.is_commit() {
                    walker.cursor += 1;
                    None
                } else {
                    return Err(walker.mismatch("commit"));
                }
            } else {
                Some(TxStep::Commit)
            }
        }
    };
    if walker.cursor < log.events.len() {
        return Err(walker.mismatch("end of transaction"));
    }
    Ok(TxReplay {
        env: walker.env,
        next,
    })
}

/// What the oracle-order scheduler `Next` should do for the given history.
#[derive(Clone, Debug, PartialEq)]
pub enum SchedulerStep {
    /// Extend the unique pending transaction with the given database step.
    Continue {
        /// Session owning the pending transaction.
        session: SessionId,
        /// The step to perform.
        step: TxStep,
        /// Local environment of the pending transaction before the step.
        env: Env,
    },
    /// Start the next transaction of the given session (a `begin` event).
    Begin {
        /// Session whose next transaction starts.
        session: SessionId,
        /// Index of the transaction within the session's program text.
        program_index: usize,
    },
    /// Every transaction of the program is complete in the history.
    Finished,
}

/// The `Next` scheduler of §5.1: completes the pending transaction if there
/// is one, otherwise starts the oracle-order minimal unstarted transaction
/// (sessions are ordered by id, transactions within a session by position).
///
/// # Errors
///
/// Propagates replay errors, and reports histories with more than one
/// pending transaction or with transactions the program does not define.
pub fn oracle_next(
    program: &Program,
    history: &History,
    vars: &mut VarTable,
) -> Result<SchedulerStep, SemanticsError> {
    let pending = history.pending_txs();
    if pending.len() > 1 {
        return Err(SemanticsError::MultiplePending);
    }
    if let Some(&t) = pending.first() {
        let log = history.tx(t);
        let def = program
            .transaction(log.session.0 as usize, log.program_index)
            .ok_or(SemanticsError::UnknownTransaction {
                session: log.session.0,
                index: log.program_index,
            })?;
        let replay = replay_transaction(def, history, log, vars)?;
        let step = replay.next.ok_or_else(|| SemanticsError::ReplayMismatch {
            expected: "a pending transaction with a next step".to_owned(),
            found: "a complete log".to_owned(),
        })?;
        return Ok(SchedulerStep::Continue {
            session: log.session,
            step,
            env: replay.env,
        });
    }
    for (s, sess) in program.sessions.iter().enumerate() {
        let started = history.session_txs(SessionId(s as u32)).len();
        if started < sess.transactions.len() {
            return Ok(SchedulerStep::Begin {
                session: SessionId(s as u32),
                program_index: started,
            });
        }
    }
    Ok(SchedulerStep::Finished)
}

/// Replays every transaction of the history, returning its final local
/// environment (used by assertion checking).
///
/// # Errors
///
/// Propagates replay errors.
pub fn replay_all(
    program: &Program,
    history: &History,
    vars: &mut VarTable,
) -> Result<Vec<(TxId, Env)>, SemanticsError> {
    let mut out = Vec::new();
    for log in history.transactions() {
        let def = program
            .transaction(log.session.0 as usize, log.program_index)
            .ok_or(SemanticsError::UnknownTransaction {
                session: log.session.0,
                index: log.program_index,
            })?;
        let replay = replay_transaction(def, history, log, vars)?;
        out.push((log.id, replay.env));
    }
    Ok(out)
}

/// Creates the initial history of a program: only the implicit `init`
/// transaction with the program's declared initial values.
pub fn initial_history(program: &Program, vars: &mut VarTable) -> History {
    History::new(program.initial_values_interned(vars))
}

/// Executes the program serially under the oracle order, every external
/// read reading from the most recently committed writer. Useful as a quick
/// sanity execution in tests and examples; the full exploration lives in
/// `txdpor-explore`.
///
/// # Errors
///
/// Propagates replay errors.
pub fn execute_serial(program: &Program) -> Result<(History, VarTable), SemanticsError> {
    let mut vars = VarTable::new();
    let mut history = initial_history(program, &mut vars);
    let mut next_event = 0u32;
    let mut next_tx = 0u32;
    let mut fresh = move || {
        next_event += 1;
        EventId(next_event)
    };
    loop {
        match oracle_next(program, &history, &mut vars)? {
            SchedulerStep::Finished => break,
            SchedulerStep::Begin {
                session,
                program_index,
            } => {
                next_tx += 1;
                history.begin_transaction(
                    session,
                    TxId(next_tx),
                    program_index,
                    Event::new(fresh(), EventKind::Begin),
                );
            }
            SchedulerStep::Continue { session, step, .. } => match step {
                TxStep::Write { var, value } => {
                    history
                        .append_event(session, Event::new(fresh(), EventKind::Write(var, value)));
                }
                TxStep::Commit => {
                    history.append_event(session, Event::new(fresh(), EventKind::Commit));
                }
                TxStep::Abort => {
                    history.append_event(session, Event::new(fresh(), EventKind::Abort));
                }
                TxStep::Read {
                    var,
                    internal_value,
                    ..
                } => {
                    let ev = Event::new(fresh(), EventKind::Read(var));
                    let id = ev.id;
                    history.append_event(session, ev);
                    if internal_value.is_none() {
                        // Read from the most recently committed writer of var.
                        let writer = history
                            .committed_writers_of(var)
                            .into_iter()
                            .max_by_key(|t| t.0)
                            .unwrap_or(TxId::INIT);
                        history.set_wr(id, writer);
                    }
                }
            },
        }
    }
    Ok((history, vars))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::instr::Program;

    /// Fig. 8a: two sessions, the left one reads x and conditionally writes y.
    fn fig8_program() -> Program {
        program(vec![
            session(vec![
                tx(
                    "t1",
                    vec![
                        read("a", g("x")),
                        iff(eq(local("a"), cint(3)), vec![write(g("y"), cint(1))]),
                    ],
                ),
                tx("t2", vec![read("b", g("x")), read("c", g("y"))]),
            ]),
            session(vec![tx(
                "t3",
                vec![read("d", g("x")), write(g("x"), cint(3))],
            )]),
        ])
    }

    #[test]
    fn serial_execution_produces_complete_history() {
        let p = fig8_program();
        let (h, vars) = execute_serial(&p).unwrap();
        assert_eq!(h.num_transactions(), 3);
        assert_eq!(h.num_pending(), 0);
        assert!(vars.get("x").is_some());
        assert!(vars.get("y").is_some());
        // Under the serial oracle-order execution, t1 reads x=0 from init so
        // it does not write y; t3 then writes x=3; t2 reads x=3 from t3.
        let envs = replay_all(&p, &h, &mut vars.clone()).unwrap();
        let t2_env = envs
            .iter()
            .find(|(t, _)| h.tx(*t).program_index == 1 && h.tx(*t).session == SessionId(0))
            .map(|(_, e)| e.clone())
            .unwrap();
        assert_eq!(t2_env.get("b"), Some(&Value::Int(0)));
        assert_eq!(t2_env.get("c"), Some(&Value::Int(0)));
    }

    #[test]
    fn conditional_write_follows_read_value() {
        // Single session: writer of x=3 first, then the conditional transaction.
        let p = program(vec![session(vec![
            tx("w", vec![write(g("x"), cint(3))]),
            tx(
                "c",
                vec![
                    read("a", g("x")),
                    iff(eq(local("a"), cint(3)), vec![write(g("y"), cint(1))]),
                ],
            ),
        ])]);
        let (h, vars) = execute_serial(&p).unwrap();
        let y = vars.get("y").expect("y written");
        let writers = h.writers_of(y);
        assert_eq!(writers.len(), 2, "init plus the conditional writer");
    }

    #[test]
    fn abort_ends_transaction() {
        let p = program(vec![session(vec![tx(
            "t",
            vec![
                read("a", g("x")),
                iff(eq(local("a"), cint(0)), vec![abort()]),
                write(g("y"), cint(1)),
            ],
        )])]);
        let (h, _) = execute_serial(&p).unwrap();
        let t = h.transactions().next().unwrap();
        assert!(t.is_aborted());
        // The write to y must not have happened.
        assert_eq!(t.write_events().count(), 0);
    }

    #[test]
    fn internal_reads_do_not_need_wr() {
        let p = program(vec![session(vec![tx(
            "t",
            vec![
                write(g("x"), cint(7)),
                read("a", g("x")),
                write(g("y"), local("a")),
            ],
        )])]);
        let (h, vars) = execute_serial(&p).unwrap();
        assert_eq!(h.wr_count(), 0, "internal read has no wr dependency");
        let y = vars.get("y").unwrap();
        let t = h.transactions().next().unwrap();
        assert_eq!(t.visible_write_value(y), Some(&Value::Int(7)));
    }

    #[test]
    fn dynamic_index_resolution() {
        let p = program(vec![session(vec![
            tx("setup", vec![write(g("next_id"), cint(4))]),
            tx(
                "order",
                vec![
                    read("id", g("next_id")),
                    write(gi("order", local("id")), cint(1)),
                    write(g("next_id"), add(local("id"), cint(1))),
                ],
            ),
        ])]);
        let (h, vars) = execute_serial(&p).unwrap();
        let order4 = vars.get("order[4]").expect("order[4] interned");
        assert!(h.writers_of(order4).len() > 1);
    }

    #[test]
    fn oracle_next_prioritises_pending_transaction() {
        let p = fig8_program();
        let mut vars = VarTable::new();
        let mut h = initial_history(&p, &mut vars);
        // Start session 0's first transaction manually.
        h.begin_transaction(
            SessionId(0),
            TxId(1),
            0,
            Event::new(EventId(1), EventKind::Begin),
        );
        let step = oracle_next(&p, &h, &mut vars).unwrap();
        match step {
            SchedulerStep::Continue { session, step, .. } => {
                assert_eq!(session, SessionId(0));
                assert!(matches!(step, TxStep::Read { .. }));
            }
            other => panic!("expected Continue, got {other:?}"),
        }
    }

    #[test]
    fn oracle_next_starts_sessions_in_id_order() {
        let p = fig8_program();
        let mut vars = VarTable::new();
        let h = initial_history(&p, &mut vars);
        assert_eq!(
            oracle_next(&p, &h, &mut vars).unwrap(),
            SchedulerStep::Begin {
                session: SessionId(0),
                program_index: 0
            }
        );
    }

    #[test]
    fn replay_mismatch_detected() {
        let p = program(vec![session(vec![tx("t", vec![write(g("x"), cint(1))])])]);
        let mut vars = VarTable::new();
        let x = vars.intern("x");
        let mut h = initial_history(&p, &mut vars);
        h.begin_transaction(
            SessionId(0),
            TxId(1),
            0,
            Event::new(EventId(1), EventKind::Begin),
        );
        // Record a read even though the program writes.
        h.append_event(SessionId(0), Event::new(EventId(2), EventKind::Read(x)));
        let err = oracle_next(&p, &h, &mut vars).unwrap_err();
        assert!(matches!(err, SemanticsError::ReplayMismatch { .. }));
        assert!(err.to_string().contains("replay mismatch"));
    }

    #[test]
    fn finished_program_reports_finished() {
        let p = fig8_program();
        let (h, mut vars) = execute_serial(&p).unwrap();
        assert_eq!(
            oracle_next(&p, &h, &mut vars).unwrap(),
            SchedulerStep::Finished
        );
    }

    #[test]
    fn unknown_transaction_is_reported() {
        let p = program(vec![session(vec![tx("t", vec![])])]);
        let mut vars = VarTable::new();
        let mut h = initial_history(&p, &mut vars);
        h.begin_transaction(
            SessionId(5),
            TxId(1),
            0,
            Event::new(EventId(1), EventKind::Begin),
        );
        let err = oracle_next(&p, &h, &mut vars).unwrap_err();
        assert!(matches!(err, SemanticsError::UnknownTransaction { .. }));
    }
}
