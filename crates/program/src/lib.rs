//! Transactional program syntax, builder DSL and operational semantics.
//!
//! This crate implements the program model of the PLDI 2023 paper *"Dynamic
//! Partial Order Reduction for Checking Correctness against Transaction
//! Isolation Levels"*: bounded programs made of parallel sessions, each a
//! sequence of transactions whose bodies read and write global variables
//! and manipulate transaction-local variables (Fig. 1). The operational
//! semantics of §2.3 is provided in *replay* form, which is what the
//! exploration algorithms of `txdpor-explore` build on.
//!
//! # Example
//!
//! ```
//! use txdpor_program::dsl::*;
//! use txdpor_program::semantics::execute_serial;
//!
//! // A tiny two-session program: one session transfers, the other audits.
//! let p = program(vec![
//!     session(vec![tx(
//!         "transfer",
//!         vec![
//!             read("a", g("acc1")),
//!             write(g("acc1"), sub(local("a"), cint(10))),
//!             read("b", g("acc2")),
//!             write(g("acc2"), add(local("b"), cint(10))),
//!         ],
//!     )]),
//!     session(vec![tx(
//!         "audit",
//!         vec![read("x", g("acc1")), read("y", g("acc2"))],
//!     )]),
//! ]);
//!
//! let (history, _vars) = execute_serial(&p)?;
//! assert_eq!(history.num_transactions(), 2);
//! # Ok::<(), txdpor_program::SemanticsError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dsl;
pub mod expr;
pub mod instr;
pub mod semantics;

pub use expr::{Env, EvalError, Expr};
pub use instr::{GlobalRef, Instr, Program, Session, TransactionDef};
pub use semantics::{
    execute_serial, initial_history, oracle_next, replay_all, replay_transaction, SchedulerStep,
    SemanticsError, TxReplay, TxStep,
};
