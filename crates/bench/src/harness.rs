//! Measurement harness: runs one algorithm configuration on one client
//! program and records the quantities reported in the paper's evaluation
//! (running time, memory, number of histories and end states).

use std::fmt;
use std::time::{Duration, Instant};

use txdpor_apps::workload::MixedScenario;
use txdpor_explore::{dfs_explore, explore, DfsConfig, ExploreConfig};
use txdpor_history::{IsolationLevel, LevelSpec};
use txdpor_program::Program;

use crate::alloc;

/// An algorithm configuration of the paper's evaluation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// `explore-ce(I)` — strongly optimal for causally-extensible levels.
    ExploreCe(IsolationLevel),
    /// `explore-ce*(I0, I)` — plain optimal, filters outputs with `I`.
    ExploreCeStar(IsolationLevel, IsolationLevel),
    /// The `DFS(I)` baseline without partial order reduction.
    Dfs(IsolationLevel),
    /// Ablation: `explore-ce(I)` with the `Optimality` restriction on swaps
    /// disabled (sound and complete but redundant).
    ExploreCeNoOptimality(IsolationLevel),
    /// Ablation: `explore-ce(I)` with the consistency engines' fingerprint
    /// memoisation disabled — every check runs the (still incrementally
    /// synced) decision procedure, isolating the memo's contribution
    /// (results are unchanged).
    ExploreCeNoMemo(IsolationLevel),
    /// `explore-ce(I)` with the root-level reordering frontier partitioned
    /// across the given number of workers. Output-history fingerprints are
    /// bit-identical to the serial algorithm.
    ExploreCeParallel(IsolationLevel, usize),
    /// `explore-ce*` against a mixed per-transaction level scenario: the
    /// exploration runs under the scenario's (uniform, causally
    /// extensible) weakest level and filters outputs with the spec the
    /// scenario resolves to on the benchmark program. Only applicable to
    /// programs of the scenario's application.
    ExploreCeMixed(MixedScenario),
}

impl Algorithm {
    /// The configurations compared in Fig. 14 / Table F.1, plus the
    /// `explore-ce*(CC, PC)` row for Prefix Consistency.
    pub const FIG14: [Algorithm; 8] = [
        Algorithm::ExploreCe(IsolationLevel::CausalConsistency),
        Algorithm::ExploreCeStar(
            IsolationLevel::CausalConsistency,
            IsolationLevel::PrefixConsistency,
        ),
        Algorithm::ExploreCeStar(
            IsolationLevel::CausalConsistency,
            IsolationLevel::SnapshotIsolation,
        ),
        Algorithm::ExploreCeStar(
            IsolationLevel::CausalConsistency,
            IsolationLevel::Serializability,
        ),
        Algorithm::ExploreCeStar(
            IsolationLevel::ReadAtomic,
            IsolationLevel::CausalConsistency,
        ),
        Algorithm::ExploreCeStar(
            IsolationLevel::ReadCommitted,
            IsolationLevel::CausalConsistency,
        ),
        Algorithm::ExploreCeStar(IsolationLevel::Trivial, IsolationLevel::CausalConsistency),
        Algorithm::Dfs(IsolationLevel::CausalConsistency),
    ];

    /// Label used in tables, matching the paper's notation.
    pub fn label(&self) -> String {
        match self {
            Algorithm::ExploreCe(l) => l.short_name().to_owned(),
            Algorithm::ExploreCeStar(base, target) => {
                format!("{} + {}", base.short_name(), target.short_name())
            }
            Algorithm::Dfs(l) => format!("DFS({})", l.short_name()),
            Algorithm::ExploreCeNoOptimality(l) => format!("{} (no-opt)", l.short_name()),
            Algorithm::ExploreCeNoMemo(l) => format!("{} (no-memo)", l.short_name()),
            Algorithm::ExploreCeParallel(l, workers) => {
                format!("{} par{workers}", l.short_name())
            }
            Algorithm::ExploreCeMixed(sc) => {
                format!("{} + mix:{}", sc.base_level().short_name(), sc.name())
            }
        }
    }

    /// The isolation levels the configuration involves (base, target and —
    /// for mixed scenarios — every assigned level), for the `--levels`
    /// suite filter.
    pub fn involved_levels(&self) -> Vec<IsolationLevel> {
        match self {
            Algorithm::ExploreCe(l)
            | Algorithm::Dfs(l)
            | Algorithm::ExploreCeNoOptimality(l)
            | Algorithm::ExploreCeNoMemo(l)
            | Algorithm::ExploreCeParallel(l, _) => vec![*l],
            Algorithm::ExploreCeStar(base, target) => vec![*base, *target],
            Algorithm::ExploreCeMixed(sc) => {
                let mut levels = vec![sc.base_level(), sc.default_level()];
                levels.extend(sc.rules().iter().map(|&(_, l)| l));
                levels.sort();
                levels.dedup();
                levels
            }
        }
    }

    /// Whether the configuration applies to the named benchmark (`<app>-
    /// <variant>`). Mixed scenarios only run on their own application's
    /// programs; every other configuration is application-agnostic.
    pub fn applicable_to(&self, benchmark: &str) -> bool {
        match self {
            Algorithm::ExploreCeMixed(sc) => benchmark
                .strip_prefix(sc.app().name())
                .is_some_and(|rest| rest.starts_with('-')),
            _ => true,
        }
    }

    /// The level specification the configuration checks outputs against on
    /// the given program — the `levels` field of the fig14 JSON rows (the
    /// counts of a row are only comparable under the same spec).
    pub fn level_spec(&self, program: &Program) -> LevelSpec {
        match self {
            Algorithm::ExploreCe(l)
            | Algorithm::Dfs(l)
            | Algorithm::ExploreCeNoOptimality(l)
            | Algorithm::ExploreCeNoMemo(l)
            | Algorithm::ExploreCeParallel(l, _) => LevelSpec::uniform(*l),
            Algorithm::ExploreCeStar(_, target) => LevelSpec::uniform(*target),
            Algorithm::ExploreCeMixed(sc) => sc.spec_for(program),
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// The result of running one algorithm on one benchmark program.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark identifier (e.g. `tpcc-3`).
    pub benchmark: String,
    /// Algorithm label (e.g. `CC + SER`).
    pub algorithm: String,
    /// Canonical label of the level specification the run's outputs were
    /// checked against (e.g. `SER`, or `CC[s0.t1=SER]` for a mixed
    /// scenario resolved on this benchmark's program).
    pub levels: String,
    /// Number of histories output (after the `Valid` filter).
    pub histories: u64,
    /// Number of complete executions reached (before the filter).
    pub end_states: u64,
    /// Number of `explore` calls (partial histories visited).
    pub explore_calls: u64,
    /// Wall-clock running time.
    pub time: Duration,
    /// Peak bytes allocated during the run.
    pub peak_alloc: usize,
    /// Number of `History` clones performed during the run (the quantity
    /// the arena/journal representation exists to minimise; tracked so
    /// future perf work has a trajectory beyond wall-clock).
    pub history_clones: u64,
    /// Approximate heap bytes moved by those clones.
    pub history_bytes_copied: u64,
    /// Consistency-engine counters summed over every engine of the run:
    /// check/memo traffic, the incremental-sync vs full-rebuild split and
    /// the CPU nanoseconds spent deciding memo misses (summed across
    /// workers for parallel rows, so it can exceed wall-clock time).
    pub engine: txdpor_history::EngineStats,
    /// Number of exploration worker threads actually spawned (`1` for
    /// every serial configuration, including the DFS baseline).
    pub workers: usize,
    /// Exploration nodes migrated between workers by work stealing (`0`
    /// for serial runs and for parallel runs that never rebalanced).
    pub steals: u64,
    /// Largest number of communication-graph components any decomposed
    /// history of the run split into (`0` when nothing decomposed).
    pub components: u64,
    /// Transaction count of the largest component of the most-fragmented
    /// decomposed history (`0` when nothing decomposed).
    pub largest_component: u64,
    /// Reordering-candidate transactions skipped by the static
    /// independence relation before their reads were scanned.
    pub statically_pruned: u64,
    /// Rendered violation core of the first end state the output filter
    /// rejected (`explore-ce*` rows only; `None` when nothing was
    /// filtered or the algorithm has no output filter).
    pub first_rejection: Option<String>,
    /// Whether the run hit its timeout.
    pub timed_out: bool,
}

impl Measurement {
    /// Renders the running time as `MM:SS` (or `TL` when timed out, like the
    /// paper's tables).
    pub fn time_cell(&self) -> String {
        if self.timed_out {
            "TL".to_owned()
        } else {
            let secs = self.time.as_secs();
            format!(
                "{:02}:{:02}.{:03}",
                secs / 60,
                secs % 60,
                self.time.subsec_millis()
            )
        }
    }
}

/// Stack size used for exploration threads: the recursion of the
/// swapping-based algorithms is proportional to the exploration depth,
/// which can be large for the redundant ablation configurations.
const EXPLORATION_STACK: usize = 512 * 1024 * 1024;

/// Wall-clock budget of the unmeasured warm-up pass preceding every
/// measurement.
const WARMUP_BUDGET: Duration = Duration::from_secs(1);

/// Runs one algorithm on one program with the given wall-clock budget.
///
/// The exploration runs on a dedicated thread with a large stack so that
/// deeply recursive (non-optimal) configurations do not overflow. Before
/// the measured run, the same configuration is executed once unmeasured
/// (capped at `WARMUP_BUDGET`): a preceding memory-heavy run (a timed-out
/// `DFS` or no-optimality ablation allocates gigabytes) evicts page cache
/// and leaves allocator housekeeping behind, which would otherwise be
/// billed to whatever configuration happens to run next.
pub fn run(
    benchmark: &str,
    program: &Program,
    algorithm: Algorithm,
    timeout: Duration,
) -> Measurement {
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .name(format!("explore-{benchmark}"))
            .stack_size(EXPLORATION_STACK)
            .spawn_scoped(scope, || {
                let _ = run_inner(benchmark, program, algorithm, timeout.min(WARMUP_BUDGET));
                run_inner(benchmark, program, algorithm, timeout)
            })
            .expect("spawning the exploration thread succeeds")
            .join()
            .expect("the exploration thread does not panic")
    })
}

fn run_inner(
    benchmark: &str,
    program: &Program,
    algorithm: Algorithm,
    timeout: Duration,
) -> Measurement {
    alloc::reset_peak();
    txdpor_history::reset_clone_stats();
    let start = Instant::now();
    let report = match algorithm {
        Algorithm::ExploreCe(level) => explore(
            program,
            ExploreConfig::explore_ce(level).with_timeout(timeout),
        ),
        Algorithm::ExploreCeNoOptimality(level) => explore(
            program,
            ExploreConfig::explore_ce(level)
                .without_optimality()
                .with_timeout(timeout),
        ),
        Algorithm::ExploreCeNoMemo(level) => explore(
            program,
            ExploreConfig::explore_ce(level)
                .without_memo()
                .with_timeout(timeout),
        ),
        Algorithm::ExploreCeParallel(level, workers) => explore(
            program,
            ExploreConfig::explore_ce(level)
                .with_workers(workers)
                .with_timeout(timeout),
        ),
        Algorithm::ExploreCeStar(base, target) => explore(
            program,
            ExploreConfig::explore_ce_star(base, target).with_timeout(timeout),
        ),
        Algorithm::ExploreCeMixed(sc) => explore(
            program,
            ExploreConfig::explore_ce_star_spec(
                LevelSpec::uniform(sc.base_level()),
                sc.spec_for(program),
            )
            .with_timeout(timeout),
        ),
        Algorithm::Dfs(level) => dfs_explore(program, DfsConfig::new(level).with_timeout(timeout)),
    }
    .expect("benchmark programs replay cleanly");
    let (history_clones, history_bytes_copied) = txdpor_history::clone_stats();
    Measurement {
        benchmark: benchmark.to_owned(),
        algorithm: algorithm.label(),
        levels: algorithm.level_spec(program).label(),
        histories: report.outputs,
        end_states: report.end_states,
        explore_calls: report.explore_calls,
        time: start.elapsed(),
        peak_alloc: alloc::peak_bytes(),
        history_clones,
        history_bytes_copied,
        engine: report.engine_stats,
        workers: report.workers,
        steals: report.steals,
        components: report.components,
        largest_component: report.largest_component,
        statically_pruned: report.statically_pruned,
        first_rejection: report.first_rejection.as_ref().map(|v| v.to_string()),
        timed_out: report.timed_out,
    }
}

/// Average of the per-benchmark speedups of `fast` over `slow` (matching
/// the paper's "average of individual speedups", excluding timeouts).
pub fn average_speedup(fast: &[Measurement], slow: &[Measurement]) -> Option<f64> {
    let mut ratios = Vec::new();
    for f in fast {
        if f.timed_out {
            continue;
        }
        if let Some(s) = slow
            .iter()
            .find(|s| s.benchmark == f.benchmark && !s.timed_out)
        {
            let ft = f.time.as_secs_f64().max(1e-6);
            ratios.push(s.time.as_secs_f64() / ft);
        }
    }
    if ratios.is_empty() {
        None
    } else {
        Some(ratios.iter().sum::<f64>() / ratios.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdpor_program::dsl::*;

    fn tiny_program() -> Program {
        program(vec![
            session(vec![tx("w", vec![write(g("x"), cint(1))])]),
            session(vec![tx("r", vec![read("a", g("x"))])]),
        ])
    }

    #[test]
    fn run_all_fig14_algorithms_on_tiny_program() {
        let p = tiny_program();
        for algo in Algorithm::FIG14 {
            let m = run("tiny", &p, algo, Duration::from_secs(10));
            assert!(!m.timed_out, "{algo} timed out on the tiny program");
            assert_eq!(m.histories, 2, "{algo} found a wrong number of histories");
            assert!(m.end_states >= 2);
            assert!(m.explore_calls > 0);
            assert_eq!(m.workers, 1, "{algo} is a serial configuration");
            assert_eq!(m.steals, 0, "serial runs never steal");
            assert!(!m.time_cell().is_empty());
        }
    }

    #[test]
    fn labels() {
        assert_eq!(
            Algorithm::ExploreCe(IsolationLevel::CausalConsistency).label(),
            "CC"
        );
        assert_eq!(
            Algorithm::Dfs(IsolationLevel::CausalConsistency).to_string(),
            "DFS(CC)"
        );
        assert_eq!(
            Algorithm::ExploreCeStar(IsolationLevel::Trivial, IsolationLevel::CausalConsistency)
                .label(),
            "true + CC"
        );
        assert_eq!(
            Algorithm::ExploreCeNoOptimality(IsolationLevel::CausalConsistency).label(),
            "CC (no-opt)"
        );
    }

    #[test]
    fn speedups() {
        let p = tiny_program();
        let fast = vec![run(
            "tiny",
            &p,
            Algorithm::ExploreCe(IsolationLevel::CausalConsistency),
            Duration::from_secs(10),
        )];
        let slow = vec![run(
            "tiny",
            &p,
            Algorithm::Dfs(IsolationLevel::CausalConsistency),
            Duration::from_secs(10),
        )];
        assert!(average_speedup(&fast, &slow).is_some());
        assert!(average_speedup(&fast, &[]).is_none());
    }
}
