//! Rendering of measurements as the tables and cactus-plot series of the
//! paper's evaluation.

use std::collections::BTreeMap;

use crate::alloc::format_bytes;
use crate::harness::Measurement;

/// Prints a detailed per-benchmark table in the style of Tables F.1–F.3:
/// one row per benchmark, one column group per algorithm.
pub fn print_detailed_table(rows: &[Measurement]) -> String {
    let mut algorithms: Vec<String> = Vec::new();
    for r in rows {
        if !algorithms.contains(&r.algorithm) {
            algorithms.push(r.algorithm.clone());
        }
    }
    let mut benchmarks: Vec<String> = Vec::new();
    for r in rows {
        if !benchmarks.contains(&r.benchmark) {
            benchmarks.push(r.benchmark.clone());
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{:<18}", "benchmark"));
    for a in &algorithms {
        out.push_str(&format!(
            " | {:<14} {:>10} {:>12} {:>9}",
            a, "histories", "end-states", "time"
        ));
    }
    out.push('\n');
    for b in &benchmarks {
        out.push_str(&format!("{b:<18}"));
        for a in &algorithms {
            match rows.iter().find(|r| &r.benchmark == b && &r.algorithm == a) {
                Some(r) => out.push_str(&format!(
                    " | {:<14} {:>10} {:>12} {:>9}",
                    format_bytes(r.peak_alloc),
                    r.histories,
                    r.end_states,
                    r.time_cell()
                )),
                None => out.push_str(&format!(
                    " | {:<14} {:>10} {:>12} {:>9}",
                    "-", "-", "-", "-"
                )),
            }
        }
        out.push('\n');
    }
    out
}

/// Prints the cactus-plot series of Fig. 14: for each algorithm, the sorted
/// per-benchmark running times (excluding timeouts) as cumulative series,
/// plus the number of timeouts.
pub fn print_cactus(rows: &[Measurement]) -> String {
    let mut by_algo: BTreeMap<String, Vec<&Measurement>> = BTreeMap::new();
    for r in rows {
        by_algo.entry(r.algorithm.clone()).or_default().push(r);
    }
    let mut out = String::new();
    out.push_str("cactus series (x = number of solved benchmarks, y = time in seconds)\n");
    for (algo, ms) in &by_algo {
        let mut times: Vec<f64> = ms
            .iter()
            .filter(|m| !m.timed_out)
            .map(|m| m.time.as_secs_f64())
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let timeouts = ms.iter().filter(|m| m.timed_out).count();
        out.push_str(&format!("{algo:<12} ({timeouts} timeouts): "));
        for (i, t) in times.iter().enumerate() {
            out.push_str(&format!("({},{:.3}) ", i + 1, t));
        }
        out.push('\n');
    }
    // End-state series (Fig. 14c).
    out.push_str("\ncactus series (x = number of benchmarks, y = end states)\n");
    for (algo, ms) in &by_algo {
        let mut states: Vec<u64> = ms
            .iter()
            .filter(|m| !m.timed_out)
            .map(|m| m.end_states)
            .collect();
        states.sort_unstable();
        out.push_str(&format!("{algo:<12}: "));
        for (i, s) in states.iter().enumerate() {
            out.push_str(&format!("({},{}) ", i + 1, s));
        }
        out.push('\n');
    }
    // Memory series (Fig. 14b).
    out.push_str("\ncactus series (x = number of benchmarks, y = peak allocation, MB)\n");
    for (algo, ms) in &by_algo {
        let mut mem: Vec<f64> = ms
            .iter()
            .filter(|m| !m.timed_out)
            .map(|m| m.peak_alloc as f64 / (1024.0 * 1024.0))
            .collect();
        mem.sort_by(|a, b| a.partial_cmp(b).unwrap());
        out.push_str(&format!("{algo:<12}: "));
        for (i, m) in mem.iter().enumerate() {
            out.push_str(&format!("({},{:.1}) ", i + 1, m));
        }
        out.push('\n');
    }
    out
}

/// Prints the scalability summary of Fig. 15: average time and memory per
/// parameter value (number of sessions or transactions per session),
/// counting timed-out runs at the timeout value as the paper does.
pub fn print_scaling(rows: &[(usize, Measurement)], parameter: &str) -> String {
    let mut by_size: BTreeMap<usize, Vec<&Measurement>> = BTreeMap::new();
    for (size, m) in rows {
        by_size.entry(*size).or_default().push(m);
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{parameter:<14} {:>10} {:>14} {:>10} {:>10}\n",
        "avg time", "avg mem (MB)", "timeouts", "runs"
    ));
    for (size, ms) in &by_size {
        let avg_time: f64 = ms.iter().map(|m| m.time.as_secs_f64()).sum::<f64>() / ms.len() as f64;
        let avg_mem: f64 = ms
            .iter()
            .map(|m| m.peak_alloc as f64 / (1024.0 * 1024.0))
            .sum::<f64>()
            / ms.len() as f64;
        let timeouts = ms.iter().filter(|m| m.timed_out).count();
        out.push_str(&format!(
            "{size:<14} {avg_time:>9.2}s {avg_mem:>14.1} {timeouts:>10} {:>10}\n",
            ms.len()
        ));
    }
    out
}

/// Prints the detailed per-benchmark scalability table of Tables F.2/F.3.
pub fn print_scaling_detail(rows: &[(usize, Measurement)], parameter: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {parameter:<14} {:>10} {:>12} {:>10} {:>12}\n",
        "benchmark", "histories", "end-states", "time", "mem"
    ));
    for (size, m) in rows {
        out.push_str(&format!(
            "{:<16} {size:<14} {:>10} {:>12} {:>10} {:>12}\n",
            m.benchmark,
            m.histories,
            m.end_states,
            m.time_cell(),
            format_bytes(m.peak_alloc)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample(benchmark: &str, algorithm: &str, secs: u64, timed_out: bool) -> Measurement {
        Measurement {
            benchmark: benchmark.to_owned(),
            algorithm: algorithm.to_owned(),
            levels: "CC".to_owned(),
            histories: 10,
            end_states: 20,
            explore_calls: 100,
            time: Duration::from_secs(secs),
            peak_alloc: 5 * 1024 * 1024,
            history_clones: 7,
            history_bytes_copied: 4096,
            engine: txdpor_history::EngineStats::default(),
            workers: 1,
            steals: 0,
            components: 0,
            largest_component: 0,
            statically_pruned: 0,
            first_rejection: None,
            timed_out,
        }
    }

    #[test]
    fn detailed_table_contains_all_cells() {
        let rows = vec![
            sample("tpcc-1", "CC", 1, false),
            sample("tpcc-1", "DFS(CC)", 9, false),
            sample("twitter-1", "CC", 2, false),
        ];
        let table = print_detailed_table(&rows);
        assert!(table.contains("tpcc-1"));
        assert!(table.contains("twitter-1"));
        assert!(table.contains("DFS(CC)"));
        // Missing cell rendered as '-'.
        assert!(table.contains('-'));
    }

    #[test]
    fn cactus_counts_timeouts() {
        let rows = vec![
            sample("a", "CC", 1, false),
            sample("b", "CC", 2, false),
            sample("c", "CC", 30, true),
        ];
        let cactus = print_cactus(&rows);
        assert!(cactus.contains("(1 timeouts)"));
        assert!(cactus.contains("(1,1.000)"));
        assert!(cactus.contains("(2,2.000)"));
    }

    #[test]
    fn scaling_tables_render() {
        let rows = vec![
            (1, sample("tpcc-1", "CC", 1, false)),
            (2, sample("tpcc-1", "CC", 4, false)),
            (2, sample("wikipedia-1", "CC", 6, true)),
        ];
        let summary = print_scaling(&rows, "sessions");
        assert!(summary.contains("sessions"));
        assert!(summary.lines().count() >= 3);
        let detail = print_scaling_detail(&rows, "sessions");
        assert!(detail.contains("wikipedia-1"));
        assert!(detail.contains("TL"));
    }
}
