//! Experiment harness reproducing the evaluation of the PLDI 2023 paper
//! *"Dynamic Partial Order Reduction for Checking Correctness against
//! Transaction Isolation Levels"*.
//!
//! Each table and figure of §7.3 / Appendix F has a dedicated binary and a
//! Criterion benchmark:
//!
//! | Paper artefact | Binary | Criterion bench |
//! |---|---|---|
//! | Fig. 14a/b/c (cactus plots) | `fig14` | `bench_fig14` |
//! | Table F.1 (application scalability detail) | `table_f1` | — |
//! | Fig. 15a (session scalability) | `fig15a` | `bench_fig15a` |
//! | Table F.2 | `table_f2` | — |
//! | Fig. 15b (transaction scalability) | `fig15b` | `bench_fig15b` |
//! | Table F.3 | `table_f3` | — |
//! | Ablation of the `Optimality` condition | `ablation` | `bench_ablation` |
//!
//! The binaries accept `--full` (paper-sized configuration with 30-minute
//! timeouts), `--timeout <s>`, `--variants <n>`, `--sessions <n>` and
//! `--transactions <n>`; the default configuration is scaled down so that
//! the whole suite completes in minutes.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alloc;
pub mod experiments;
pub mod gate;
pub mod harness;
pub mod json;
pub mod tables;

pub use experiments::{
    experiment_fig14, experiment_fig14_with, experiment_sessions, experiment_transactions,
    fig14_mixed_algorithms, fig14_suite, flag_value, parse_levels, ExperimentOptions,
};
pub use harness::{average_speedup, run, Algorithm, Measurement};
pub use json::{write_experiment_json, JsonValue};

/// The counting allocator is installed for every binary, test and benchmark
/// of this crate so that peak-allocation numbers can be reported.
#[global_allocator]
static GLOBAL_ALLOCATOR: alloc::CountingAllocator = alloc::CountingAllocator;
