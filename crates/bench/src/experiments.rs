//! Drivers for the paper's experiments: each function regenerates the data
//! behind one table or figure of §7.3 / Appendix F.

use std::time::Duration;

use txdpor_apps::workload::{benchmark_programs, client_program, App, WorkloadConfig};
use txdpor_history::IsolationLevel;
use txdpor_program::Program;

use crate::harness::{run, Algorithm, Measurement};

/// Common command-line options of the experiment binaries.
#[derive(Clone, Debug)]
pub struct ExperimentOptions {
    /// Per-run wall-clock budget.
    pub timeout: Duration,
    /// Number of independent client programs per application.
    pub variants: usize,
    /// Number of sessions of the generated client programs.
    pub sessions: usize,
    /// Number of transactions per session.
    pub transactions: usize,
    /// Restrict the suite to applications whose name is listed here
    /// (comma-separated on the command line); `None` runs every app. Used
    /// by the CI bench-regression gate to run only the fast, deterministic
    /// configurations.
    pub apps: Option<Vec<String>>,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        // A scaled-down default that completes in minutes on a laptop; the
        // paper-sized configuration is selected with `--full`.
        ExperimentOptions {
            timeout: Duration::from_secs(5),
            variants: 2,
            sessions: 3,
            transactions: 3,
            apps: None,
        }
    }
}

impl ExperimentOptions {
    /// The configuration used by the paper: 5 client programs per
    /// application, 3 sessions × 3 transactions, 30-minute timeout.
    pub fn paper() -> Self {
        ExperimentOptions {
            timeout: Duration::from_secs(30 * 60),
            variants: 5,
            sessions: 3,
            transactions: 3,
            apps: None,
        }
    }

    /// Parses the common flags of the experiment binaries:
    /// `--full`, `--timeout <seconds>`, `--variants <n>`,
    /// `--sessions <n>`, `--transactions <n>`,
    /// `--apps <name[,name...]>`.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut options = ExperimentOptions::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--full" => {
                    let timeout = options.timeout.max(Duration::from_secs(30 * 60));
                    options = ExperimentOptions::paper();
                    options.timeout = timeout;
                }
                "--timeout" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        options.timeout = Duration::from_secs(v);
                    }
                }
                "--variants" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        options.variants = v;
                    }
                }
                "--sessions" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        options.sessions = v;
                    }
                }
                "--transactions" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        options.transactions = v;
                    }
                }
                "--apps" => {
                    if let Some(v) = args.next() {
                        options.apps = Some(v.split(',').map(|s| s.trim().to_owned()).collect());
                    }
                }
                _ => {}
            }
        }
        options
    }
}

/// The value following a `--flag` in an argument list, for valued flags
/// the experiment binaries parse beside [`ExperimentOptions::from_args`]
/// (which tolerates and ignores them).
pub fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// The benchmark suite of Fig. 14 / Table F.1: `variants` client programs
/// per application with the given shape.
pub fn fig14_suite(options: &ExperimentOptions) -> Vec<(String, Program)> {
    App::ALL
        .into_iter()
        .filter(|app| match &options.apps {
            None => true,
            Some(names) => names.iter().any(|n| n == app.name()),
        })
        .flat_map(|app| {
            benchmark_programs(
                app,
                options.variants,
                options.sessions,
                options.transactions,
            )
        })
        .collect()
}

/// Experiment 1 (Fig. 14a/b/c, Table F.1): every Fig. 14 algorithm on every
/// benchmark program. Returns one measurement per (program, algorithm).
pub fn experiment_fig14(options: &ExperimentOptions) -> Vec<Measurement> {
    experiment_fig14_with(options, &Algorithm::FIG14)
}

/// Like [`experiment_fig14`] but with a custom set of algorithms.
pub fn experiment_fig14_with(
    options: &ExperimentOptions,
    algorithms: &[Algorithm],
) -> Vec<Measurement> {
    let mut out = Vec::new();
    for (name, program) in fig14_suite(options) {
        for algo in algorithms {
            eprintln!("[fig14] {name} / {algo} ...");
            out.push(run(&name, &program, *algo, options.timeout));
        }
    }
    out
}

/// The applications used by the scalability experiments (Fig. 15): TPC-C
/// and Wikipedia.
pub const SCALABILITY_APPS: [App; 2] = [App::Tpcc, App::Wikipedia];

/// Experiment 2 (Fig. 15a, Table F.2): `explore-ce(CC)` on TPC-C and
/// Wikipedia client programs with 1..=max_sessions sessions, 3 transactions
/// per session. Removing sessions from the largest program (as the paper
/// does) is modelled by generating each size with the same seed.
pub fn experiment_sessions(
    options: &ExperimentOptions,
    max_sessions: usize,
) -> Vec<(usize, Measurement)> {
    let mut out = Vec::new();
    for sessions in 1..=max_sessions {
        for app in SCALABILITY_APPS {
            for variant in 1..=options.variants {
                let program = client_program(&WorkloadConfig {
                    app,
                    sessions,
                    transactions_per_session: options.transactions,
                    seed: variant as u64,
                });
                let name = format!("{}-{variant}", app.name());
                eprintln!("[fig15a] {name} with {sessions} session(s) ...");
                let m = run(
                    &name,
                    &program,
                    Algorithm::ExploreCe(IsolationLevel::CausalConsistency),
                    options.timeout,
                );
                out.push((sessions, m));
            }
        }
    }
    out
}

/// Experiment 3 (Fig. 15b, Table F.3): `explore-ce(CC)` on TPC-C and
/// Wikipedia client programs with 3 sessions and 1..=max_transactions
/// transactions per session.
pub fn experiment_transactions(
    options: &ExperimentOptions,
    max_transactions: usize,
) -> Vec<(usize, Measurement)> {
    let mut out = Vec::new();
    for transactions in 1..=max_transactions {
        for app in SCALABILITY_APPS {
            for variant in 1..=options.variants {
                let program = client_program(&WorkloadConfig {
                    app,
                    sessions: options.sessions,
                    transactions_per_session: transactions,
                    seed: variant as u64,
                });
                let name = format!("{}-{variant}", app.name());
                eprintln!("[fig15b] {name} with {transactions} transaction(s) per session ...");
                let m = run(
                    &name,
                    &program,
                    Algorithm::ExploreCe(IsolationLevel::CausalConsistency),
                    options.timeout,
                );
                out.push((transactions, m));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parsing() {
        let o = ExperimentOptions::from_args(
            [
                "--timeout",
                "7",
                "--variants",
                "1",
                "--sessions",
                "2",
                "--transactions",
                "2",
            ]
            .map(String::from),
        );
        assert_eq!(o.timeout, Duration::from_secs(7));
        assert_eq!(o.variants, 1);
        assert_eq!(o.sessions, 2);
        assert_eq!(o.transactions, 2);
        let full = ExperimentOptions::from_args(["--full".to_owned()]);
        assert_eq!(full.variants, 5);
        assert_eq!(full.timeout, Duration::from_secs(1800));
        let default = ExperimentOptions::from_args(Vec::<String>::new());
        assert_eq!(default.variants, ExperimentOptions::default().variants);
        assert_eq!(default.apps, None);
        let filtered =
            ExperimentOptions::from_args(["--apps", "courseware,twitter"].map(String::from));
        assert_eq!(
            filtered.apps,
            Some(vec!["courseware".to_owned(), "twitter".to_owned()])
        );
    }

    #[test]
    fn apps_filter_restricts_suite() {
        let options = ExperimentOptions {
            variants: 2,
            apps: Some(vec!["courseware".to_owned()]),
            ..ExperimentOptions::default()
        };
        let suite = fig14_suite(&options);
        assert_eq!(suite.len(), 2);
        assert!(suite.iter().all(|(name, _)| name.starts_with("courseware")));
    }

    #[test]
    fn fig14_suite_size() {
        let options = ExperimentOptions {
            variants: 2,
            ..ExperimentOptions::default()
        };
        assert_eq!(fig14_suite(&options).len(), 10);
    }

    #[test]
    fn tiny_experiment_runs() {
        // A minimal end-to-end check that the drivers work; benchmark
        // programs are shrunk to 2 sessions × 1 transaction.
        let options = ExperimentOptions {
            timeout: Duration::from_secs(2),
            variants: 1,
            sessions: 2,
            transactions: 1,
            apps: None,
        };
        let rows = experiment_fig14_with(
            &options,
            &[Algorithm::ExploreCe(IsolationLevel::CausalConsistency)],
        );
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(row.histories >= 1 || row.timed_out);
        }
        let sess = experiment_sessions(&options, 2);
        assert_eq!(sess.len(), 2 * 2);
        let txns = experiment_transactions(&options, 2);
        assert_eq!(txns.len(), 2 * 2);
    }
}
