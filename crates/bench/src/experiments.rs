//! Drivers for the paper's experiments: each function regenerates the data
//! behind one table or figure of §7.3 / Appendix F.

use std::time::Duration;

use txdpor_apps::workload::{
    benchmark_programs, client_program, App, MixedScenario, WorkloadConfig,
};
use txdpor_history::{IsolationLevel, ParseLevelError};
use txdpor_program::Program;

use crate::harness::{run, Algorithm, Measurement};

/// Common command-line options of the experiment binaries.
#[derive(Clone, Debug)]
pub struct ExperimentOptions {
    /// Per-run wall-clock budget.
    pub timeout: Duration,
    /// Number of independent client programs per application.
    pub variants: usize,
    /// Number of sessions of the generated client programs.
    pub sessions: usize,
    /// Number of transactions per session.
    pub transactions: usize,
    /// Restrict the suite to applications whose name is listed here
    /// (comma-separated on the command line); `None` runs every app. Used
    /// by the CI bench-regression gate to run only the fast, deterministic
    /// configurations.
    pub apps: Option<Vec<String>>,
    /// Restrict the suite to algorithm configurations whose involved
    /// isolation levels are all listed here (comma-separated short names
    /// on the command line, e.g. `--levels CC,SER`); `None` runs every
    /// configuration.
    pub levels: Option<Vec<IsolationLevel>>,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        // A scaled-down default that completes in minutes on a laptop; the
        // paper-sized configuration is selected with `--full`.
        ExperimentOptions {
            timeout: Duration::from_secs(5),
            variants: 2,
            sessions: 3,
            transactions: 3,
            apps: None,
            levels: None,
        }
    }
}

impl ExperimentOptions {
    /// The configuration used by the paper: 5 client programs per
    /// application, 3 sessions × 3 transactions, 30-minute timeout.
    pub fn paper() -> Self {
        ExperimentOptions {
            timeout: Duration::from_secs(30 * 60),
            variants: 5,
            sessions: 3,
            transactions: 3,
            apps: None,
            levels: None,
        }
    }

    /// Parses the common flags of the experiment binaries:
    /// `--full`, `--timeout <seconds>`, `--variants <n>`,
    /// `--sessions <n>`, `--transactions <n>`,
    /// `--apps <name[,name...]>`, `--levels <name[,name...]>`.
    ///
    /// Malformed or missing flag values (an unknown isolation level, a
    /// non-numeric `--timeout`) print the reason and exit with status 2 —
    /// a controlled rejection with a readable message, never a panic or a
    /// silent fall-back to defaults. Use [`Self::try_from_args`] for the
    /// non-exiting variant.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        match Self::try_from_args(args) {
            Ok(options) => options,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    /// Like [`Self::from_args`], but reports malformed arguments as an
    /// error message instead of exiting. Flags the experiment binaries
    /// parse separately (e.g. `--json <path>`, `--workers <n>`) are
    /// tolerated and ignored.
    pub fn try_from_args<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        fn numeric<T: std::str::FromStr>(
            args: &mut impl Iterator<Item = String>,
            flag: &str,
        ) -> Result<T, String> {
            let v = args
                .next()
                .ok_or_else(|| format!("{flag} expects a value"))?;
            v.parse()
                .map_err(|_| format!("{flag} expects a number, got {v:?}"))
        }
        let mut options = ExperimentOptions::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--full" => {
                    let timeout = options.timeout.max(Duration::from_secs(30 * 60));
                    let (apps, levels) = (options.apps.take(), options.levels.take());
                    options = ExperimentOptions::paper();
                    options.timeout = timeout;
                    options.apps = apps;
                    options.levels = levels;
                }
                "--timeout" => {
                    options.timeout = Duration::from_secs(numeric(&mut args, "--timeout")?);
                }
                "--variants" => options.variants = numeric(&mut args, "--variants")?,
                "--sessions" => options.sessions = numeric(&mut args, "--sessions")?,
                "--transactions" => options.transactions = numeric(&mut args, "--transactions")?,
                "--apps" => {
                    let v = args
                        .next()
                        .ok_or_else(|| "--apps expects a value".to_owned())?;
                    options.apps = Some(v.split(',').map(|s| s.trim().to_owned()).collect());
                }
                "--levels" => {
                    let v = args
                        .next()
                        .ok_or_else(|| "--levels expects a value".to_owned())?;
                    options.levels = Some(parse_levels(&v).map_err(|e| format!("--levels: {e}"))?);
                }
                _ => {}
            }
        }
        Ok(options)
    }

    /// Whether the algorithm configuration passes the `--levels` filter:
    /// with no filter everything runs; otherwise every level the
    /// configuration involves must be listed.
    pub fn allows_algorithm(&self, algo: &Algorithm) -> bool {
        match &self.levels {
            None => true,
            Some(allowed) => algo.involved_levels().iter().all(|l| allowed.contains(l)),
        }
    }
}

/// Parses a comma-separated list of isolation-level short names
/// (`"CC,SER"`), as accepted by the `--levels` flag. The error of an
/// unknown name lists the accepted short names.
pub fn parse_levels(s: &str) -> Result<Vec<IsolationLevel>, ParseLevelError> {
    s.split(',').map(|part| part.trim().parse()).collect()
}

/// The value following a `--flag` in an argument list, for valued flags
/// the experiment binaries parse beside [`ExperimentOptions::from_args`]
/// (which tolerates and ignores them).
pub fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// The benchmark suite of Fig. 14 / Table F.1: `variants` client programs
/// per application with the given shape.
pub fn fig14_suite(options: &ExperimentOptions) -> Vec<(String, Program)> {
    App::ALL
        .into_iter()
        .filter(|app| match &options.apps {
            None => true,
            Some(names) => names.iter().any(|n| n == app.name()),
        })
        .flat_map(|app| {
            benchmark_programs(
                app,
                options.variants,
                options.sessions,
                options.transactions,
            )
        })
        .collect()
}

/// Experiment 1 (Fig. 14a/b/c, Table F.1): every Fig. 14 algorithm on every
/// benchmark program. Returns one measurement per (program, algorithm).
pub fn experiment_fig14(options: &ExperimentOptions) -> Vec<Measurement> {
    experiment_fig14_with(options, &Algorithm::FIG14)
}

/// Like [`experiment_fig14`] but with a custom set of algorithms.
/// Configurations are skipped on benchmarks they do not apply to (mixed
/// scenarios only run on their own application) and when rejected by the
/// `--levels` filter.
pub fn experiment_fig14_with(
    options: &ExperimentOptions,
    algorithms: &[Algorithm],
) -> Vec<Measurement> {
    let mut out = Vec::new();
    for (name, program) in fig14_suite(options) {
        for algo in algorithms {
            if !algo.applicable_to(&name) || !options.allows_algorithm(algo) {
                continue;
            }
            eprintln!("[fig14] {name} / {algo} ...");
            out.push(run(&name, &program, *algo, options.timeout));
        }
    }
    out
}

/// The mixed-isolation configurations of the fig14 suite: one
/// `explore-ce*` row per [`MixedScenario`] (three per application), each
/// running only on its own application's programs.
pub fn fig14_mixed_algorithms() -> Vec<Algorithm> {
    MixedScenario::ALL
        .into_iter()
        .map(Algorithm::ExploreCeMixed)
        .collect()
}

/// The applications used by the scalability experiments (Fig. 15): TPC-C
/// and Wikipedia.
pub const SCALABILITY_APPS: [App; 2] = [App::Tpcc, App::Wikipedia];

/// Experiment 2 (Fig. 15a, Table F.2): `explore-ce(CC)` on TPC-C and
/// Wikipedia client programs with 1..=max_sessions sessions, 3 transactions
/// per session. Removing sessions from the largest program (as the paper
/// does) is modelled by generating each size with the same seed.
pub fn experiment_sessions(
    options: &ExperimentOptions,
    max_sessions: usize,
) -> Vec<(usize, Measurement)> {
    let mut out = Vec::new();
    for sessions in 1..=max_sessions {
        for app in SCALABILITY_APPS {
            for variant in 1..=options.variants {
                let program = client_program(&WorkloadConfig {
                    app,
                    sessions,
                    transactions_per_session: options.transactions,
                    seed: variant as u64,
                });
                let name = format!("{}-{variant}", app.name());
                eprintln!("[fig15a] {name} with {sessions} session(s) ...");
                let m = run(
                    &name,
                    &program,
                    Algorithm::ExploreCe(IsolationLevel::CausalConsistency),
                    options.timeout,
                );
                out.push((sessions, m));
            }
        }
    }
    out
}

/// Experiment 3 (Fig. 15b, Table F.3): `explore-ce(CC)` on TPC-C and
/// Wikipedia client programs with 3 sessions and 1..=max_transactions
/// transactions per session.
pub fn experiment_transactions(
    options: &ExperimentOptions,
    max_transactions: usize,
) -> Vec<(usize, Measurement)> {
    let mut out = Vec::new();
    for transactions in 1..=max_transactions {
        for app in SCALABILITY_APPS {
            for variant in 1..=options.variants {
                let program = client_program(&WorkloadConfig {
                    app,
                    sessions: options.sessions,
                    transactions_per_session: transactions,
                    seed: variant as u64,
                });
                let name = format!("{}-{variant}", app.name());
                eprintln!("[fig15b] {name} with {transactions} transaction(s) per session ...");
                let m = run(
                    &name,
                    &program,
                    Algorithm::ExploreCe(IsolationLevel::CausalConsistency),
                    options.timeout,
                );
                out.push((transactions, m));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parsing() {
        let o = ExperimentOptions::from_args(
            [
                "--timeout",
                "7",
                "--variants",
                "1",
                "--sessions",
                "2",
                "--transactions",
                "2",
            ]
            .map(String::from),
        );
        assert_eq!(o.timeout, Duration::from_secs(7));
        assert_eq!(o.variants, 1);
        assert_eq!(o.sessions, 2);
        assert_eq!(o.transactions, 2);
        let full = ExperimentOptions::from_args(["--full".to_owned()]);
        assert_eq!(full.variants, 5);
        assert_eq!(full.timeout, Duration::from_secs(1800));
        let default = ExperimentOptions::from_args(Vec::<String>::new());
        assert_eq!(default.variants, ExperimentOptions::default().variants);
        assert_eq!(default.apps, None);
        let filtered =
            ExperimentOptions::from_args(["--apps", "courseware,twitter"].map(String::from));
        assert_eq!(
            filtered.apps,
            Some(vec!["courseware".to_owned(), "twitter".to_owned()])
        );
    }

    #[test]
    fn malformed_flag_values_are_reported_not_ignored() {
        let err =
            ExperimentOptions::try_from_args(["--timeout", "soon"].map(String::from)).unwrap_err();
        assert!(err.contains("--timeout") && err.contains("soon"), "{err}");
        let err = ExperimentOptions::try_from_args(["--sessions"].map(String::from)).unwrap_err();
        assert!(
            err.contains("--sessions") && err.contains("expects a value"),
            "{err}"
        );
        let err =
            ExperimentOptions::try_from_args(["--variants", "-1"].map(String::from)).unwrap_err();
        assert!(err.contains("--variants"), "{err}");
        let err = ExperimentOptions::try_from_args(["--levels", "serializable"].map(String::from))
            .unwrap_err();
        assert!(err.contains("--levels") && err.contains("SER"), "{err}");
        // Flags the binaries parse beside the common options stay ignored.
        let ok = ExperimentOptions::try_from_args(
            ["--json", "out.json", "--workers", "4", "--timeout", "9"].map(String::from),
        )
        .unwrap();
        assert_eq!(ok.timeout, Duration::from_secs(9));
    }

    #[test]
    fn levels_parsing_round_trips_and_rejects_unknown_names() {
        assert_eq!(
            parse_levels("CC, SER"),
            Ok(vec![
                IsolationLevel::CausalConsistency,
                IsolationLevel::Serializability
            ])
        );
        assert_eq!(parse_levels("true"), Ok(vec![IsolationLevel::Trivial]));
        let err = parse_levels("CC,serializable").unwrap_err().to_string();
        assert!(err.contains("serializable"), "{err}");
        assert!(err.contains("SER") && err.contains("true"), "{err}");
        let parsed = ExperimentOptions::from_args(["--levels", "RC,CC"].map(String::from));
        assert_eq!(
            parsed.levels,
            Some(vec![
                IsolationLevel::ReadCommitted,
                IsolationLevel::CausalConsistency
            ])
        );
    }

    #[test]
    fn levels_filter_restricts_algorithms() {
        let mut options = ExperimentOptions::default();
        let cc = Algorithm::ExploreCe(IsolationLevel::CausalConsistency);
        let cc_ser = Algorithm::ExploreCeStar(
            IsolationLevel::CausalConsistency,
            IsolationLevel::Serializability,
        );
        assert!(options.allows_algorithm(&cc));
        assert!(options.allows_algorithm(&cc_ser));
        options.levels = Some(vec![IsolationLevel::CausalConsistency]);
        assert!(options.allows_algorithm(&cc));
        assert!(!options.allows_algorithm(&cc_ser), "SER is not listed");
        // A mixed scenario involves its base, default and rule levels.
        let mixed = Algorithm::ExploreCeMixed(MixedScenario::TpccPaymentSer);
        assert!(!options.allows_algorithm(&mixed));
        options.levels = Some(vec![
            IsolationLevel::CausalConsistency,
            IsolationLevel::Serializability,
        ]);
        assert!(options.allows_algorithm(&mixed));
    }

    #[test]
    fn mixed_algorithms_only_run_on_their_own_app() {
        let options = ExperimentOptions {
            timeout: Duration::from_secs(5),
            variants: 1,
            sessions: 2,
            transactions: 1,
            apps: None,
            levels: None,
        };
        let rows = experiment_fig14_with(
            &options,
            &[Algorithm::ExploreCeMixed(MixedScenario::TpccPaymentSer)],
        );
        assert_eq!(rows.len(), 1, "one tpcc variant, one scenario");
        assert_eq!(rows[0].benchmark, "tpcc-1");
        assert_eq!(rows[0].algorithm, "CC + mix:tpcc:pay-ser");
        assert!(!rows[0].levels.is_empty());
    }

    #[test]
    fn apps_filter_restricts_suite() {
        let options = ExperimentOptions {
            variants: 2,
            apps: Some(vec!["courseware".to_owned()]),
            ..ExperimentOptions::default()
        };
        let suite = fig14_suite(&options);
        assert_eq!(suite.len(), 2);
        assert!(suite.iter().all(|(name, _)| name.starts_with("courseware")));
    }

    #[test]
    fn fig14_suite_size() {
        let options = ExperimentOptions {
            variants: 2,
            ..ExperimentOptions::default()
        };
        assert_eq!(fig14_suite(&options).len(), 10);
    }

    #[test]
    fn tiny_experiment_runs() {
        // A minimal end-to-end check that the drivers work; benchmark
        // programs are shrunk to 2 sessions × 1 transaction.
        let options = ExperimentOptions {
            timeout: Duration::from_secs(2),
            variants: 1,
            sessions: 2,
            transactions: 1,
            apps: None,
            levels: None,
        };
        let rows = experiment_fig14_with(
            &options,
            &[Algorithm::ExploreCe(IsolationLevel::CausalConsistency)],
        );
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(row.histories >= 1 || row.timed_out);
        }
        let sess = experiment_sessions(&options, 2);
        assert_eq!(sess.len(), 2 * 2);
        let txns = experiment_transactions(&options, 2);
        assert_eq!(txns.len(), 2 * 2);
    }
}
