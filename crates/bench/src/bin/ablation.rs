//! Ablation study (DESIGN.md experiment A1): quantifies the benefit of the
//! `Optimality` restriction on swaps (§5.3) by comparing `explore-ce(CC)`
//! with the same algorithm where only swap-consistency is checked, and with
//! the `DFS(CC)` baseline, on the benchmark suite.
//!
//! Usage: `cargo run --release -p txdpor-bench --bin ablation [--full]
//! [--json <path>] …`

use txdpor_bench::json::JsonValue;
use txdpor_bench::tables::print_detailed_table;
use txdpor_bench::{
    experiment_fig14_with, flag_value, write_experiment_json, Algorithm, ExperimentOptions,
};
use txdpor_history::IsolationLevel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = ExperimentOptions::from_args(args.iter().cloned());
    let json_path = flag_value(&args, "--json");
    println!("== Ablation A1: the Optimality restriction on swaps ==");
    println!(
        "configuration: {} variants/app, {} sessions x {} transactions, timeout {:?}",
        options.variants, options.sessions, options.transactions, options.timeout
    );
    let algorithms = [
        Algorithm::ExploreCe(IsolationLevel::CausalConsistency),
        Algorithm::ExploreCeNoOptimality(IsolationLevel::CausalConsistency),
        Algorithm::Dfs(IsolationLevel::CausalConsistency),
    ];
    let rows = experiment_fig14_with(&options, &algorithms);
    println!();
    println!("{}", print_detailed_table(&rows));
    // Redundancy summary: end states explored per distinct history.
    let mut summary: Vec<(String, JsonValue)> = Vec::new();
    for algo in &algorithms {
        let label = algo.label();
        let (mut ends, mut hist) = (0u64, 0u64);
        for m in rows.iter().filter(|m| m.algorithm == label && !m.timed_out) {
            ends += m.end_states;
            hist += m.histories;
        }
        if hist > 0 {
            let redundancy = ends as f64 / hist as f64;
            println!(
                "{label:<14}: {ends} end states for {hist} distinct histories ({redundancy:.2} per history)",
            );
            summary.push((
                format!("end_states_per_history_{label}"),
                JsonValue::Float(redundancy),
            ));
        }
    }
    if let Some(path) = json_path {
        match write_experiment_json(&path, "ablation", &options, &rows, summary) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
