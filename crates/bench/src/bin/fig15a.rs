//! Regenerates Fig. 15a: scalability of `explore-ce(CC)` when increasing
//! the number of sessions (TPC-C and Wikipedia client programs, 3
//! transactions per session).
//!
//! Usage: `cargo run --release -p txdpor-bench --bin fig15a [--full] …`

use txdpor_bench::tables::print_scaling;
use txdpor_bench::{experiment_sessions, ExperimentOptions};

fn main() {
    let options = ExperimentOptions::from_args(std::env::args().skip(1));
    let max_sessions = 5;
    println!("== Experiment E2 (Fig. 15a): session scalability of explore-ce(CC) ==");
    println!(
        "configuration: {} variants/app, {} transactions per session, timeout {:?}",
        options.variants, options.transactions, options.timeout
    );
    let rows = experiment_sessions(&options, max_sessions);
    println!();
    println!("{}", print_scaling(&rows, "sessions"));
}
