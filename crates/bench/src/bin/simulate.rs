//! Runs the benchmark applications against the simulated distributed
//! store (`txdpor-store`) and checks every recorded execution against the
//! deployment's claimed isolation spec with the witnessed checker.
//!
//! One row per `(app, deployment, fault plan, seed)`: the simulation is a
//! pure function of that tuple, so every verdict — consistent with a
//! replaying witness, or a minimal violation core — can be reproduced
//! exactly by re-running the same configuration.
//!
//! Usage: `cargo run --release -p txdpor-bench --bin simulate [options]`
//!
//! - `--apps <name[,name...]>` — applications (default: all five);
//! - `--deployments <name[,name...]>` — `ser`, `si`, `causal`, `mixed`
//!   (the app's mixed scenario), `si-unchecked`, `no-wal` (default: all);
//! - `--faults <plan>` — a fault-plan preset or `key=value` spec, e.g.
//!   `lossy` or `delay=5..400,drop=0.05,crash=0@2000..12000`; repeat the
//!   flag for several plans (default: `lossy`). Explicitly-written
//!   `crash=` clauses must name shards of the actual cluster
//!   (`--shards`); presets instead reduce their indexes modulo the shard
//!   count;
//! - `--seeds <n[,n...]>` — run seeds (default: `1,2,3`);
//! - `--sessions <n>`, `--transactions <n>`, `--shards <n>` — workload
//!   shape and cluster size;
//! - `--repeat-check` — run every configuration twice and fail unless the
//!   recorded histories are bit-identical;
//! - `--require consistent|violation` — exit 3 unless every row is
//!   consistent (with a replaying witness), resp. at least one row is a
//!   violation (with a closed core);
//! - `--json <path>` — write the rows as JSON.
//!
//! Exit codes: 0 success, 1 I/O error, 2 malformed arguments, 3 a
//! `--repeat-check` or `--require` check failed. All failures print a
//! readable reason; none panic.

use std::process::exit;

use txdpor_analysis::DecomposingChecker;
use txdpor_apps::{app_sim_config, mixed_deployment, App};
use txdpor_bench::json::JsonValue;
use txdpor_history::ConsistencyChecker;
use txdpor_store::{run_simulation, Deployment, FaultPlan};

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Require {
    Consistent,
    Violation,
}

struct Args {
    apps: Vec<App>,
    deployments: Vec<String>,
    faults: Vec<(String, FaultPlan)>,
    seeds: Vec<u64>,
    sessions: usize,
    transactions: usize,
    shards: u32,
    repeat_check: bool,
    require: Option<Require>,
    json: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    fn value(args: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
        args.next()
            .cloned()
            .ok_or_else(|| format!("{flag} expects a value"))
    }
    let mut parsed = Args {
        apps: App::ALL.to_vec(),
        deployments: DEPLOYMENT_NAMES.iter().map(|s| s.to_string()).collect(),
        faults: vec![("lossy".into(), FaultPlan::preset("lossy").unwrap())],
        seeds: vec![1, 2, 3],
        sessions: 3,
        transactions: 2,
        shards: 3,
        repeat_check: false,
        require: None,
        json: None,
    };
    let mut faults_given = false;
    let mut args = argv.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--apps" => {
                let v = value(&mut args, "--apps")?;
                parsed.apps = v
                    .split(',')
                    .map(|name| {
                        let name = name.trim();
                        App::ALL
                            .into_iter()
                            .find(|a| a.name() == name)
                            .ok_or_else(|| {
                                format!(
                                    "--apps: unknown application {name:?} (expected one of {})",
                                    App::ALL.map(|a| a.name()).join(", ")
                                )
                            })
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--deployments" => {
                let v = value(&mut args, "--deployments")?;
                parsed.deployments = v
                    .split(',')
                    .map(|name| {
                        let name = name.trim();
                        if DEPLOYMENT_NAMES.contains(&name) {
                            Ok(name.to_string())
                        } else {
                            Err(format!(
                                "--deployments: unknown deployment {name:?} (expected one of {})",
                                DEPLOYMENT_NAMES.join(", ")
                            ))
                        }
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--faults" => {
                // One plan per occurrence (a `key=value` spec itself
                // contains commas); repeat the flag for several plans.
                // The first occurrence replaces the default.
                let v = value(&mut args, "--faults")?;
                let s = v.trim();
                let plan = s
                    .parse::<FaultPlan>()
                    .map_err(|e| format!("--faults: {e}"))?;
                if !faults_given {
                    parsed.faults.clear();
                    faults_given = true;
                }
                parsed.faults.push((s.to_string(), plan));
            }
            "--seeds" => {
                let v = value(&mut args, "--seeds")?;
                parsed.seeds = v
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<u64>()
                            .map_err(|_| format!("--seeds expects numbers, got {:?}", s.trim()))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--sessions" => {
                let v = value(&mut args, "--sessions")?;
                parsed.sessions = v
                    .parse()
                    .map_err(|_| format!("--sessions expects a number, got {v:?}"))?;
            }
            "--transactions" => {
                let v = value(&mut args, "--transactions")?;
                parsed.transactions = v
                    .parse()
                    .map_err(|_| format!("--transactions expects a number, got {v:?}"))?;
            }
            "--shards" => {
                let v = value(&mut args, "--shards")?;
                parsed.shards = v
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--shards expects a positive number, got {v:?}"))?;
            }
            "--repeat-check" => parsed.repeat_check = true,
            "--require" => {
                let v = value(&mut args, "--require")?;
                parsed.require = Some(match v.as_str() {
                    "consistent" => Require::Consistent,
                    "violation" => Require::Violation,
                    other => {
                        return Err(format!(
                            "--require expects 'consistent' or 'violation', got {other:?}"
                        ))
                    }
                });
            }
            "--json" => parsed.json = Some(value(&mut args, "--json")?),
            other => return Err(format!("unknown flag {other:?} (see --help in the source)")),
        }
    }
    // Cluster-dependent validation happens after the whole command line is
    // read, because `--shards` may legally follow `--faults`. Presets are
    // exempt: their crash indexes reduce modulo the shard count by design.
    for (fname, plan) in &parsed.faults {
        if FaultPlan::preset(fname).is_none() {
            plan.validate_cluster(parsed.shards)
                .map_err(|e| format!("--faults {fname:?}: {e}"))?;
        }
    }
    Ok(parsed)
}

const DEPLOYMENT_NAMES: [&str; 6] = ["ser", "si", "causal", "mixed", "si-unchecked", "no-wal"];

fn deployment_for(name: &str, app: App) -> Deployment {
    match name {
        "ser" => Deployment::ser(),
        "si" => Deployment::si(),
        "causal" => Deployment::causal(),
        "mixed" => mixed_deployment(app),
        "si-unchecked" => Deployment::si_unchecked(),
        "no-wal" => Deployment::no_wal(),
        other => unreachable!("deployment {other} validated at parse time"),
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simulate: {e}");
            exit(2);
        }
    };

    let mut rows: Vec<JsonValue> = Vec::new();
    let mut violations = 0usize;
    let mut failures: Vec<String> = Vec::new();

    for app in &args.apps {
        for dname in &args.deployments {
            for (fname, faults) in &args.faults {
                for &seed in &args.seeds {
                    let label = format!("{}/{dname}/{fname}/{seed}", app.name());
                    let mut cfg = app_sim_config(
                        *app,
                        args.sessions,
                        args.transactions,
                        seed,
                        deployment_for(dname, *app),
                        faults.clone(),
                    );
                    cfg.num_shards = args.shards;
                    let out = run_simulation(&cfg);
                    let fingerprint = out.history.fingerprint_hash();
                    if args.repeat_check {
                        let replay = run_simulation(&cfg);
                        if replay.history.fingerprint_hash() != fingerprint
                            || replay.stats != out.stats
                        {
                            failures.push(format!(
                                "{label}: replay diverged — simulation is not deterministic"
                            ));
                        }
                    }
                    // The decomposing wrapper splits the recorded history
                    // along its communication graph and checks components
                    // independently; verdicts (witness included) are
                    // recombined, so the row's semantics are unchanged.
                    let mut checker = DecomposingChecker::new(&out.claimed, true);
                    let verdict = checker.check_witnessed(&out.history);
                    let (verdict_str, detail) = match (verdict.witness(), verdict.violation()) {
                        (Some(w), _) => {
                            if w.replays(&out.history, &out.claimed) {
                                ("consistent", String::new())
                            } else {
                                failures.push(format!("{label}: witness does not replay"));
                                ("consistent-unreplayable", String::new())
                            }
                        }
                        (None, Some(v)) => {
                            violations += 1;
                            let closed = v
                                .cycle
                                .iter()
                                .zip(v.cycle.iter().cycle().skip(1))
                                .all(|(e, next)| e.to == next.from);
                            if !closed {
                                failures
                                    .push(format!("{label}: violation core is not a closed cycle"));
                            }
                            ("violation", v.to_string())
                        }
                        (None, None) => unreachable!("verdict carries witness or violation"),
                    };
                    if args.require == Some(Require::Consistent) && verdict_str != "consistent" {
                        failures.push(format!("{label}: expected consistent, got {verdict_str}"));
                    }
                    // Recovery invariants hold for every deployment —
                    // no-wal loses durability, not shard-local sanity — so
                    // a breach is always a failure, `--require` or not.
                    for b in &out.invariant_breaches {
                        failures.push(format!("{label}: invariant breach: {b}"));
                    }
                    let recovery = if out.stats.crashes == 0 {
                        String::new()
                    } else {
                        format!(
                            ", {} crashes, {} wal replayed, {}+{} in-doubt (commit/presumed-abort)",
                            out.stats.crashes,
                            out.stats.wal_replayed,
                            out.stats.indoubt_committed,
                            out.stats.indoubt_aborted,
                        )
                    };
                    println!(
                        "[simulate] {label}: {verdict_str} ({} committed, {} aborted attempts, \
                         {} resends, {} dropped, {} given up{recovery}){}",
                        out.stats.committed,
                        out.stats.attempts_aborted,
                        out.stats.rpc_resends,
                        out.stats.dropped,
                        out.stats.given_up,
                        if detail.is_empty() {
                            String::new()
                        } else {
                            format!("\n           core: {detail}")
                        }
                    );
                    rows.push(JsonValue::Object(vec![
                        ("app".into(), JsonValue::str(app.name())),
                        ("deployment".into(), JsonValue::str(dname.clone())),
                        ("faults".into(), JsonValue::str(fname.clone())),
                        ("seed".into(), JsonValue::uint(seed)),
                        ("claimed".into(), JsonValue::str(out.claimed.label())),
                        ("verdict".into(), JsonValue::str(verdict_str)),
                        ("violation".into(), {
                            if detail.is_empty() {
                                JsonValue::Null
                            } else {
                                JsonValue::str(detail.clone())
                            }
                        }),
                        ("components".into(), JsonValue::uint(checker.components())),
                        (
                            "largest_component".into(),
                            JsonValue::uint(checker.largest_component()),
                        ),
                        (
                            "fingerprint".into(),
                            JsonValue::str(format!("{:016x}{:016x}", fingerprint.0, fingerprint.1)),
                        ),
                        ("committed".into(), JsonValue::uint(out.stats.committed)),
                        ("given_up".into(), JsonValue::uint(out.stats.given_up)),
                        ("messages".into(), JsonValue::uint(out.stats.messages)),
                        ("dropped".into(), JsonValue::uint(out.stats.dropped)),
                        ("duplicated".into(), JsonValue::uint(out.stats.duplicated)),
                        ("rpc_resends".into(), JsonValue::uint(out.stats.rpc_resends)),
                        (
                            "attempts_aborted".into(),
                            JsonValue::uint(out.stats.attempts_aborted),
                        ),
                        ("sim_time_us".into(), JsonValue::uint(out.stats.sim_time_us)),
                        ("crashes".into(), JsonValue::uint(out.stats.crashes)),
                        ("crash_drops".into(), JsonValue::uint(out.stats.crash_drops)),
                        (
                            "wal_replayed".into(),
                            JsonValue::uint(out.stats.wal_replayed),
                        ),
                        (
                            "indoubt_committed".into(),
                            JsonValue::uint(out.stats.indoubt_committed),
                        ),
                        (
                            "indoubt_aborted".into(),
                            JsonValue::uint(out.stats.indoubt_aborted),
                        ),
                        (
                            "invariant_breaches".into(),
                            JsonValue::Array(
                                out.invariant_breaches
                                    .iter()
                                    .map(|b| JsonValue::str(b.clone()))
                                    .collect(),
                            ),
                        ),
                    ]));
                }
            }
        }
    }

    if args.require == Some(Require::Violation) && violations == 0 {
        failures.push("expected at least one violation, every row was consistent".into());
    }

    println!(
        "\ntotal rows: {}, violations: {}, check failures: {}",
        rows.len(),
        violations,
        failures.len()
    );

    if let Some(path) = &args.json {
        let doc = JsonValue::Object(vec![
            ("experiment".into(), JsonValue::str("simulate")),
            (
                "config".into(),
                JsonValue::Object(vec![
                    ("sessions".into(), JsonValue::uint(args.sessions as u64)),
                    (
                        "transactions".into(),
                        JsonValue::uint(args.transactions as u64),
                    ),
                    ("shards".into(), JsonValue::uint(args.shards as u64)),
                ]),
            ),
            ("rows".into(), JsonValue::Array(rows)),
        ]);
        if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
            eprintln!("simulate: failed to write {path}: {e}");
            exit(1);
        }
        println!("wrote {path}");
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("simulate: FAIL: {f}");
        }
        exit(3);
    }
}
