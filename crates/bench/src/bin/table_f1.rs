//! Regenerates Table F.1 (application scalability): per-benchmark
//! histories, end states, running time and memory for every algorithm of
//! Fig. 14.
//!
//! Usage: `cargo run --release -p txdpor-bench --bin table_f1 [--full] …`

use txdpor_bench::tables::print_detailed_table;
use txdpor_bench::{experiment_fig14, ExperimentOptions};

fn main() {
    let options = ExperimentOptions::from_args(std::env::args().skip(1));
    println!("== Table F.1: application scalability (per-benchmark detail) ==");
    println!(
        "configuration: {} variants/app, {} sessions x {} transactions, timeout {:?}",
        options.variants, options.sessions, options.transactions, options.timeout
    );
    let rows = experiment_fig14(&options);
    println!();
    println!("{}", print_detailed_table(&rows));
}
