//! Regenerates Table F.2 (session scalability detail): per-benchmark
//! histories, end states, time and memory of `explore-ce(CC)` for 1..=5
//! sessions.
//!
//! Usage: `cargo run --release -p txdpor-bench --bin table_f2 [--full] …`

use txdpor_bench::tables::print_scaling_detail;
use txdpor_bench::{experiment_sessions, ExperimentOptions};

fn main() {
    let options = ExperimentOptions::from_args(std::env::args().skip(1));
    println!("== Table F.2: session scalability (per-benchmark detail) ==");
    let rows = experiment_sessions(&options, 5);
    println!();
    println!("{}", print_scaling_detail(&rows, "sessions"));
}
