//! Regenerates Fig. 14 (a/b/c): cactus plots comparing `explore-ce(CC)`,
//! `explore-ce*(CC, SI)`, `explore-ce*(CC, SER)`, `explore-ce*(RA, CC)`,
//! `explore-ce*(RC, CC)`, `explore-ce*(true, CC)` and `DFS(CC)` on the
//! benchmark suite, plus the average-speedup summary quoted in §7.3.
//!
//! Beyond the paper's seven configurations the binary also measures
//! `explore-ce*(CC, PC)` (Prefix Consistency as the output filter), the
//! incremental checking engines (`CC` vs the `CC (no-memo)` ablation that
//! reproduces the stateless checkers' cost model) and the parallel frontier
//! exploration (`CC parN`), and can emit everything as machine-readable
//! JSON for the perf trajectory.
//!
//! Usage: `cargo run --release -p txdpor-bench --bin fig14 [--full]
//! [--timeout <s>] [--variants <n>] [--sessions <n>] [--transactions <n>]
//! [--workers <n>] [--skip-parallel] [--ablation] [--json <path>]`

use txdpor_bench::json::JsonValue;
use txdpor_bench::tables::print_cactus;
use txdpor_bench::{
    average_speedup, experiment_fig14_with, fig14_mixed_algorithms, flag_value,
    write_experiment_json, Algorithm, ExperimentOptions, Measurement,
};
use txdpor_history::IsolationLevel;

fn by_algorithm(rows: &[Measurement], label: &str) -> Vec<Measurement> {
    rows.iter()
        .filter(|m| m.algorithm == label)
        .cloned()
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = ExperimentOptions::from_args(args.iter().cloned());
    let json_path = flag_value(&args, "--json");
    let workers = match flag_value(&args, "--workers") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n.max(1),
            Err(_) => {
                eprintln!("--workers expects a number, got {v:?}");
                std::process::exit(1);
            }
        },
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    };
    let with_ablation = args.iter().any(|a| a == "--ablation");

    println!("== Experiment E1 (Fig. 14): algorithm comparison ==");
    println!(
        "configuration: {} variants/app, {} sessions x {} transactions, timeout {:?}, {} workers",
        options.variants, options.sessions, options.transactions, options.timeout, workers
    );

    let cc_level = IsolationLevel::CausalConsistency;
    let explicit_workers = flag_value(&args, "--workers").is_some();
    let skip_parallel = args.iter().any(|a| a == "--skip-parallel");
    let mut algorithms: Vec<Algorithm> = Algorithm::FIG14.to_vec();
    algorithms.push(Algorithm::ExploreCeNoMemo(cc_level));
    if skip_parallel {
        // Explicit opt-out, e.g. for a serial-only baseline run that a CI
        // job then compares against a separate `--workers N` run.
        println!("--skip-parallel: skipping the parallel configuration");
    } else if explicit_workers || workers > 1 {
        algorithms.push(Algorithm::ExploreCeParallel(cc_level, workers));
    } else {
        // Auto-derived worker count on a single-core machine: the parallel
        // mode's scheduling overhead can only lose, so fall back to the
        // serial algorithm (pass --workers N to force a parallel row, or
        // --skip-parallel to make the omission explicit).
        println!(
            "single core detected: skipping the parallel configuration \
             (serial fallback; pass --workers N to force it)"
        );
    }
    if with_ablation {
        algorithms.push(Algorithm::ExploreCeNoOptimality(cc_level));
    }
    // The mixed-isolation scenarios (three per application, e.g. TPC-C
    // payment@SER next to new-order@CC, or order-status@PC): each runs
    // only on its own application's programs.
    algorithms.extend(fig14_mixed_algorithms());

    let rows = experiment_fig14_with(&options, &algorithms);
    println!();
    println!("{}", print_cactus(&rows));

    let cc = by_algorithm(&rows, "CC");
    let parallel_label = Algorithm::ExploreCeParallel(cc_level, workers).label();
    let mut summary: Vec<(String, JsonValue)> = Vec::new();
    println!("average speedup of explore-ce(CC) over:");
    let mut slower = vec!["RA + CC", "RC + CC", "true + CC", "DFS(CC)", "CC (no-memo)"];
    if with_ablation {
        slower.push("CC (no-opt)");
    }
    for other in slower {
        let slow = by_algorithm(&rows, other);
        let key = format!("speedup_cc_over_{}", slug(other));
        match average_speedup(&cc, &slow) {
            Some(s) => {
                println!("  {other:<12} : {s:.1}x");
                summary.push((key, JsonValue::Float(s)));
            }
            None => {
                println!("  {other:<12} : n/a (all runs timed out)");
                summary.push((key, JsonValue::Null));
            }
        }
    }
    // The incremental-engine win is the CC-over-no-memo ratio; the parallel
    // win is the parN-over-CC ratio.
    let par = by_algorithm(&rows, &parallel_label);
    let key = format!("speedup_{}_over_cc", slug(&parallel_label));
    match average_speedup(&par, &cc) {
        Some(s) => {
            println!("average speedup of {parallel_label} over CC: {s:.1}x");
            summary.push((key, JsonValue::Float(s)));
        }
        None => {
            println!("average speedup of {parallel_label} over CC: n/a");
            summary.push((key, JsonValue::Null));
        }
    }
    summary.push(("workers".into(), JsonValue::uint(workers as u64)));

    let timeouts: usize = rows.iter().filter(|m| m.timed_out).count();
    println!("\ntotal runs: {}, timeouts: {}", rows.len(), timeouts);
    summary.push(("timeouts".into(), JsonValue::uint(timeouts as u64)));

    if let Some(path) = json_path {
        match write_experiment_json(&path, "fig14", &options, &rows, summary) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Lower-snake-case slug of an algorithm label for JSON summary keys
/// (`"CC + SER"` → `cc_ser`, `"DFS(CC)"` → `dfs_cc`).
fn slug(label: &str) -> String {
    let mut out = String::new();
    let mut last_sep = true;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
            last_sep = false;
        } else if !last_sep {
            out.push('_');
            last_sep = true;
        }
    }
    out.trim_end_matches('_').to_owned()
}
