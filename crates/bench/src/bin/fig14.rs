//! Regenerates Fig. 14 (a/b/c): cactus plots comparing `explore-ce(CC)`,
//! `explore-ce*(CC, SI)`, `explore-ce*(CC, SER)`, `explore-ce*(RA, CC)`,
//! `explore-ce*(RC, CC)`, `explore-ce*(true, CC)` and `DFS(CC)` on the
//! benchmark suite, plus the average-speedup summary quoted in §7.3.
//!
//! Usage: `cargo run --release -p txdpor-bench --bin fig14 [--full]
//! [--timeout <s>] [--variants <n>] [--sessions <n>] [--transactions <n>]`

use txdpor_bench::tables::print_cactus;
use txdpor_bench::{average_speedup, experiment_fig14, ExperimentOptions, Measurement};

fn by_algorithm(rows: &[Measurement], label: &str) -> Vec<Measurement> {
    rows.iter().filter(|m| m.algorithm == label).cloned().collect()
}

fn main() {
    let options = ExperimentOptions::from_args(std::env::args().skip(1));
    println!("== Experiment E1 (Fig. 14): algorithm comparison ==");
    println!(
        "configuration: {} variants/app, {} sessions x {} transactions, timeout {:?}",
        options.variants, options.sessions, options.transactions, options.timeout
    );
    let rows = experiment_fig14(&options);
    println!();
    println!("{}", print_cactus(&rows));

    let cc = by_algorithm(&rows, "CC");
    println!("average speedup of explore-ce(CC) over:");
    for other in ["RA + CC", "RC + CC", "true + CC", "DFS(CC)"] {
        let slow = by_algorithm(&rows, other);
        match average_speedup(&cc, &slow) {
            Some(s) => println!("  {other:<10} : {s:.1}x"),
            None => println!("  {other:<10} : n/a (all runs timed out)"),
        }
    }
    let timeouts: usize = rows.iter().filter(|m| m.timed_out).count();
    println!("\ntotal runs: {}, timeouts: {}", rows.len(), timeouts);
}
