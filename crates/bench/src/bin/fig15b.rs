//! Regenerates Fig. 15b: scalability of `explore-ce(CC)` when increasing
//! the number of transactions per session (TPC-C and Wikipedia client
//! programs, 3 sessions).
//!
//! Usage: `cargo run --release -p txdpor-bench --bin fig15b [--full] …`

use txdpor_bench::tables::print_scaling;
use txdpor_bench::{experiment_transactions, ExperimentOptions};

fn main() {
    let options = ExperimentOptions::from_args(std::env::args().skip(1));
    let max_transactions = 5;
    println!("== Experiment E3 (Fig. 15b): transaction scalability of explore-ce(CC) ==");
    println!(
        "configuration: {} variants/app, {} sessions, timeout {:?}",
        options.variants, options.sessions, options.timeout
    );
    let rows = experiment_transactions(&options, max_transactions);
    println!();
    println!("{}", print_scaling(&rows, "transactions"));
}
