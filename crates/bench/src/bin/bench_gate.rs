//! Bench-regression gate: re-runs the deterministic courseware rows of
//! Fig. 14 and fails (exit 1) if any count (`histories`, `end_states`,
//! `explore_calls`) or `levels` spec label differs from the committed
//! `BENCH_fig14.json`.
//!
//! The exploration counts are pure functions of the algorithm and the
//! (seeded) benchmark program, so they are machine-independent — unlike
//! wall-clock time and peak allocation, which are reported but never
//! gated. Rows that timed out in the baseline are skipped (a timed-out
//! run's counts depend on where the clock cut it off). Rows the re-run
//! produces that the baseline does not know are listed once as *new* and
//! do not fail the gate; missing, mismatching and extra rows are collected
//! into one readable report (see [`txdpor_bench::gate`]).
//!
//! Usage: `cargo run --release -p txdpor-bench --bin bench_gate --
//! [--baseline BENCH_fig14.json] [--timeout <s>] [--apps courseware]`

use std::time::Duration;

use txdpor_bench::gate::{algorithm_for_label, baseline_rows, compare};
use txdpor_bench::json::JsonValue;
use txdpor_bench::{experiment_fig14_with, flag_value, ExperimentOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path =
        flag_value(&args, "--baseline").unwrap_or_else(|| "BENCH_fig14.json".to_owned());
    let apps = flag_value(&args, "--apps").unwrap_or_else(|| "courseware".to_owned());
    let timeout: u64 = flag_value(&args, "--timeout")
        .and_then(|v| v.parse().ok())
        .unwrap_or(60);

    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_gate: cannot read {baseline_path}: {e}");
            std::process::exit(1);
        }
    };
    let doc = match JsonValue::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_gate: cannot parse {baseline_path}: {e}");
            std::process::exit(1);
        }
    };
    let config = doc.get("config");
    let field = |key: &str| -> usize {
        match config.and_then(|c| c.get(key)).and_then(JsonValue::as_i64) {
            Some(v) => v as usize,
            None => {
                eprintln!("bench_gate: baseline config lacks {key:?}");
                std::process::exit(1);
            }
        }
    };
    let app_names: Vec<String> = apps.split(',').map(|s| s.trim().to_owned()).collect();
    let options = ExperimentOptions {
        variants: field("variants"),
        sessions: field("sessions"),
        transactions: field("transactions"),
        timeout: Duration::from_secs(timeout),
        apps: Some(app_names.clone()),
        levels: None,
    };

    // Benchmarks are named `<app>-<variant>`: match the app name exactly,
    // mirroring the suite filter of `fig14_suite`.
    let in_suite = |bench: &str| {
        app_names.iter().any(|a| {
            bench
                .strip_prefix(a.as_str())
                .is_some_and(|rest| rest.starts_with('-'))
        })
    };
    let (gated, notices) = baseline_rows(&doc, in_suite);
    if gated.iter().all(|r| r.timed_out) {
        eprintln!("bench_gate: no gateable rows for apps {apps:?} in {baseline_path}");
        for n in &notices {
            eprintln!("note {n}");
        }
        std::process::exit(1);
    }

    // Re-run every algorithm with a count-comparable (non-timed-out)
    // baseline row on those apps; algorithms whose baseline rows all
    // timed out have nothing to compare and would only burn the timeout.
    let mut algorithms = Vec::new();
    for row in gated.iter().filter(|r| !r.timed_out) {
        match algorithm_for_label(&row.algorithm) {
            Some(a) if !algorithms.contains(&a) => algorithms.push(a),
            _ => {}
        }
    }
    let measured = experiment_fig14_with(&options, &algorithms);

    let mut report = compare(&gated, &measured, timeout);
    report.notices.splice(0..0, notices);
    print!("{}", report.render(&baseline_path));
    if !report.ok() {
        std::process::exit(1);
    }
}
