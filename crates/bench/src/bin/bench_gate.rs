//! Bench-regression gate: re-runs the deterministic courseware rows of
//! Fig. 14 and fails (exit 1) if any count (`histories`, `end_states`,
//! `explore_calls`) differs from the committed `BENCH_fig14.json`.
//!
//! The exploration counts are pure functions of the algorithm and the
//! (seeded) benchmark program, so they are machine-independent — unlike
//! wall-clock time and peak allocation, which are reported but never
//! gated. Rows that timed out in the baseline are skipped (a timed-out
//! run's counts depend on where the clock cut it off).
//!
//! Usage: `cargo run --release -p txdpor-bench --bin bench_gate --
//! [--baseline BENCH_fig14.json] [--timeout <s>] [--apps courseware]`

use std::time::Duration;

use txdpor_bench::json::JsonValue;
use txdpor_bench::{experiment_fig14_with, flag_value, Algorithm, ExperimentOptions, Measurement};
use txdpor_history::IsolationLevel;

/// The committed algorithm labels mapped back to configurations. Labels
/// absent from this table (e.g. a differently-sized parallel run) are
/// skipped with a notice rather than failing the gate.
fn algorithm_for_label(label: &str) -> Option<Algorithm> {
    let cc = IsolationLevel::CausalConsistency;
    let mut table: Vec<Algorithm> = Algorithm::FIG14.to_vec();
    table.push(Algorithm::ExploreCeNoMemo(cc));
    table.push(Algorithm::ExploreCeNoOptimality(cc));
    for workers in 1..=64 {
        table.push(Algorithm::ExploreCeParallel(cc, workers));
    }
    table.into_iter().find(|a| a.label() == label)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path =
        flag_value(&args, "--baseline").unwrap_or_else(|| "BENCH_fig14.json".to_owned());
    let apps = flag_value(&args, "--apps").unwrap_or_else(|| "courseware".to_owned());
    let timeout: u64 = flag_value(&args, "--timeout")
        .and_then(|v| v.parse().ok())
        .unwrap_or(60);

    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_gate: cannot read {baseline_path}: {e}");
            std::process::exit(1);
        }
    };
    let doc = match JsonValue::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_gate: cannot parse {baseline_path}: {e}");
            std::process::exit(1);
        }
    };
    let config = doc.get("config").expect("baseline has a config object");
    let field = |v: &JsonValue, key: &str| -> i64 {
        v.get(key)
            .and_then(JsonValue::as_i64)
            .unwrap_or_else(|| panic!("baseline row missing {key}"))
    };
    let options = ExperimentOptions {
        variants: field(config, "variants") as usize,
        sessions: field(config, "sessions") as usize,
        transactions: field(config, "transactions") as usize,
        timeout: Duration::from_secs(timeout),
        apps: Some(apps.split(',').map(|s| s.trim().to_owned()).collect()),
    };

    // Baseline rows for the gated apps, excluding timed-out ones.
    let rows = doc.get("rows").and_then(JsonValue::as_array).unwrap_or(&[]);
    let gated: Vec<(&str, &str, i64, i64, i64)> = rows
        .iter()
        .filter(|r| {
            let bench = r.get("benchmark").and_then(JsonValue::as_str).unwrap_or("");
            // Benchmarks are named `<app>-<variant>`: match the app name
            // exactly, mirroring the suite filter of `fig14_suite`.
            options
                .apps
                .as_ref()
                .expect("apps filter set above")
                .iter()
                .any(|a| {
                    bench
                        .strip_prefix(a.as_str())
                        .is_some_and(|rest| rest.starts_with('-'))
                })
                && r.get("timed_out").and_then(JsonValue::as_bool) == Some(false)
        })
        .map(|r| {
            (
                r.get("benchmark").and_then(JsonValue::as_str).unwrap(),
                r.get("algorithm").and_then(JsonValue::as_str).unwrap(),
                field(r, "histories"),
                field(r, "end_states"),
                field(r, "explore_calls"),
            )
        })
        .collect();
    if gated.is_empty() {
        eprintln!("bench_gate: no gateable rows for apps {apps:?} in {baseline_path}");
        std::process::exit(1);
    }

    // Re-run every algorithm the baseline used on those apps.
    let mut algorithms = Vec::new();
    for (_, label, ..) in &gated {
        match algorithm_for_label(label) {
            Some(a) if !algorithms.contains(&a) => algorithms.push(a),
            Some(_) => {}
            None => eprintln!("bench_gate: skipping unknown algorithm label {label:?}"),
        }
    }
    let measured = experiment_fig14_with(&options, &algorithms);
    let find = |bench: &str, label: &str| -> Option<&Measurement> {
        measured
            .iter()
            .find(|m| m.benchmark == bench && m.algorithm == label)
    };

    let mut failures = 0;
    let mut checked = 0;
    for (bench, label, histories, end_states, explore_calls) in &gated {
        let Some(m) = find(bench, label) else {
            if algorithm_for_label(label).is_some() {
                eprintln!("FAIL {bench}/{label}: row missing from the re-run");
                failures += 1;
            }
            continue;
        };
        if m.timed_out {
            eprintln!(
                "FAIL {bench}/{label}: timed out after {timeout}s while the baseline did not"
            );
            failures += 1;
            continue;
        }
        checked += 1;
        for (what, want, got) in [
            ("histories", *histories, m.histories as i64),
            ("end_states", *end_states, m.end_states as i64),
            ("explore_calls", *explore_calls, m.explore_calls as i64),
        ] {
            if want != got {
                eprintln!("FAIL {bench}/{label}: {what} = {got}, baseline has {want}");
                failures += 1;
            }
        }
    }

    // Catastrophic-slowdown guard: the fresh run must not time out more
    // often than the baseline did *on the gated sub-suite* (counted from
    // the baseline rows matching the app filter — the summary's timeout
    // count covers the full suite and would mask sub-suite regressions on
    // rows the per-row check skips because their baseline also timed out).
    let in_suite = |bench: &str| {
        options
            .apps
            .as_ref()
            .expect("apps filter set above")
            .iter()
            .any(|a| {
                bench
                    .strip_prefix(a.as_str())
                    .is_some_and(|rest| rest.starts_with('-'))
            })
    };
    let baseline_timeouts = rows
        .iter()
        .filter(|r| {
            in_suite(r.get("benchmark").and_then(JsonValue::as_str).unwrap_or(""))
                && r.get("timed_out").and_then(JsonValue::as_bool) == Some(true)
        })
        .count();
    let fresh_timeouts = measured.iter().filter(|m| m.timed_out).count();
    if fresh_timeouts > baseline_timeouts {
        eprintln!(
            "FAIL timeouts: fresh run hit {fresh_timeouts} timeout(s), baseline has \
             {baseline_timeouts} on this sub-suite"
        );
        failures += 1;
    }

    println!("bench_gate: {checked} row(s) checked against {baseline_path}, {failures} failure(s)");
    if failures > 0 {
        std::process::exit(1);
    }
}
