//! Regenerates Table F.3 (transaction scalability detail): per-benchmark
//! histories, end states, time and memory of `explore-ce(CC)` for 1..=5
//! transactions per session.
//!
//! Usage: `cargo run --release -p txdpor-bench --bin table_f3 [--full] …`

use txdpor_bench::tables::print_scaling_detail;
use txdpor_bench::{experiment_transactions, ExperimentOptions};

fn main() {
    let options = ExperimentOptions::from_args(std::env::args().skip(1));
    println!("== Table F.3: transaction scalability (per-benchmark detail) ==");
    let rows = experiment_transactions(&options, 5);
    println!();
    println!("{}", print_scaling_detail(&rows, "transactions"));
}
