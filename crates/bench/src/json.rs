//! Minimal JSON serialisation for the machine-readable benchmark outputs.
//!
//! The build environment is offline (no `serde`), so this module hand-rolls
//! the tiny subset of JSON the experiment binaries need: objects, arrays,
//! strings (with escaping), integers, floats and booleans.

use std::fmt;

use crate::experiments::ExperimentOptions;
use crate::harness::Measurement;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer number.
    Int(i64),
    /// A floating-point number. Non-finite values serialise as `null`
    /// (JSON has no NaN/Infinity).
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Self {
        JsonValue::Str(s.into())
    }

    /// Convenience constructor for an unsigned counter (benchmark counters
    /// comfortably fit in `i64`).
    pub fn uint(v: u64) -> Self {
        JsonValue::Int(v as i64)
    }

    /// The value of an object field, if this is an object with that key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The integer payload (floats with integral value included).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(i) => Some(*i),
            JsonValue::Float(x) if x.fract() == 0.0 => Some(*x as i64),
            _ => None,
        }
    }

    /// The string payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses a JSON document (the subset this module emits: objects,
    /// arrays, strings with escapes, numbers, booleans and null). Used by
    /// the bench-regression gate to read the committed baseline.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Recursive-descent parser over the emitted JSON subset.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        if float {
            text.parse()
                .map(JsonValue::Float)
                .map_err(|_| format!("invalid number {text:?} at byte {start}"))
        } else {
            text.parse()
                .map(JsonValue::Int)
                .map_err(|_| format!("invalid number {text:?} at byte {start}"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(out)
                        .map_err(|_| "invalid UTF-8 in string".to_owned());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'n') => out.push(b'\n'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| {
                                    format!("invalid \\u escape at byte {}", self.pos)
                                })?;
                            let c = char::from_u32(hex)
                                .ok_or_else(|| format!("invalid code point {hex:#x}"))?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    out.push(b);
                    self.pos += 1;
                }
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

/// Escapes a string for inclusion in a JSON document (quotes, backslashes
/// and control characters).
fn escape(s: &str, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    out.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_str("\"")
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Int(i) => write!(f, "{i}"),
            JsonValue::Float(x) if x.is_finite() => write!(f, "{x:?}"),
            JsonValue::Float(_) => f.write_str("null"),
            JsonValue::Str(s) => escape(s, f),
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(fields) => {
                f.write_str("{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(key, f)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// One benchmark row (program × algorithm) as a JSON object.
pub fn measurement_json(m: &Measurement) -> JsonValue {
    JsonValue::Object(vec![
        ("benchmark".into(), JsonValue::str(&m.benchmark)),
        ("algorithm".into(), JsonValue::str(&m.algorithm)),
        ("levels".into(), JsonValue::str(&m.levels)),
        ("histories".into(), JsonValue::uint(m.histories)),
        ("end_states".into(), JsonValue::uint(m.end_states)),
        ("explore_calls".into(), JsonValue::uint(m.explore_calls)),
        ("time_secs".into(), JsonValue::Float(m.time.as_secs_f64())),
        (
            "peak_alloc_bytes".into(),
            JsonValue::uint(m.peak_alloc as u64),
        ),
        ("history_clones".into(), JsonValue::uint(m.history_clones)),
        (
            "history_bytes_copied".into(),
            JsonValue::uint(m.history_bytes_copied),
        ),
        ("engine_checks".into(), JsonValue::uint(m.engine.checks)),
        ("memo_hits".into(), JsonValue::uint(m.engine.memo_hits)),
        ("memo_misses".into(), JsonValue::uint(m.engine.memo_misses)),
        (
            "memo_evictions".into(),
            JsonValue::uint(m.engine.memo_evictions),
        ),
        (
            "memo_occupied".into(),
            JsonValue::uint(m.engine.memo_occupied),
        ),
        ("memo_slots".into(), JsonValue::uint(m.engine.memo_slots)),
        (
            "incremental_hits".into(),
            JsonValue::uint(m.engine.incremental_hits),
        ),
        (
            "full_rebuilds".into(),
            JsonValue::uint(m.engine.full_rebuilds),
        ),
        // Named `check_cpu_nanos` (not `check_nanos`) because it is the
        // per-thread CPU time summed across workers: on parallel rows it
        // exceeds the wall-clock `time_secs`.
        (
            "check_cpu_nanos".into(),
            JsonValue::uint(m.engine.check_nanos),
        ),
        (
            "shared_memo_hits".into(),
            JsonValue::uint(m.engine.shared_memo_hits),
        ),
        ("workers".into(), JsonValue::uint(m.workers as u64)),
        ("steals".into(), JsonValue::uint(m.steals)),
        ("components".into(), JsonValue::uint(m.components)),
        (
            "largest_component".into(),
            JsonValue::uint(m.largest_component),
        ),
        (
            "statically_pruned".into(),
            JsonValue::uint(m.statically_pruned),
        ),
        (
            "first_rejection".into(),
            m.first_rejection
                .as_deref()
                .map_or(JsonValue::Null, JsonValue::str),
        ),
        ("timed_out".into(), JsonValue::Bool(m.timed_out)),
    ])
}

/// The full document emitted by an experiment binary's `--json <path>`:
/// experiment name, configuration, per-run rows and a free-form summary
/// (typically speedups).
pub fn experiment_json(
    experiment: &str,
    options: &ExperimentOptions,
    rows: &[Measurement],
    summary: Vec<(String, JsonValue)>,
) -> JsonValue {
    JsonValue::Object(vec![
        ("experiment".into(), JsonValue::str(experiment)),
        (
            "config".into(),
            JsonValue::Object(vec![
                ("variants".into(), JsonValue::uint(options.variants as u64)),
                ("sessions".into(), JsonValue::uint(options.sessions as u64)),
                (
                    "transactions".into(),
                    JsonValue::uint(options.transactions as u64),
                ),
                (
                    "timeout_secs".into(),
                    JsonValue::Float(options.timeout.as_secs_f64()),
                ),
            ]),
        ),
        (
            "rows".into(),
            JsonValue::Array(rows.iter().map(measurement_json).collect()),
        ),
        ("summary".into(), JsonValue::Object(summary)),
    ])
}

/// Writes an experiment document to `path`.
///
/// # Errors
///
/// Propagates I/O errors from creating or writing the file.
pub fn write_experiment_json(
    path: &str,
    experiment: &str,
    options: &ExperimentOptions,
    rows: &[Measurement],
    summary: Vec<(String, JsonValue)>,
) -> std::io::Result<()> {
    let doc = experiment_json(experiment, options, rows, summary);
    std::fs::write(path, format!("{doc}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_measurement() -> Measurement {
        Measurement {
            benchmark: "tiny \"quoted\"\n".to_owned(),
            algorithm: "CC".to_owned(),
            levels: "CC[s0.t1=SER]".to_owned(),
            histories: 2,
            end_states: 3,
            explore_calls: 10,
            time: Duration::from_millis(1500),
            peak_alloc: 4096,
            history_clones: 12,
            history_bytes_copied: 2048,
            engine: txdpor_history::EngineStats {
                checks: 100,
                memo_hits: 40,
                memo_misses: 60,
                memo_evictions: 3,
                memo_occupied: 57,
                memo_slots: 1024,
                incremental_hits: 50,
                full_rebuilds: 10,
                check_nanos: 123_456,
                shared_memo_hits: 7,
            },
            workers: 4,
            steals: 5,
            components: 3,
            largest_component: 6,
            statically_pruned: 42,
            first_rejection: Some("t1 -so-> t2 -co-> t1".to_owned()),
            timed_out: false,
        }
    }

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.to_string(), "null");
        assert_eq!(JsonValue::Bool(true).to_string(), "true");
        assert_eq!(JsonValue::Int(-3).to_string(), "-3");
        assert_eq!(JsonValue::Float(1.5).to_string(), "1.5");
        assert_eq!(JsonValue::Float(f64::NAN).to_string(), "null");
        assert_eq!(
            JsonValue::str("a\"b\\c\nd").to_string(),
            "\"a\\\"b\\\\c\\nd\""
        );
        assert_eq!(JsonValue::str("\u{1}").to_string(), "\"\\u0001\"");
    }

    #[test]
    fn document_shape() {
        let rows = vec![sample_measurement()];
        let doc = experiment_json(
            "fig14",
            &ExperimentOptions::default(),
            &rows,
            vec![("speedup".into(), JsonValue::Float(2.0))],
        )
        .to_string();
        assert!(doc.starts_with('{') && doc.ends_with('}'));
        for key in [
            "\"experiment\"",
            "\"config\"",
            "\"rows\"",
            "\"summary\"",
            "\"time_secs\":1.5",
            "\"histories\":2",
            "\"levels\":\"CC[s0.t1=SER]\"",
            "\"history_clones\":12",
            "\"history_bytes_copied\":2048",
            "\"check_cpu_nanos\":123456",
            "\"shared_memo_hits\":7",
            "\"workers\":4",
            "\"steals\":5",
            "\"components\":3",
            "\"largest_component\":6",
            "\"statically_pruned\":42",
            "\"first_rejection\":\"t1 -so-> t2 -co-> t1\"",
            "\"speedup\":2.0",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
        // The engine-time field is CPU time summed across workers, not
        // wall time; the old wall-time-suggesting name must stay retired.
        assert!(
            !doc.contains("\"check_nanos\""),
            "the ambiguous check_nanos key must not reappear"
        );
        // Escaped content round-trips through the writer unmangled.
        assert!(doc.contains("tiny \\\"quoted\\\"\\n"));
        // Balanced braces/brackets (a cheap well-formedness check; CI runs
        // a real parser over the emitted file).
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn parse_roundtrips_emitted_documents() {
        let rows = vec![sample_measurement()];
        let doc = experiment_json(
            "fig14",
            &ExperimentOptions::default(),
            &rows,
            vec![
                ("speedup".into(), JsonValue::Float(2.5)),
                ("none".into(), JsonValue::Null),
            ],
        );
        let text = doc.to_string();
        let parsed = JsonValue::parse(&text).unwrap();
        assert_eq!(parsed.to_string(), text, "parse ∘ render is the identity");
        assert_eq!(
            parsed.get("experiment").and_then(JsonValue::as_str),
            Some("fig14")
        );
        let row = &parsed.get("rows").and_then(JsonValue::as_array).unwrap()[0];
        assert_eq!(row.get("histories").and_then(JsonValue::as_i64), Some(2));
        assert_eq!(
            row.get("timed_out").and_then(JsonValue::as_bool),
            Some(false)
        );
        assert_eq!(
            row.get("benchmark").and_then(JsonValue::as_str),
            Some("tiny \"quoted\"\n")
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(JsonValue::parse("{\"a\":").is_err());
        assert!(JsonValue::parse("[1,2").is_err());
        assert!(JsonValue::parse("{} trailing").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("tru").is_err());
        assert_eq!(
            JsonValue::parse(" [1, -2.5, null] ").unwrap(),
            JsonValue::Array(vec![
                JsonValue::Int(1),
                JsonValue::Float(-2.5),
                JsonValue::Null
            ])
        );
    }

    #[test]
    fn write_and_reread() {
        let dir = std::env::temp_dir();
        let path = dir.join("txdpor_bench_json_test.json");
        let path = path.to_str().unwrap();
        write_experiment_json(
            path,
            "fig14",
            &ExperimentOptions::default(),
            &[sample_measurement()],
            vec![],
        )
        .unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("\"experiment\":\"fig14\""));
        std::fs::remove_file(path).ok();
    }
}
