//! Minimal JSON serialisation for the machine-readable benchmark outputs.
//!
//! The build environment is offline (no `serde`), so this module hand-rolls
//! the tiny subset of JSON the experiment binaries need: objects, arrays,
//! strings (with escaping), integers, floats and booleans.

use std::fmt;

use crate::experiments::ExperimentOptions;
use crate::harness::Measurement;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer number.
    Int(i64),
    /// A floating-point number. Non-finite values serialise as `null`
    /// (JSON has no NaN/Infinity).
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Self {
        JsonValue::Str(s.into())
    }

    /// Convenience constructor for an unsigned counter (benchmark counters
    /// comfortably fit in `i64`).
    pub fn uint(v: u64) -> Self {
        JsonValue::Int(v as i64)
    }
}

/// Escapes a string for inclusion in a JSON document (quotes, backslashes
/// and control characters).
fn escape(s: &str, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    out.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_str("\"")
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Int(i) => write!(f, "{i}"),
            JsonValue::Float(x) if x.is_finite() => write!(f, "{x:?}"),
            JsonValue::Float(_) => f.write_str("null"),
            JsonValue::Str(s) => escape(s, f),
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(fields) => {
                f.write_str("{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(key, f)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// One benchmark row (program × algorithm) as a JSON object.
pub fn measurement_json(m: &Measurement) -> JsonValue {
    JsonValue::Object(vec![
        ("benchmark".into(), JsonValue::str(&m.benchmark)),
        ("algorithm".into(), JsonValue::str(&m.algorithm)),
        ("histories".into(), JsonValue::uint(m.histories)),
        ("end_states".into(), JsonValue::uint(m.end_states)),
        ("explore_calls".into(), JsonValue::uint(m.explore_calls)),
        ("time_secs".into(), JsonValue::Float(m.time.as_secs_f64())),
        (
            "peak_alloc_bytes".into(),
            JsonValue::uint(m.peak_alloc as u64),
        ),
        ("timed_out".into(), JsonValue::Bool(m.timed_out)),
    ])
}

/// The full document emitted by an experiment binary's `--json <path>`:
/// experiment name, configuration, per-run rows and a free-form summary
/// (typically speedups).
pub fn experiment_json(
    experiment: &str,
    options: &ExperimentOptions,
    rows: &[Measurement],
    summary: Vec<(String, JsonValue)>,
) -> JsonValue {
    JsonValue::Object(vec![
        ("experiment".into(), JsonValue::str(experiment)),
        (
            "config".into(),
            JsonValue::Object(vec![
                ("variants".into(), JsonValue::uint(options.variants as u64)),
                ("sessions".into(), JsonValue::uint(options.sessions as u64)),
                (
                    "transactions".into(),
                    JsonValue::uint(options.transactions as u64),
                ),
                (
                    "timeout_secs".into(),
                    JsonValue::Float(options.timeout.as_secs_f64()),
                ),
            ]),
        ),
        (
            "rows".into(),
            JsonValue::Array(rows.iter().map(measurement_json).collect()),
        ),
        ("summary".into(), JsonValue::Object(summary)),
    ])
}

/// Writes an experiment document to `path`.
///
/// # Errors
///
/// Propagates I/O errors from creating or writing the file.
pub fn write_experiment_json(
    path: &str,
    experiment: &str,
    options: &ExperimentOptions,
    rows: &[Measurement],
    summary: Vec<(String, JsonValue)>,
) -> std::io::Result<()> {
    let doc = experiment_json(experiment, options, rows, summary);
    std::fs::write(path, format!("{doc}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_measurement() -> Measurement {
        Measurement {
            benchmark: "tiny \"quoted\"\n".to_owned(),
            algorithm: "CC".to_owned(),
            histories: 2,
            end_states: 3,
            explore_calls: 10,
            time: Duration::from_millis(1500),
            peak_alloc: 4096,
            timed_out: false,
        }
    }

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.to_string(), "null");
        assert_eq!(JsonValue::Bool(true).to_string(), "true");
        assert_eq!(JsonValue::Int(-3).to_string(), "-3");
        assert_eq!(JsonValue::Float(1.5).to_string(), "1.5");
        assert_eq!(JsonValue::Float(f64::NAN).to_string(), "null");
        assert_eq!(
            JsonValue::str("a\"b\\c\nd").to_string(),
            "\"a\\\"b\\\\c\\nd\""
        );
        assert_eq!(JsonValue::str("\u{1}").to_string(), "\"\\u0001\"");
    }

    #[test]
    fn document_shape() {
        let rows = vec![sample_measurement()];
        let doc = experiment_json(
            "fig14",
            &ExperimentOptions::default(),
            &rows,
            vec![("speedup".into(), JsonValue::Float(2.0))],
        )
        .to_string();
        assert!(doc.starts_with('{') && doc.ends_with('}'));
        for key in [
            "\"experiment\"",
            "\"config\"",
            "\"rows\"",
            "\"summary\"",
            "\"time_secs\":1.5",
            "\"histories\":2",
            "\"speedup\":2.0",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
        // Escaped content round-trips through the writer unmangled.
        assert!(doc.contains("tiny \\\"quoted\\\"\\n"));
        // Balanced braces/brackets (a cheap well-formedness check; CI runs
        // a real parser over the emitted file).
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn write_and_reread() {
        let dir = std::env::temp_dir();
        let path = dir.join("txdpor_bench_json_test.json");
        let path = path.to_str().unwrap();
        write_experiment_json(
            path,
            "fig14",
            &ExperimentOptions::default(),
            &[sample_measurement()],
            vec![],
        )
        .unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("\"experiment\":\"fig14\""));
        std::fs::remove_file(path).ok();
    }
}
