//! A counting global allocator used to report peak memory consumption of
//! the exploration algorithms (the "Mem." columns of the paper's tables).
//!
//! The paper reports JVM heap sizes; absolute numbers are not comparable
//! across substrates, so the harness reports the peak number of bytes
//! allocated through the Rust global allocator instead. The relevant claim
//! — memory stays polynomial and roughly flat while time explodes with the
//! number of sessions/transactions — is preserved.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A [`GlobalAlloc`] wrapper around the system allocator that tracks the
/// current and peak number of live bytes.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            let new = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(new, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

/// Resets the peak byte counter to the current live size.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Peak number of live bytes observed since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Current number of live bytes.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Formats a byte count as a human-readable string (MB with one decimal).
pub fn format_bytes(bytes: usize) -> String {
    format!("{:.1}MB", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_allocations() {
        reset_peak();
        let before = peak_bytes();
        let v: Vec<u8> = vec![0; 1 << 20];
        assert!(peak_bytes() >= before + (1 << 20));
        drop(v);
        assert!(current_bytes() <= peak_bytes());
    }

    #[test]
    fn formatting() {
        assert_eq!(format_bytes(1024 * 1024), "1.0MB");
        assert_eq!(format_bytes(0), "0.0MB");
    }
}
