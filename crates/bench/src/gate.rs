//! Row-diff logic of the bench-regression gate (`bench_gate` binary).
//!
//! The gate re-runs the deterministic rows of the committed
//! `BENCH_fig14.json` and compares the machine-independent exploration
//! counts (`histories`, `end_states`, `explore_calls`) plus the `levels`
//! spec label. The comparison is *set-based* and collected into one
//! readable report:
//!
//! * baseline rows missing from the re-run are failures;
//! * re-run rows absent from the baseline are reported once as **new**
//!   (non-fatal — adding a configuration must not abort the gate);
//! * malformed baseline rows (missing fields) are skipped with a notice
//!   instead of panicking at the first absent key;
//! * a fresh run may not time out more often than the baseline did on the
//!   gated sub-suite.

use crate::harness::{Algorithm, Measurement};
use crate::json::JsonValue;
use txdpor_apps::workload::MixedScenario;
use txdpor_history::{IsolationLevel, LevelSpec};

/// One gateable row of the committed baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineRow {
    /// Benchmark identifier (`tpcc-2`).
    pub benchmark: String,
    /// Algorithm label (`CC + SER`).
    pub algorithm: String,
    /// The `levels` spec label, absent in pre-mixed baselines.
    pub levels: Option<String>,
    /// Gated counts.
    pub histories: i64,
    /// Number of complete executions.
    pub end_states: i64,
    /// Number of explore calls.
    pub explore_calls: i64,
    /// Largest communication-graph component count of any decomposed
    /// history, absent in pre-decomposition baselines.
    pub components: Option<i64>,
    /// Transaction count of the largest component, absent in
    /// pre-decomposition baselines.
    pub largest_component: Option<i64>,
    /// Reordering candidates statically pruned, absent in
    /// pre-decomposition baselines.
    pub statically_pruned: Option<i64>,
    /// Whether the baseline run hit its timeout (counts not comparable).
    pub timed_out: bool,
}

/// Outcome of comparing a re-run against the baseline rows.
#[derive(Clone, Debug, Default)]
pub struct GateReport {
    /// Rows whose counts were compared.
    pub checked: usize,
    /// Human-readable failures (count mismatches, missing rows, timeout
    /// regressions).
    pub failures: Vec<String>,
    /// Re-run rows with no baseline counterpart — listed once, non-fatal.
    pub new_rows: Vec<String>,
    /// Non-fatal notices (malformed baseline rows, unknown labels,
    /// timed-out baselines skipped).
    pub notices: Vec<String>,
}

impl GateReport {
    /// Whether the gate passes.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the full report, sections ordered new → notices → failures
    /// so the verdict-relevant lines come last.
    pub fn render(&self, baseline_path: &str) -> String {
        let mut out = String::new();
        for row in &self.new_rows {
            out.push_str(&format!("NEW  {row} (not in baseline; not gated)\n"));
        }
        for notice in &self.notices {
            out.push_str(&format!("note {notice}\n"));
        }
        for failure in &self.failures {
            out.push_str(&format!("FAIL {failure}\n"));
        }
        out.push_str(&format!(
            "bench_gate: {} row(s) checked against {baseline_path}, {} new, {} failure(s)\n",
            self.checked,
            self.new_rows.len(),
            self.failures.len()
        ));
        out
    }
}

/// The committed algorithm labels mapped back to configurations. Labels
/// absent from this table (e.g. a differently-sized parallel run) are
/// reported as notices rather than failing the gate.
pub fn algorithm_for_label(label: &str) -> Option<Algorithm> {
    let cc = IsolationLevel::CausalConsistency;
    let mut table: Vec<Algorithm> = Algorithm::FIG14.to_vec();
    table.push(Algorithm::ExploreCeNoMemo(cc));
    table.push(Algorithm::ExploreCeNoOptimality(cc));
    for workers in 1..=64 {
        table.push(Algorithm::ExploreCeParallel(cc, workers));
    }
    table.extend(
        MixedScenario::ALL
            .into_iter()
            .map(Algorithm::ExploreCeMixed),
    );
    table.into_iter().find(|a| a.label() == label)
}

/// Extracts the gateable rows of a parsed baseline document, keeping only
/// benchmarks accepted by `in_suite`. Malformed rows become notices
/// instead of panics.
pub fn baseline_rows<F: Fn(&str) -> bool>(
    doc: &JsonValue,
    in_suite: F,
) -> (Vec<BaselineRow>, Vec<String>) {
    let mut rows = Vec::new();
    let mut notices = Vec::new();
    for (i, r) in doc
        .get("rows")
        .and_then(JsonValue::as_array)
        .unwrap_or(&[])
        .iter()
        .enumerate()
    {
        let benchmark = r.get("benchmark").and_then(JsonValue::as_str);
        let algorithm = r.get("algorithm").and_then(JsonValue::as_str);
        let (Some(benchmark), Some(algorithm)) = (benchmark, algorithm) else {
            notices.push(format!(
                "baseline row #{i} lacks benchmark/algorithm; skipped"
            ));
            continue;
        };
        if !in_suite(benchmark) {
            continue;
        }
        let ints = ["histories", "end_states", "explore_calls"]
            .map(|k| r.get(k).and_then(JsonValue::as_i64));
        let timed_out = r.get("timed_out").and_then(JsonValue::as_bool);
        let ([Some(histories), Some(end_states), Some(explore_calls)], Some(timed_out)) =
            (ints, timed_out)
        else {
            notices.push(format!(
                "baseline row {benchmark}/{algorithm} lacks a gated field; skipped"
            ));
            continue;
        };
        rows.push(BaselineRow {
            benchmark: benchmark.to_owned(),
            algorithm: algorithm.to_owned(),
            levels: r
                .get("levels")
                .and_then(JsonValue::as_str)
                .map(str::to_owned),
            histories,
            end_states,
            explore_calls,
            // Decomposition counters are deterministic too, but absent in
            // baselines written before the static-analysis layer existed:
            // gated only when present.
            components: r.get("components").and_then(JsonValue::as_i64),
            largest_component: r.get("largest_component").and_then(JsonValue::as_i64),
            statically_pruned: r.get("statically_pruned").and_then(JsonValue::as_i64),
            timed_out,
        });
    }
    (rows, notices)
}

/// Compares a fresh run against the baseline rows (both restricted to the
/// gated sub-suite) into one report.
pub fn compare(
    baseline: &[BaselineRow],
    measured: &[Measurement],
    timeout_secs: u64,
) -> GateReport {
    let mut report = GateReport::default();
    let find = |bench: &str, label: &str| -> Option<&Measurement> {
        measured
            .iter()
            .find(|m| m.benchmark == bench && m.algorithm == label)
    };

    for row in baseline {
        if row.timed_out {
            // A timed-out run's counts depend on where the clock cut it
            // off; only the timeout-regression guard below sees it.
            continue;
        }
        let Some(m) = find(&row.benchmark, &row.algorithm) else {
            if algorithm_for_label(&row.algorithm).is_some() {
                report.failures.push(format!(
                    "{}/{}: row missing from the re-run",
                    row.benchmark, row.algorithm
                ));
            } else {
                report.notices.push(format!(
                    "{}/{}: unknown algorithm label; skipped",
                    row.benchmark, row.algorithm
                ));
            }
            continue;
        };
        if m.timed_out {
            report.failures.push(format!(
                "{}/{}: timed out after {timeout_secs}s while the baseline did not",
                row.benchmark, row.algorithm
            ));
            continue;
        }
        report.checked += 1;
        if let Some(levels) = &row.levels {
            // A baseline written by a build that knew more (or different)
            // isolation levels may carry a spec label this build cannot
            // even parse; that is a vocabulary gap, not a count regression.
            if levels.parse::<LevelSpec>().is_err() {
                report.notices.push(format!(
                    "{}/{}: baseline levels {:?} name an unknown level; not compared",
                    row.benchmark, row.algorithm, levels
                ));
            } else if *levels != m.levels {
                report.failures.push(format!(
                    "{}/{}: levels = {:?}, baseline has {:?}",
                    row.benchmark, row.algorithm, m.levels, levels
                ));
            }
        }
        for (what, want, got) in [
            ("histories", row.histories, m.histories as i64),
            ("end_states", row.end_states, m.end_states as i64),
            ("explore_calls", row.explore_calls, m.explore_calls as i64),
        ] {
            if want != got {
                report.failures.push(format!(
                    "{}/{}: {what} = {got}, baseline has {want}",
                    row.benchmark, row.algorithm
                ));
            }
        }
        for (what, want, got) in [
            ("components", row.components, m.components as i64),
            (
                "largest_component",
                row.largest_component,
                m.largest_component as i64,
            ),
            (
                "statically_pruned",
                row.statically_pruned,
                m.statically_pruned as i64,
            ),
        ] {
            if let Some(want) = want {
                if want != got {
                    report.failures.push(format!(
                        "{}/{}: {what} = {got}, baseline has {want}",
                        row.benchmark, row.algorithm
                    ));
                }
            }
        }
    }

    // Rows the re-run produced that the baseline does not know: new
    // configurations (e.g. freshly added mixed scenarios) — non-fatal.
    for m in measured {
        let known = baseline
            .iter()
            .any(|row| row.benchmark == m.benchmark && row.algorithm == m.algorithm);
        if !known {
            report
                .new_rows
                .push(format!("{}/{}", m.benchmark, m.algorithm));
        }
    }

    // Catastrophic-slowdown guard: the fresh run must not time out more
    // often than the baseline did on the gated sub-suite. Rows without a
    // baseline counterpart are excluded — a new (ungated) configuration
    // timing out must not abort the gate either.
    let baseline_timeouts = baseline.iter().filter(|r| r.timed_out).count();
    let fresh_timeouts = measured
        .iter()
        .filter(|m| {
            m.timed_out
                && baseline
                    .iter()
                    .any(|row| row.benchmark == m.benchmark && row.algorithm == m.algorithm)
        })
        .count();
    if fresh_timeouts > baseline_timeouts {
        report.failures.push(format!(
            "timeouts: fresh run hit {fresh_timeouts} timeout(s), baseline has \
             {baseline_timeouts} on this sub-suite"
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use txdpor_history::EngineStats;

    fn row(benchmark: &str, algorithm: &str, counts: (i64, i64, i64)) -> BaselineRow {
        BaselineRow {
            benchmark: benchmark.into(),
            algorithm: algorithm.into(),
            levels: Some("CC".into()),
            histories: counts.0,
            end_states: counts.1,
            explore_calls: counts.2,
            components: None,
            largest_component: None,
            statically_pruned: None,
            timed_out: false,
        }
    }

    fn measurement(benchmark: &str, algorithm: &str, counts: (u64, u64, u64)) -> Measurement {
        Measurement {
            benchmark: benchmark.into(),
            algorithm: algorithm.into(),
            levels: "CC".into(),
            histories: counts.0,
            end_states: counts.1,
            explore_calls: counts.2,
            time: Duration::from_millis(1),
            peak_alloc: 0,
            history_clones: 0,
            history_bytes_copied: 0,
            engine: EngineStats::default(),
            workers: 1,
            steals: 0,
            components: 0,
            largest_component: 0,
            statically_pruned: 0,
            first_rejection: None,
            timed_out: false,
        }
    }

    #[test]
    fn matching_rows_pass() {
        let baseline = [row("courseware-1", "CC", (30, 30, 401))];
        let measured = [measurement("courseware-1", "CC", (30, 30, 401))];
        let report = compare(&baseline, &measured, 60);
        assert!(report.ok(), "{report:?}");
        assert_eq!(report.checked, 1);
        assert!(report.new_rows.is_empty());
    }

    #[test]
    fn count_mismatches_are_collected_not_fatal_per_row() {
        let baseline = [
            row("courseware-1", "CC", (30, 30, 401)),
            row("courseware-2", "CC", (10, 10, 100)),
        ];
        let measured = [
            measurement("courseware-1", "CC", (31, 29, 401)),
            measurement("courseware-2", "CC", (10, 10, 100)),
        ];
        let report = compare(&baseline, &measured, 60);
        assert!(!report.ok());
        // Both diverging counts of the first row are reported; the second
        // row still gets checked.
        assert_eq!(report.failures.len(), 2, "{:?}", report.failures);
        assert_eq!(report.checked, 2);
    }

    #[test]
    fn rows_missing_from_baseline_are_new_and_nonfatal() {
        // The re-run produced a freshly added mixed row the baseline does
        // not know: reported once as NEW, gate still green.
        let baseline = [row("tpcc-1", "CC", (5, 5, 50))];
        let measured = [
            measurement("tpcc-1", "CC", (5, 5, 50)),
            measurement("tpcc-1", "CC + mix:tpcc:pay-ser", (4, 5, 60)),
        ];
        let report = compare(&baseline, &measured, 60);
        assert!(report.ok(), "{:?}", report.failures);
        assert_eq!(report.new_rows, vec!["tpcc-1/CC + mix:tpcc:pay-ser"]);
        let rendered = report.render("BENCH_fig14.json");
        assert!(rendered.contains("NEW  tpcc-1/CC + mix:tpcc:pay-ser"));
        assert!(rendered.contains("0 failure(s)"));
    }

    #[test]
    fn baseline_rows_missing_from_rerun_fail_once_each() {
        let baseline = [
            row("courseware-1", "CC", (30, 30, 401)),
            row("courseware-1", "CC + SER", (30, 30, 401)),
        ];
        let measured = [measurement("courseware-1", "CC", (30, 30, 401))];
        let report = compare(&baseline, &measured, 60);
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("missing from the re-run"));
    }

    #[test]
    fn unknown_labels_are_notices() {
        let baseline = [row("courseware-1", "CC par128", (30, 30, 401))];
        let report = compare(&baseline, &[], 60);
        assert!(report.ok());
        assert_eq!(report.notices.len(), 1);
        assert!(report.notices[0].contains("unknown algorithm label"));
    }

    #[test]
    fn levels_field_is_compared_when_present() {
        let baseline = [row("courseware-1", "CC", (30, 30, 401))];
        let mut m = measurement("courseware-1", "CC", (30, 30, 401));
        m.levels = "CC[s0.t0=SER]".into();
        let report = compare(&baseline, &[m], 60);
        assert!(!report.ok());
        assert!(report.failures[0].contains("levels"));

        // Pre-mixed baselines without the field stay comparable.
        let mut old = row("courseware-1", "CC", (30, 30, 401));
        old.levels = None;
        let report = compare(
            &[old],
            &[measurement("courseware-1", "CC", (30, 30, 401))],
            60,
        );
        assert!(report.ok());
    }

    #[test]
    fn decomposition_counters_are_gated_when_present() {
        // Baselines written before the static-analysis layer lack the
        // counters: rows stay comparable on the classic triple.
        let baseline = [row("courseware-1", "CC", (30, 30, 401))];
        let mut m = measurement("courseware-1", "CC", (30, 30, 401));
        m.components = 4;
        m.largest_component = 7;
        m.statically_pruned = 123;
        let report = compare(&baseline, &[m.clone()], 60);
        assert!(report.ok(), "{:?}", report.failures);

        // Once a baseline records them, all three are count-stable and
        // any divergence fails the gate.
        let mut new = row("courseware-1", "CC", (30, 30, 401));
        new.components = Some(4);
        new.largest_component = Some(7);
        new.statically_pruned = Some(122);
        let report = compare(&[new], &[m], 60);
        assert!(!report.ok());
        assert_eq!(report.failures.len(), 1, "{:?}", report.failures);
        assert!(report.failures[0].contains("statically_pruned"));
    }

    #[test]
    fn unknown_levels_in_baseline_are_notices_not_mismatches() {
        // A baseline written by a build with a richer level vocabulary
        // (e.g. a level since renamed) must not fail the count gate.
        let mut future = row("courseware-1", "CC", (30, 30, 401));
        future.levels = Some("PSI".into());
        let report = compare(
            &[future],
            &[measurement("courseware-1", "CC", (30, 30, 401))],
            60,
        );
        assert!(report.ok(), "{:?}", report.failures);
        assert_eq!(report.checked, 1, "counts are still gated");
        assert_eq!(report.notices.len(), 1, "{:?}", report.notices);
        assert!(report.notices[0].contains("unknown level"));

        // Mixed-spec labels with a known vocabulary still mismatch-fail.
        let mut mixed = row("courseware-1", "CC", (30, 30, 401));
        mixed.levels = Some("CC[s0.t1=PC]".into());
        let report = compare(
            &[mixed],
            &[measurement("courseware-1", "CC", (30, 30, 401))],
            60,
        );
        assert!(!report.ok());
        assert!(report.failures[0].contains("levels"));
    }

    #[test]
    fn timeout_regression_fails() {
        let baseline = [row("tpcc-1", "CC", (5, 5, 50))];
        let mut m = measurement("tpcc-1", "CC", (0, 0, 10));
        m.timed_out = true;
        let report = compare(&baseline, &[m], 60);
        assert!(!report.ok());
        assert!(report.failures.iter().any(|f| f.contains("timed out")));
        assert!(report.failures.iter().any(|f| f.contains("timeouts:")));
    }

    #[test]
    fn timed_out_new_rows_stay_nonfatal() {
        // A freshly added configuration that times out has no baseline
        // counterpart: listed as NEW, excluded from the timeout guard.
        let baseline = [row("tpcc-1", "CC", (5, 5, 50))];
        let mut new_tl = measurement("tpcc-1", "RC + mix:tpcc:reads-rc", (0, 0, 10));
        new_tl.timed_out = true;
        let measured = [measurement("tpcc-1", "CC", (5, 5, 50)), new_tl];
        let report = compare(&baseline, &measured, 60);
        assert!(report.ok(), "{:?}", report.failures);
        assert_eq!(report.new_rows.len(), 1);
    }

    #[test]
    fn timed_out_baselines_are_not_count_compared() {
        let mut tl = row("tpcc-1", "true + CC", (5, 5, 50));
        tl.timed_out = true;
        let mut m = measurement("tpcc-1", "true + CC", (7, 8, 99));
        m.timed_out = true;
        let report = compare(&[tl], &[m], 60);
        assert!(report.ok(), "{:?}", report.failures);
        assert_eq!(report.checked, 0);
    }

    #[test]
    fn malformed_baseline_rows_become_notices() {
        let doc = JsonValue::parse(
            r#"{"rows":[
                {"benchmark":"courseware-1","algorithm":"CC","histories":1,
                 "end_states":1,"explore_calls":1,"timed_out":false},
                {"benchmark":"courseware-2","algorithm":"CC","end_states":1,
                 "explore_calls":1,"timed_out":false},
                {"algorithm":"CC"},
                {"benchmark":"tpcc-1","algorithm":"CC","histories":1,
                 "end_states":1,"explore_calls":1,"timed_out":false}
            ]}"#,
        )
        .unwrap();
        let (rows, notices) = baseline_rows(&doc, |b| b.starts_with("courseware-"));
        assert_eq!(rows.len(), 1, "{rows:?}");
        assert_eq!(notices.len(), 2, "{notices:?}");
        assert!(
            notices[0].contains("lacks a gated field")
                || notices[1].contains("lacks a gated field")
        );
    }

    #[test]
    fn mixed_labels_round_trip_through_the_algorithm_table() {
        for sc in MixedScenario::ALL {
            let algo = Algorithm::ExploreCeMixed(sc);
            assert_eq!(algorithm_for_label(&algo.label()), Some(algo));
        }
        assert_eq!(algorithm_for_label("CC + mix:unknown"), None);
    }
}
