//! Criterion benchmark for ablation A1: the cost of `explore-ce(CC)` with
//! and without the `Optimality` restriction on swaps, and of the `DFS(CC)`
//! baseline, on a small courseware client program.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use txdpor_apps::workload::{client_program, App, WorkloadConfig};
use txdpor_bench::{run, Algorithm};
use txdpor_history::IsolationLevel;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_optimality");
    group.sample_size(10);
    let program = client_program(&WorkloadConfig {
        app: App::ShoppingCart,
        sessions: 2,
        transactions_per_session: 2,
        seed: 2,
    });
    let algorithms = [
        Algorithm::ExploreCe(IsolationLevel::CausalConsistency),
        Algorithm::ExploreCeNoOptimality(IsolationLevel::CausalConsistency),
        Algorithm::Dfs(IsolationLevel::CausalConsistency),
    ];
    for algorithm in algorithms {
        group.bench_with_input(
            BenchmarkId::from_parameter(algorithm.label()),
            &algorithm,
            |b, algorithm| {
                b.iter(|| {
                    black_box(run(
                        "shoppingCart-2",
                        black_box(&program),
                        *algorithm,
                        Duration::from_secs(60),
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
