//! Criterion benchmark for experiment E2 (Fig. 15a): exploration cost of
//! `explore-ce(CC)` as the number of sessions grows (scaled-down sizes; the
//! `fig15a` binary produces the full curve).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use txdpor_apps::workload::{client_program, App, WorkloadConfig};
use txdpor_explore::{explore, ExploreConfig};
use txdpor_history::IsolationLevel;

fn bench_sessions(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15a_sessions");
    group.sample_size(10);
    for sessions in 1..=3usize {
        let program = client_program(&WorkloadConfig {
            app: App::Wikipedia,
            sessions,
            transactions_per_session: 2,
            seed: 1,
        });
        group.bench_with_input(BenchmarkId::from_parameter(sessions), &program, |b, p| {
            b.iter(|| {
                let report = explore(
                    black_box(p),
                    ExploreConfig::explore_ce(IsolationLevel::CausalConsistency),
                )
                .expect("exploration succeeds");
                black_box(report.outputs)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sessions);
criterion_main!(benches);
