//! Criterion benchmark: end-to-end exploration cost of `explore-ce(CC)` on
//! small client programs of every application (the building block of all
//! figure-level experiments).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use txdpor_apps::workload::{client_program, App, WorkloadConfig};
use txdpor_explore::{explore, ExploreConfig};
use txdpor_history::IsolationLevel;

fn bench_explore(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore_ce_cc");
    group.sample_size(10);
    for app in App::ALL {
        let program = client_program(&WorkloadConfig {
            app,
            sessions: 2,
            transactions_per_session: 2,
            seed: 1,
        });
        group.bench_with_input(BenchmarkId::from_parameter(app.name()), &program, |b, p| {
            b.iter(|| {
                let report = explore(
                    black_box(p),
                    ExploreConfig::explore_ce(IsolationLevel::CausalConsistency),
                )
                .expect("exploration succeeds");
                black_box(report.outputs)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_explore);
criterion_main!(benches);
