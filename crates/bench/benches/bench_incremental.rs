//! Criterion benchmark: incremental vs from-scratch consistency checking
//! on a tpcc-shaped history.
//!
//! Reproduces the `ValidWrites` inner loop — toggle one wr edge, decide,
//! untoggle — three ways: through a stateless from-scratch check per call,
//! through an engine whose index syncs incrementally from the history's
//! delta log (memoisation disabled, so every call exercises sync + decide),
//! and through a fully memoised engine (the production configuration).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use txdpor_apps::workload::{client_program, App, WorkloadConfig};
use txdpor_history::{engine_for_with, History, IsolationLevel, TxId};
use txdpor_program::execute_serial;

/// A committed tpcc history plus one external read and two alternative
/// writers for it, so every iteration changes the history (no trivial
/// repeat-checks).
fn tpcc_toggle() -> (History, txdpor_history::EventId, Vec<TxId>) {
    let program = client_program(&WorkloadConfig {
        app: App::Tpcc,
        sessions: 3,
        transactions_per_session: 3,
        seed: 1,
    });
    let (history, _) = execute_serial(&program).expect("serial execution succeeds");
    let (_, read, var, _) = history
        .reads_from()
        .into_iter()
        .find(|(_, _, var, _)| history.committed_writers_of(*var).len() >= 2)
        .expect("tpcc has a variable with several committed writers");
    let writers = history.committed_writers_of(var);
    (history, read, writers)
}

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_check");
    group.sample_size(30);
    let level = IsolationLevel::CausalConsistency;
    let (mut history, read, writers) = tpcc_toggle();

    group.bench_function("full_rebuild_per_check", |b| {
        let mut k = 0usize;
        b.iter(|| {
            history.unset_wr(read);
            history.set_wr(read, writers[k % writers.len()]);
            k += 1;
            black_box(level.satisfies(black_box(&history)))
        });
    });

    group.bench_function("incremental_no_memo", |b| {
        let mut engine = engine_for_with(level, false);
        engine.check(&history); // initial rebuild outside the loop
        let mut k = 0usize;
        b.iter(|| {
            history.unset_wr(read);
            history.set_wr(read, writers[k % writers.len()]);
            k += 1;
            black_box(engine.check(black_box(&history)))
        });
    });

    group.bench_function("incremental_memoized", |b| {
        let mut engine = engine_for_with(level, true);
        engine.check(&history);
        let mut k = 0usize;
        b.iter(|| {
            history.unset_wr(read);
            history.set_wr(read, writers[k % writers.len()]);
            k += 1;
            black_box(engine.check(black_box(&history)))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
