//! Criterion benchmark for experiment E1 (Fig. 14): one measurement per
//! algorithm on a representative client program, using a scaled-down
//! program size so the statistical runs finish quickly. The `fig14` binary
//! produces the full cactus data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use txdpor_apps::workload::{client_program, App, WorkloadConfig};
use txdpor_bench::{run, Algorithm};

fn bench_fig14(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_algorithms");
    group.sample_size(10);
    let program = client_program(&WorkloadConfig {
        app: App::Courseware,
        sessions: 2,
        transactions_per_session: 2,
        seed: 1,
    });
    for algorithm in Algorithm::FIG14 {
        group.bench_with_input(
            BenchmarkId::from_parameter(algorithm.label()),
            &algorithm,
            |b, algorithm| {
                b.iter(|| {
                    black_box(run(
                        "courseware-1",
                        black_box(&program),
                        *algorithm,
                        Duration::from_secs(60),
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig14);
criterion_main!(benches);
