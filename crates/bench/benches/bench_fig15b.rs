//! Criterion benchmark for experiment E3 (Fig. 15b): exploration cost of
//! `explore-ce(CC)` as the number of transactions per session grows
//! (scaled-down sizes; the `fig15b` binary produces the full curve).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use txdpor_apps::workload::{client_program, App, WorkloadConfig};
use txdpor_explore::{explore, ExploreConfig};
use txdpor_history::IsolationLevel;

fn bench_transactions(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15b_transactions");
    group.sample_size(10);
    for transactions in 1..=3usize {
        let program = client_program(&WorkloadConfig {
            app: App::Wikipedia,
            sessions: 2,
            transactions_per_session: transactions,
            seed: 1,
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(transactions),
            &program,
            |b, p| {
                b.iter(|| {
                    let report = explore(
                        black_box(p),
                        ExploreConfig::explore_ce(IsolationLevel::CausalConsistency),
                    )
                    .expect("exploration succeeds");
                    black_box(report.outputs)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_transactions);
criterion_main!(benches);
