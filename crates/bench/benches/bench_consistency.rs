//! Criterion benchmark A2: cost of the consistency checkers (the inner
//! loop of `ValidWrites` and `Optimality`) per isolation level, on the
//! histories produced by a serial execution of a benchmark client program.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use txdpor_apps::workload::{client_program, App, WorkloadConfig};
use txdpor_history::IsolationLevel;
use txdpor_program::execute_serial;

fn bench_consistency(c: &mut Criterion) {
    let mut group = c.benchmark_group("consistency_check");
    group.sample_size(20);
    let program = client_program(&WorkloadConfig {
        app: App::Tpcc,
        sessions: 3,
        transactions_per_session: 3,
        seed: 1,
    });
    let (history, _) = execute_serial(&program).expect("serial execution succeeds");
    for level in [
        IsolationLevel::ReadCommitted,
        IsolationLevel::ReadAtomic,
        IsolationLevel::CausalConsistency,
        IsolationLevel::SnapshotIsolation,
        IsolationLevel::Serializability,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(level.short_name()),
            &level,
            |b, level| b.iter(|| black_box(level.satisfies(black_box(&history)))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_consistency);
criterion_main!(benches);
