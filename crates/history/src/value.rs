//! Values stored in the database and interned global-variable identifiers.
//!
//! The paper abstracts the database state as a valuation of a set of global
//! variables (§2.1). In order to model the SQL-style benchmarks of §7.2,
//! where a table is represented by a "set" variable holding the ids of its
//! rows, values are either integers or finite sets of integers.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A database value: an integer or a finite set of integer ids.
///
/// Sets are used to model SQL tables as in §7.2 of the paper: a table is a
/// "set" global variable whose content is the set of primary keys of the
/// rows present in the table.
///
/// # Examples
///
/// ```
/// use txdpor_history::Value;
/// let v = Value::Int(3);
/// assert_eq!(v.as_int(), Some(3));
/// assert!(Value::Int(1).truthy());
/// assert!(!Value::empty_set().truthy());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A 64-bit signed integer.
    Int(i64),
    /// A finite set of integer identifiers.
    Set(BTreeSet<i64>),
}

impl Value {
    /// The empty set value.
    pub fn empty_set() -> Self {
        Value::Set(BTreeSet::new())
    }

    /// Builds a set value from an iterator of ids.
    pub fn set_of<I: IntoIterator<Item = i64>>(ids: I) -> Self {
        Value::Set(ids.into_iter().collect())
    }

    /// Returns the integer payload, if this value is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Set(_) => None,
        }
    }

    /// Returns a reference to the set payload, if this value is a set.
    pub fn as_set(&self) -> Option<&BTreeSet<i64>> {
        match self {
            Value::Int(_) => None,
            Value::Set(s) => Some(s),
        }
    }

    /// Interprets the value as a Boolean: non-zero integers and non-empty
    /// sets are true.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Int(i) => *i != 0,
            Value::Set(s) => !s.is_empty(),
        }
    }

    /// Builds a Boolean value (1 for true, 0 for false).
    pub fn bool(b: bool) -> Self {
        Value::Int(if b { 1 } else { 0 })
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::Int(0)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::bool(b)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Set(s) => {
                write!(f, "{{")?;
                for (k, id) in s.iter().enumerate() {
                    if k > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{id}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// An interned global-variable identifier.
///
/// Global variables correspond to keys of a key–value store or to rows/fields
/// of a relational table (§2.1, footnote 2). Interning keeps histories cheap
/// to clone and compare; the mapping back to names lives in a [`VarTable`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Interning table mapping global-variable names to [`Var`] identifiers.
///
/// # Examples
///
/// ```
/// use txdpor_history::VarTable;
/// let mut vars = VarTable::new();
/// let x = vars.intern("x");
/// assert_eq!(vars.intern("x"), x);
/// assert_eq!(vars.name(x), "x");
/// ```
#[derive(Clone, Debug, Default)]
pub struct VarTable {
    names: Vec<String>,
    index: HashMap<String, Var>,
}

impl VarTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its identifier (allocating one if new).
    pub fn intern(&mut self, name: &str) -> Var {
        if let Some(v) = self.index.get(name) {
            return *v;
        }
        let v = Var(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), v);
        v
    }

    /// Looks up the identifier of an already-interned name.
    pub fn get(&self, name: &str) -> Option<Var> {
        self.index.get(name).copied()
    }

    /// Returns the name of an interned variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` was not allocated by this table.
    pub fn name(&self, var: Var) -> &str {
        &self.names[var.0 as usize]
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no variable has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all interned variables in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Var(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_int_roundtrip() {
        let v = Value::Int(42);
        assert_eq!(v.as_int(), Some(42));
        assert_eq!(v.as_set(), None);
        assert!(v.truthy());
        assert!(!Value::Int(0).truthy());
    }

    #[test]
    fn value_set_operations() {
        let v = Value::set_of([1, 2, 3]);
        assert_eq!(v.as_set().unwrap().len(), 3);
        assert!(v.truthy());
        assert!(!Value::empty_set().truthy());
        assert_eq!(v.as_int(), None);
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::set_of([2, 1]).to_string(), "{1,2}");
        assert_eq!(Value::empty_set().to_string(), "{}");
    }

    #[test]
    fn value_default_and_from() {
        assert_eq!(Value::default(), Value::Int(0));
        assert_eq!(Value::from(5), Value::Int(5));
        assert_eq!(Value::from(true), Value::Int(1));
        assert_eq!(Value::from(false), Value::Int(0));
    }

    #[test]
    fn var_table_interning() {
        let mut t = VarTable::new();
        assert!(t.is_empty());
        let x = t.intern("x");
        let y = t.intern("y");
        assert_ne!(x, y);
        assert_eq!(t.intern("x"), x);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(y), "y");
        assert_eq!(t.get("z"), None);
        assert_eq!(t.get("y"), Some(y));
        let all: Vec<_> = t.iter().map(|(_, n)| n.to_owned()).collect();
        assert_eq!(all, vec!["x", "y"]);
    }
}
