//! Histories, axiomatic isolation levels and consistency checking for
//! transactional programs.
//!
//! This crate implements the foundational layer of the PLDI 2023 paper
//! *"Dynamic Partial Order Reduction for Checking Correctness against
//! Transaction Isolation Levels"* (Bouajjani, Enea, Román-Calvo):
//!
//! * [`History`]: transaction logs, session order `so` and write-read
//!   relation `wr` (§2.2.1);
//! * [`IsolationLevel`] and the axiom schema of Biswas & Enea (§2.2.2,
//!   Fig. 2), including the structural properties *prefix closure* and
//!   *causal extensibility* (§3);
//! * efficient consistency checkers for Read Committed, Read Atomic,
//!   Causal Consistency, Snapshot Isolation and Serializability
//!   ([`check`]), cross-validated against a slow axiom-level oracle
//!   ([`axioms`]).
//!
//! # Example
//!
//! Build the Causal Consistency violation of Fig. 3 by hand and check it:
//!
//! ```
//! use txdpor_history::{
//!     Event, EventId, EventKind, History, IsolationLevel, SessionId, TxId, Value, Var,
//! };
//!
//! let (x, y) = (Var(0), Var(1));
//! let mut h = History::new([]);
//! let mut id = 0u32;
//! let mut fresh = || { id += 1; EventId(id) };
//!
//! // t1 writes x=1.
//! h.begin_transaction(SessionId(0), TxId(1), 0, Event::new(fresh(), EventKind::Begin));
//! h.append_event(SessionId(0), Event::new(fresh(), EventKind::Write(x, Value::Int(1))));
//! h.append_event(SessionId(0), Event::new(fresh(), EventKind::Commit));
//! // t2 reads x from t1 and overwrites it.
//! h.begin_transaction(SessionId(1), TxId(2), 0, Event::new(fresh(), EventKind::Begin));
//! let r = fresh();
//! h.append_event(SessionId(1), Event::new(r, EventKind::Read(x)));
//! h.append_event(SessionId(1), Event::new(fresh(), EventKind::Write(x, Value::Int(2))));
//! h.append_event(SessionId(1), Event::new(fresh(), EventKind::Commit));
//! h.set_wr(r, TxId(1));
//! // t4 reads x from t2 and writes y=1.
//! h.begin_transaction(SessionId(2), TxId(4), 0, Event::new(fresh(), EventKind::Begin));
//! let r = fresh();
//! h.append_event(SessionId(2), Event::new(r, EventKind::Read(x)));
//! h.append_event(SessionId(2), Event::new(fresh(), EventKind::Write(y, Value::Int(1))));
//! h.append_event(SessionId(2), Event::new(fresh(), EventKind::Commit));
//! h.set_wr(r, TxId(2));
//! // t3 reads x from t1 (stale!) and y from t4.
//! h.begin_transaction(SessionId(3), TxId(3), 0, Event::new(fresh(), EventKind::Begin));
//! let rx = fresh();
//! h.append_event(SessionId(3), Event::new(rx, EventKind::Read(x)));
//! let ry = fresh();
//! h.append_event(SessionId(3), Event::new(ry, EventKind::Read(y)));
//! h.append_event(SessionId(3), Event::new(fresh(), EventKind::Commit));
//! h.set_wr(rx, TxId(1));
//! h.set_wr(ry, TxId(4));
//!
//! assert!(IsolationLevel::ReadAtomic.satisfies(&h));
//! assert!(!IsolationLevel::CausalConsistency.satisfies(&h));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arena;
pub mod axioms;
pub mod check;
pub mod event;
pub mod history;
pub mod isolation;
pub mod relations;
pub mod stats;
pub mod testkit;
pub mod transaction;
pub mod value;

pub use arena::TxSet;
pub use check::{
    engine_for, engine_for_spec, engine_for_spec_with, engine_for_with, satisfies_spec,
    AxiomInstance, ConsistencyChecker, EdgeReason, EngineStats, MixedEngine, SharedMemo, Verdict,
    Violation, ViolationEdge, Witness,
};
pub use event::{Event, EventId, EventKind};
pub use history::{
    DeltaEventInfo, EventFingerprint, History, HistoryDelta, HistoryFingerprint, HistoryMark,
    WrTrial, WriterRef, DELTA_LOG_CAPACITY,
};
pub use isolation::{IsolationLevel, LevelSpec, ParseLevelError, ParseSpecError};
pub use relations::{BitMatrix, Digraph};
pub use stats::{clone_stats, reset_clone_stats};
pub use transaction::{SessionId, TransactionLog, TxId, TxStatus};
pub use value::{Value, Var, VarTable};
