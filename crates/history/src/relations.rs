//! Small directed-graph utilities used by the consistency checkers.

use std::collections::VecDeque;

/// A dense boolean matrix with word-packed rows, used for adjacency and
/// reachability over transaction graphs.
///
/// Rows are stored as consecutive `u64` words, so a whole-row union (the
/// inner step of transitive closure) touches `⌈n/64⌉` words instead of `n`
/// booleans, and a membership test is a single shift-and-mask.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl Clone for BitMatrix {
    fn clone(&self) -> Self {
        BitMatrix {
            n: self.n,
            words_per_row: self.words_per_row,
            bits: self.bits.clone(),
        }
    }

    // `clone_from` reuses the destination's backing allocation: engines
    // clone one scratch matrix into another on every check, so the default
    // `*self = source.clone()` would allocate on the hottest path.
    fn clone_from(&mut self, source: &Self) {
        self.n = source.n;
        self.words_per_row = source.words_per_row;
        self.bits.clone_from(&source.bits);
    }
}

impl BitMatrix {
    /// Creates an `n × n` zero matrix.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        BitMatrix {
            n,
            words_per_row,
            bits: vec![0; n * words_per_row],
        }
    }

    /// Number of rows (and columns).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Resizes to `n × n` and clears every bit. Keeps the backing allocation
    /// when it is already large enough, so engines can reuse one matrix as a
    /// scratch buffer across histories.
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.words_per_row = n.div_ceil(64);
        let words = n * self.words_per_row;
        self.bits.clear();
        self.bits.resize(words, 0);
    }

    /// Grows the matrix to `n × n`, preserving every existing bit (new rows
    /// and columns start clear). Keeps the row stride when possible so the
    /// incremental engines can add one vertex in O(row) instead of
    /// rebuilding the matrix.
    pub fn grow(&mut self, n: usize) {
        assert!(n >= self.n, "grow cannot shrink the matrix");
        let new_words_per_row = n.div_ceil(64).max(self.words_per_row);
        if new_words_per_row == self.words_per_row {
            self.bits.resize(n * self.words_per_row, 0);
        } else {
            // Stride change: re-home the rows back to front so the copy
            // never overlaps unprocessed data.
            let old_wpr = self.words_per_row;
            self.bits.resize(n * new_words_per_row, 0);
            for i in (0..self.n).rev() {
                for w in (0..old_wpr).rev() {
                    self.bits[i * new_words_per_row + w] = self.bits[i * old_wpr + w];
                }
                for w in old_wpr..new_words_per_row {
                    self.bits[i * new_words_per_row + w] = 0;
                }
            }
            self.words_per_row = new_words_per_row;
        }
        self.n = n;
    }

    /// Shrinks the matrix to `n × n`, clearing the dropped rows and columns
    /// so a later [`grow`](BitMatrix::grow) sees zeros. The row stride is
    /// kept, making a shrink-by-one O(n) for the incremental engines.
    pub fn shrink(&mut self, n: usize) {
        assert!(n <= self.n, "shrink cannot grow the matrix");
        let wpr = self.words_per_row;
        // Zero the dropped rows.
        for w in &mut self.bits[n * wpr..self.n * wpr] {
            *w = 0;
        }
        // Clear the dropped columns in the surviving rows.
        let full_words = n / 64;
        let mask = if n % 64 == 0 {
            0
        } else {
            (1u64 << (n % 64)) - 1
        };
        for i in 0..n {
            let row = i * wpr;
            if n % 64 != 0 {
                self.bits[row + full_words] &= mask;
            }
            for w in &mut self.bits[row + full_words + (n % 64 != 0) as usize..row + wpr] {
                *w = 0;
            }
        }
        self.n = n;
    }

    /// Whether bit `(i, j)` is set.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn get(&self, i: usize, j: usize) -> bool {
        assert!(i < self.n && j < self.n, "bit index out of range");
        self.bits[i * self.words_per_row + j / 64] >> (j % 64) & 1 == 1
    }

    /// Clears bit `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn clear_bit(&mut self, i: usize, j: usize) {
        assert!(i < self.n && j < self.n, "bit index out of range");
        self.bits[i * self.words_per_row + j / 64] &= !(1 << (j % 64));
    }

    /// Number of words per row (the stride of [`BitMatrix::row`]).
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Copies `words` into row `i` (extra row words beyond the slice are
    /// cleared) — the restore half of the incremental engines'
    /// save-dirty-rows protocol.
    ///
    /// # Panics
    ///
    /// Panics if the slice is longer than a row.
    pub fn restore_row(&mut self, i: usize, words: &[u64]) {
        let wpr = self.words_per_row;
        assert!(words.len() <= wpr, "saved row wider than the matrix");
        let row = &mut self.bits[i * wpr..(i + 1) * wpr];
        row[..words.len()].copy_from_slice(words);
        for w in &mut row[words.len()..] {
            *w = 0;
        }
    }

    /// Unions `words` (and bit `j`) into row `i`: the closure step for an
    /// inserted edge, where `words` is a copy of the new successor's row.
    pub fn or_into_row_with_bit(&mut self, i: usize, words: &[u64], j: usize) {
        let wpr = self.words_per_row;
        let row = &mut self.bits[i * wpr..(i + 1) * wpr];
        for (dw, sw) in row.iter_mut().zip(words) {
            *dw |= *sw;
        }
        row[j / 64] |= 1 << (j % 64);
    }

    /// Sets bit `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn set(&mut self, i: usize, j: usize) {
        assert!(i < self.n && j < self.n, "bit index out of range");
        self.bits[i * self.words_per_row + j / 64] |= 1 << (j % 64);
    }

    /// The packed words of row `i`.
    pub fn row(&self, i: usize) -> &[u64] {
        let start = i * self.words_per_row;
        &self.bits[start..start + self.words_per_row]
    }

    /// Unions row `src` into row `dst` (`dst |= src`), returning whether any
    /// bit of `dst` changed. A no-op when `src == dst`.
    pub fn or_row_into(&mut self, src: usize, dst: usize) -> bool {
        if src == dst {
            return false;
        }
        let w = self.words_per_row;
        let (s, d) = (src * w, dst * w);
        let (lo, hi) = if s < d { (s, d) } else { (d, s) };
        let (head, tail) = self.bits.split_at_mut(hi);
        let (src_row, dst_row) = if s < d {
            (&head[lo..lo + w], &mut tail[..w])
        } else {
            let (dst_row, _) = head[lo..].split_at_mut(w);
            (&tail[..w], dst_row)
        };
        let mut changed = false;
        for (dw, sw) in dst_row.iter_mut().zip(src_row) {
            let next = *dw | *sw;
            changed |= next != *dw;
            *dw = next;
        }
        changed
    }

    /// Closes the matrix under composition: afterwards `(i, j)` is set iff
    /// there is a non-empty path `i → … → j` through set entries. Works by
    /// repeatedly OR-ing successor rows into predecessor rows until a
    /// fixpoint is reached.
    pub fn transitive_close(&mut self) {
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..self.n {
                for j in 0..self.n {
                    if i != j && self.get(i, j) {
                        changed |= self.or_row_into(j, i);
                    }
                }
            }
        }
    }
}

/// A small directed graph over vertices `0..n`.
///
/// Histories contain at most a few dozen transactions, so adjacency lists
/// with linear scans are more than fast enough and keep the code simple.
#[derive(Clone, Debug, Default)]
pub struct Digraph {
    adj: Vec<Vec<usize>>,
}

impl Digraph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Digraph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Resizes to `n` vertices and removes every edge, keeping the per-vertex
    /// allocations alive so the graph can be reused as a scratch buffer.
    pub fn reset(&mut self, n: usize) {
        self.adj.truncate(n);
        for succ in &mut self.adj {
            succ.clear();
        }
        self.adj.resize(n, Vec::new());
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds the edge `a → b` (duplicates are ignored).
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        self.try_add_edge(a, b);
    }

    /// Adds the edge `a → b`, returning whether it was newly inserted
    /// (`false` when already present). The incremental engines record the
    /// flag so an undo only removes edges it actually added.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn try_add_edge(&mut self, a: usize, b: usize) -> bool {
        assert!(a < self.len() && b < self.len(), "vertex out of range");
        if self.adj[a].contains(&b) {
            false
        } else {
            self.adj[a].push(b);
            true
        }
    }

    /// Removes the edge `a → b` if present (edges are unique).
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn remove_edge(&mut self, a: usize, b: usize) {
        if let Some(pos) = self.adj[a].iter().position(|w| *w == b) {
            self.adj[a].remove(pos);
        }
    }

    /// Appends a fresh vertex (with no edges), returning its index.
    pub fn add_vertex(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Removes the last vertex.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty or the vertex still has outgoing
    /// edges. Incoming edges are the caller's responsibility: they live in
    /// other vertices' adjacency lists and would dangle silently.
    pub fn pop_vertex(&mut self) {
        let last = self.adj.pop().expect("graph has a vertex to pop");
        assert!(last.is_empty(), "popped vertex still has outgoing edges");
    }

    /// Successors of a vertex.
    pub fn successors(&self, a: usize) -> &[usize] {
        &self.adj[a]
    }

    /// Whether the graph is acyclic (Kahn's algorithm).
    pub fn is_acyclic(&self) -> bool {
        let n = self.len();
        let mut indeg = vec![0usize; n];
        for v in 0..n {
            for &w in &self.adj[v] {
                indeg[w] += 1;
            }
        }
        let mut queue: VecDeque<usize> = (0..n).filter(|v| indeg[*v] == 0).collect();
        let mut seen = 0;
        while let Some(v) = queue.pop_front() {
            seen += 1;
            for &w in &self.adj[v] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push_back(w);
                }
            }
        }
        seen == n
    }

    /// Reachability matrix: `(a, b)` is set iff there is a (possibly empty)
    /// path from `a` to `b`. Every vertex reaches itself.
    pub fn reachability(&self) -> BitMatrix {
        let mut m = self.adjacency();
        m.transitive_close();
        for v in 0..self.len() {
            m.set(v, v);
        }
        m
    }

    /// The adjacency matrix of the graph as a [`BitMatrix`] (no diagonal
    /// unless the graph has self-loops).
    pub fn adjacency(&self) -> BitMatrix {
        let mut m = BitMatrix::new(self.len());
        for (v, succ) in self.adj.iter().enumerate() {
            for &w in succ {
                m.set(v, w);
            }
        }
        m
    }

    /// Enumerates all topological orders of the graph, calling `f` on each.
    /// Enumeration stops early when `f` returns `true`, and the function
    /// returns whether any call returned `true`.
    ///
    /// Intended only for the small histories used in tests and the slow
    /// reference oracle.
    pub fn any_topological_order<F: FnMut(&[usize]) -> bool>(&self, mut f: F) -> bool {
        let n = self.len();
        let mut indeg = vec![0usize; n];
        for v in 0..n {
            for &w in &self.adj[v] {
                indeg[w] += 1;
            }
        }
        let mut order = Vec::with_capacity(n);
        let mut used = vec![false; n];
        self.topo_rec(&mut indeg, &mut used, &mut order, &mut f)
    }

    fn topo_rec<F: FnMut(&[usize]) -> bool>(
        &self,
        indeg: &mut Vec<usize>,
        used: &mut Vec<bool>,
        order: &mut Vec<usize>,
        f: &mut F,
    ) -> bool {
        let n = self.len();
        if order.len() == n {
            return f(order);
        }
        for v in 0..n {
            if !used[v] && indeg[v] == 0 {
                used[v] = true;
                order.push(v);
                for &w in &self.adj[v] {
                    indeg[w] -= 1;
                }
                if self.topo_rec(indeg, used, order, f) {
                    return true;
                }
                for &w in &self.adj[v] {
                    indeg[w] += 1;
                }
                order.pop();
                used[v] = false;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclicity() {
        let mut g = Digraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(g.is_acyclic());
        g.add_edge(2, 0);
        assert!(!g.is_acyclic());
    }

    #[test]
    fn empty_graph_is_acyclic() {
        let g = Digraph::new(0);
        assert!(g.is_acyclic());
        assert!(g.is_empty());
        assert!(Digraph::new(4).is_acyclic());
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = Digraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.successors(0), &[1]);
    }

    #[test]
    fn reachability_matrix() {
        let mut g = Digraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let r = g.reachability();
        assert!(r.get(0, 2));
        assert!(r.get(0, 0));
        assert!(!r.get(2, 0));
        assert!(!r.get(0, 3));
    }

    #[test]
    fn adjacency_has_no_implicit_diagonal() {
        let mut g = Digraph::new(3);
        g.add_edge(0, 1);
        let a = g.adjacency();
        assert!(a.get(0, 1));
        assert!(!a.get(0, 0));
        assert!(!a.get(1, 0));
    }

    #[test]
    fn bitmatrix_wide_rows_cross_word_boundaries() {
        // 100 vertices forces two words per row.
        let n = 100;
        let mut g = Digraph::new(n);
        for v in 0..n - 1 {
            g.add_edge(v, v + 1);
        }
        let r = g.reachability();
        assert!(r.get(0, n - 1));
        assert!(r.get(63, 64));
        assert!(!r.get(n - 1, 0));
    }

    #[test]
    fn bitmatrix_transitive_close_on_cycle() {
        let mut m = BitMatrix::new(3);
        m.set(0, 1);
        m.set(1, 2);
        m.set(2, 0);
        m.transitive_close();
        // Every vertex reaches every vertex (including itself via the cycle).
        for i in 0..3 {
            for j in 0..3 {
                assert!(m.get(i, j), "({i},{j}) should be reachable");
            }
        }
    }

    #[test]
    fn bitmatrix_or_row_into_reports_changes() {
        let mut m = BitMatrix::new(3);
        m.set(0, 2);
        assert!(m.or_row_into(0, 1), "first union changes row 1");
        assert!(!m.or_row_into(0, 1), "second union is a no-op");
        assert!(!m.or_row_into(1, 1), "self union is a no-op");
        assert!(m.get(1, 2));
    }

    #[test]
    fn bitmatrix_reset_reuses_and_clears() {
        let mut m = BitMatrix::new(2);
        m.set(1, 1);
        m.reset(3);
        assert_eq!(m.len(), 3);
        for i in 0..3 {
            for j in 0..3 {
                assert!(!m.get(i, j));
            }
        }
        m.reset(0);
        assert!(m.is_empty());
    }

    #[test]
    fn topological_order_enumeration() {
        let mut g = Digraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        let mut orders = Vec::new();
        g.any_topological_order(|o| {
            orders.push(o.to_vec());
            false
        });
        assert_eq!(orders.len(), 2);
        assert!(orders.contains(&vec![0, 1, 2]));
        assert!(orders.contains(&vec![0, 2, 1]));
        // Early exit works.
        let mut count = 0;
        let found = g.any_topological_order(|_| {
            count += 1;
            true
        });
        assert!(found);
        assert_eq!(count, 1);
    }

    #[test]
    fn cyclic_graph_has_no_topological_order() {
        let mut g = Digraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        assert!(!g.any_topological_order(|_| true));
    }
}
