//! Small directed-graph utilities used by the consistency checkers.

use std::collections::VecDeque;

/// A dense boolean matrix with word-packed rows, used for adjacency and
/// reachability over transaction graphs.
///
/// Rows are stored as consecutive `u64` words, so a whole-row union (the
/// inner step of transitive closure) touches `⌈n/64⌉` words instead of `n`
/// booleans, and a membership test is a single shift-and-mask.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl Clone for BitMatrix {
    fn clone(&self) -> Self {
        BitMatrix {
            n: self.n,
            words_per_row: self.words_per_row,
            bits: self.bits.clone(),
        }
    }

    // `clone_from` reuses the destination's backing allocation: engines
    // clone one scratch matrix into another on every check, so the default
    // `*self = source.clone()` would allocate on the hottest path.
    fn clone_from(&mut self, source: &Self) {
        self.n = source.n;
        self.words_per_row = source.words_per_row;
        self.bits.clone_from(&source.bits);
    }
}

impl BitMatrix {
    /// Creates an `n × n` zero matrix.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        BitMatrix {
            n,
            words_per_row,
            bits: vec![0; n * words_per_row],
        }
    }

    /// Number of rows (and columns).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Resizes to `n × n` and clears every bit. Keeps the backing allocation
    /// when it is already large enough, so engines can reuse one matrix as a
    /// scratch buffer across histories.
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.words_per_row = n.div_ceil(64);
        let words = n * self.words_per_row;
        self.bits.clear();
        self.bits.resize(words, 0);
    }

    /// Grows the matrix to `n × n`, preserving every existing bit (new rows
    /// and columns start clear). Keeps the row stride when possible so the
    /// incremental engines can add one vertex in O(row) instead of
    /// rebuilding the matrix.
    pub fn grow(&mut self, n: usize) {
        assert!(n >= self.n, "grow cannot shrink the matrix");
        let new_words_per_row = n.div_ceil(64).max(self.words_per_row);
        if new_words_per_row == self.words_per_row {
            self.bits.resize(n * self.words_per_row, 0);
        } else {
            // Stride change: re-home the rows back to front so the copy
            // never overlaps unprocessed data.
            let old_wpr = self.words_per_row;
            self.bits.resize(n * new_words_per_row, 0);
            for i in (0..self.n).rev() {
                for w in (0..old_wpr).rev() {
                    self.bits[i * new_words_per_row + w] = self.bits[i * old_wpr + w];
                }
                for w in old_wpr..new_words_per_row {
                    self.bits[i * new_words_per_row + w] = 0;
                }
            }
            self.words_per_row = new_words_per_row;
        }
        self.n = n;
    }

    /// Shrinks the matrix to `n × n`, clearing the dropped rows and columns
    /// so a later [`grow`](BitMatrix::grow) sees zeros. The row stride is
    /// kept, making a shrink-by-one O(n) for the incremental engines.
    pub fn shrink(&mut self, n: usize) {
        assert!(n <= self.n, "shrink cannot grow the matrix");
        let wpr = self.words_per_row;
        // Zero the dropped rows.
        for w in &mut self.bits[n * wpr..self.n * wpr] {
            *w = 0;
        }
        // Clear the dropped columns in the surviving rows.
        let full_words = n / 64;
        let mask = if n % 64 == 0 {
            0
        } else {
            (1u64 << (n % 64)) - 1
        };
        for i in 0..n {
            let row = i * wpr;
            if n % 64 != 0 {
                self.bits[row + full_words] &= mask;
            }
            for w in &mut self.bits[row + full_words + (n % 64 != 0) as usize..row + wpr] {
                *w = 0;
            }
        }
        self.n = n;
    }

    /// Whether bit `(i, j)` is set.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn get(&self, i: usize, j: usize) -> bool {
        assert!(i < self.n && j < self.n, "bit index out of range");
        self.bits[i * self.words_per_row + j / 64] >> (j % 64) & 1 == 1
    }

    /// Clears bit `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn clear_bit(&mut self, i: usize, j: usize) {
        assert!(i < self.n && j < self.n, "bit index out of range");
        self.bits[i * self.words_per_row + j / 64] &= !(1 << (j % 64));
    }

    /// Number of words per row (the stride of [`BitMatrix::row`]).
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Copies `words` into row `i` (extra row words beyond the slice are
    /// cleared) — the restore half of the incremental engines'
    /// save-dirty-rows protocol.
    ///
    /// # Panics
    ///
    /// Panics if the slice is longer than a row.
    pub fn restore_row(&mut self, i: usize, words: &[u64]) {
        let wpr = self.words_per_row;
        assert!(words.len() <= wpr, "saved row wider than the matrix");
        let row = &mut self.bits[i * wpr..(i + 1) * wpr];
        row[..words.len()].copy_from_slice(words);
        for w in &mut row[words.len()..] {
            *w = 0;
        }
    }

    /// Unions `words` (and bit `j`) into row `i`: the closure step for an
    /// inserted edge, where `words` is a copy of the new successor's row.
    pub fn or_into_row_with_bit(&mut self, i: usize, words: &[u64], j: usize) {
        let wpr = self.words_per_row;
        let row = &mut self.bits[i * wpr..(i + 1) * wpr];
        or_words(&mut row[..words.len().min(wpr)], words);
        row[j / 64] |= 1 << (j % 64);
    }

    /// Sets bit `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn set(&mut self, i: usize, j: usize) {
        assert!(i < self.n && j < self.n, "bit index out of range");
        self.bits[i * self.words_per_row + j / 64] |= 1 << (j % 64);
    }

    /// The packed words of row `i`.
    pub fn row(&self, i: usize) -> &[u64] {
        let start = i * self.words_per_row;
        &self.bits[start..start + self.words_per_row]
    }

    /// Unions row `src` into row `dst` (`dst |= src`), returning whether any
    /// bit of `dst` changed. A no-op when `src == dst`.
    pub fn or_row_into(&mut self, src: usize, dst: usize) -> bool {
        if src == dst {
            return false;
        }
        let w = self.words_per_row;
        let (s, d) = (src * w, dst * w);
        let (lo, hi) = if s < d { (s, d) } else { (d, s) };
        let (head, tail) = self.bits.split_at_mut(hi);
        let (src_row, dst_row) = if s < d {
            (&head[lo..lo + w], &mut tail[..w])
        } else {
            let (dst_row, _) = head[lo..].split_at_mut(w);
            (&tail[..w], dst_row)
        };
        or_words(dst_row, src_row) != 0
    }

    /// Closes the matrix under composition: afterwards `(i, j)` is set iff
    /// there is a non-empty path `i → … → j` through set entries. Works by
    /// repeatedly OR-ing successor rows into predecessor rows until a
    /// fixpoint is reached.
    ///
    /// Successors are enumerated word-by-word via `trailing_zeros` instead
    /// of probing [`get`](BitMatrix::get) per bit, so a sparse row costs
    /// one load per word plus one union per *set* bit. After a union
    /// changes row `i`, the current word is re-read masked down to the
    /// bits above `j`, so successors the union just added are followed in
    /// the same sweep — exactly what the per-bit loop did by re-reading
    /// `get(i, j')` for `j' > j`.
    pub fn transitive_close(&mut self) {
        let wpr = self.words_per_row;
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..self.n {
                for w in 0..wpr {
                    let mut bits = self.bits[i * wpr + w];
                    // Skip the diagonal: a self-loop unions a row into
                    // itself, which cannot add anything.
                    if i / 64 == w {
                        bits &= !(1 << (i % 64));
                    }
                    while bits != 0 {
                        let j = w * 64 + bits.trailing_zeros() as usize;
                        if self.or_row_into(j, i) {
                            changed = true;
                            // Row i changed: pick up any new successors in
                            // this word beyond j before moving on.
                            bits = self.bits[i * wpr + w] & !(u64::MAX >> (63 - j % 64));
                            if i / 64 == w {
                                bits &= !(1 << (i % 64));
                            }
                        } else {
                            bits &= bits - 1;
                        }
                    }
                }
            }
        }
    }
}

/// Unions `src` into `dst` word-wise, returning the OR of all changed
/// bits (non-zero iff any destination word changed). The loop body is
/// branch-free over fixed-width blocks of four words, so the compiler can
/// autovectorize it; the change mask falls out of the same pass instead
/// of a per-word comparison branch.
fn or_words(dst: &mut [u64], src: &[u64]) -> u64 {
    debug_assert!(dst.len() <= src.len());
    let mut diff = 0u64;
    let n = dst.len();
    let blocks = n / 4 * 4;
    let (dst_blocks, dst_tail) = dst.split_at_mut(blocks);
    for (d, s) in dst_blocks
        .chunks_exact_mut(4)
        .zip(src[..blocks].chunks_exact(4))
    {
        let d: &mut [u64; 4] = d.try_into().expect("chunk width is 4");
        let s: &[u64; 4] = s.try_into().expect("chunk width is 4");
        let next = [d[0] | s[0], d[1] | s[1], d[2] | s[2], d[3] | s[3]];
        diff |= (next[0] ^ d[0]) | (next[1] ^ d[1]) | (next[2] ^ d[2]) | (next[3] ^ d[3]);
        *d = next;
    }
    for (dw, sw) in dst_tail.iter_mut().zip(&src[blocks..n]) {
        let next = *dw | *sw;
        diff |= next ^ *dw;
        *dw = next;
    }
    diff
}

/// A small directed graph over vertices `0..n`.
///
/// Histories contain at most a few dozen transactions, so adjacency lists
/// with linear scans are more than fast enough and keep the code simple.
#[derive(Clone, Debug, Default)]
pub struct Digraph {
    adj: Vec<Vec<usize>>,
}

impl Digraph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Digraph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Resizes to `n` vertices and removes every edge, keeping the per-vertex
    /// allocations alive so the graph can be reused as a scratch buffer.
    pub fn reset(&mut self, n: usize) {
        self.adj.truncate(n);
        for succ in &mut self.adj {
            succ.clear();
        }
        self.adj.resize(n, Vec::new());
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds the edge `a → b` (duplicates are ignored).
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        self.try_add_edge(a, b);
    }

    /// Adds the edge `a → b`, returning whether it was newly inserted
    /// (`false` when already present). The incremental engines record the
    /// flag so an undo only removes edges it actually added.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn try_add_edge(&mut self, a: usize, b: usize) -> bool {
        assert!(a < self.len() && b < self.len(), "vertex out of range");
        if self.adj[a].contains(&b) {
            false
        } else {
            self.adj[a].push(b);
            true
        }
    }

    /// Removes the edge `a → b` if present (edges are unique).
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn remove_edge(&mut self, a: usize, b: usize) {
        if let Some(pos) = self.adj[a].iter().position(|w| *w == b) {
            self.adj[a].remove(pos);
        }
    }

    /// Appends a fresh vertex (with no edges), returning its index.
    pub fn add_vertex(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Removes the last vertex.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty or the vertex still has outgoing
    /// edges. Incoming edges are the caller's responsibility: they live in
    /// other vertices' adjacency lists and would dangle silently.
    pub fn pop_vertex(&mut self) {
        let last = self.adj.pop().expect("graph has a vertex to pop");
        assert!(last.is_empty(), "popped vertex still has outgoing edges");
    }

    /// Successors of a vertex.
    pub fn successors(&self, a: usize) -> &[usize] {
        &self.adj[a]
    }

    /// Whether the graph is acyclic (Kahn's algorithm).
    pub fn is_acyclic(&self) -> bool {
        let n = self.len();
        let mut indeg = vec![0usize; n];
        for v in 0..n {
            for &w in &self.adj[v] {
                indeg[w] += 1;
            }
        }
        let mut queue: VecDeque<usize> = (0..n).filter(|v| indeg[*v] == 0).collect();
        let mut seen = 0;
        while let Some(v) = queue.pop_front() {
            seen += 1;
            for &w in &self.adj[v] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push_back(w);
                }
            }
        }
        seen == n
    }

    /// Reachability matrix: `(a, b)` is set iff there is a (possibly empty)
    /// path from `a` to `b`. Every vertex reaches itself.
    pub fn reachability(&self) -> BitMatrix {
        let mut m = self.adjacency();
        m.transitive_close();
        for v in 0..self.len() {
            m.set(v, v);
        }
        m
    }

    /// The adjacency matrix of the graph as a [`BitMatrix`] (no diagonal
    /// unless the graph has self-loops).
    pub fn adjacency(&self) -> BitMatrix {
        let mut m = BitMatrix::new(self.len());
        for (v, succ) in self.adj.iter().enumerate() {
            for &w in succ {
                m.set(v, w);
            }
        }
        m
    }

    /// Enumerates all topological orders of the graph, calling `f` on each.
    /// Enumeration stops early when `f` returns `true`, and the function
    /// returns whether any call returned `true`.
    ///
    /// Intended only for the small histories used in tests and the slow
    /// reference oracle.
    pub fn any_topological_order<F: FnMut(&[usize]) -> bool>(&self, mut f: F) -> bool {
        let n = self.len();
        let mut indeg = vec![0usize; n];
        for v in 0..n {
            for &w in &self.adj[v] {
                indeg[w] += 1;
            }
        }
        let mut order = Vec::with_capacity(n);
        let mut used = vec![false; n];
        self.topo_rec(&mut indeg, &mut used, &mut order, &mut f)
    }

    fn topo_rec<F: FnMut(&[usize]) -> bool>(
        &self,
        indeg: &mut Vec<usize>,
        used: &mut Vec<bool>,
        order: &mut Vec<usize>,
        f: &mut F,
    ) -> bool {
        let n = self.len();
        if order.len() == n {
            return f(order);
        }
        for v in 0..n {
            if !used[v] && indeg[v] == 0 {
                used[v] = true;
                order.push(v);
                for &w in &self.adj[v] {
                    indeg[w] -= 1;
                }
                if self.topo_rec(indeg, used, order, f) {
                    return true;
                }
                for &w in &self.adj[v] {
                    indeg[w] += 1;
                }
                order.pop();
                used[v] = false;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclicity() {
        let mut g = Digraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(g.is_acyclic());
        g.add_edge(2, 0);
        assert!(!g.is_acyclic());
    }

    #[test]
    fn empty_graph_is_acyclic() {
        let g = Digraph::new(0);
        assert!(g.is_acyclic());
        assert!(g.is_empty());
        assert!(Digraph::new(4).is_acyclic());
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = Digraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.successors(0), &[1]);
    }

    #[test]
    fn reachability_matrix() {
        let mut g = Digraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let r = g.reachability();
        assert!(r.get(0, 2));
        assert!(r.get(0, 0));
        assert!(!r.get(2, 0));
        assert!(!r.get(0, 3));
    }

    #[test]
    fn adjacency_has_no_implicit_diagonal() {
        let mut g = Digraph::new(3);
        g.add_edge(0, 1);
        let a = g.adjacency();
        assert!(a.get(0, 1));
        assert!(!a.get(0, 0));
        assert!(!a.get(1, 0));
    }

    #[test]
    fn bitmatrix_wide_rows_cross_word_boundaries() {
        // 100 vertices forces two words per row.
        let n = 100;
        let mut g = Digraph::new(n);
        for v in 0..n - 1 {
            g.add_edge(v, v + 1);
        }
        let r = g.reachability();
        assert!(r.get(0, n - 1));
        assert!(r.get(63, 64));
        assert!(!r.get(n - 1, 0));
    }

    #[test]
    fn bitmatrix_transitive_close_on_cycle() {
        let mut m = BitMatrix::new(3);
        m.set(0, 1);
        m.set(1, 2);
        m.set(2, 0);
        m.transitive_close();
        // Every vertex reaches every vertex (including itself via the cycle).
        for i in 0..3 {
            for j in 0..3 {
                assert!(m.get(i, j), "({i},{j}) should be reachable");
            }
        }
    }

    #[test]
    fn bitmatrix_or_row_into_reports_changes() {
        let mut m = BitMatrix::new(3);
        m.set(0, 2);
        assert!(m.or_row_into(0, 1), "first union changes row 1");
        assert!(!m.or_row_into(0, 1), "second union is a no-op");
        assert!(!m.or_row_into(1, 1), "self union is a no-op");
        assert!(m.get(1, 2));
    }

    #[test]
    fn bitmatrix_reset_reuses_and_clears() {
        let mut m = BitMatrix::new(2);
        m.set(1, 1);
        m.reset(3);
        assert_eq!(m.len(), 3);
        for i in 0..3 {
            for j in 0..3 {
                assert!(!m.get(i, j));
            }
        }
        m.reset(0);
        assert!(m.is_empty());
    }

    /// The pre-optimisation closure: per-bit probing, kept as the test
    /// oracle for the word-level kernel.
    fn naive_transitive_close(m: &mut BitMatrix) {
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..m.len() {
                for j in 0..m.len() {
                    if i != j && m.get(i, j) {
                        changed |= m.or_row_into(j, i);
                    }
                }
            }
        }
    }

    #[test]
    fn word_level_closure_matches_naive_closure() {
        // Pseudorandom matrices at sizes crossing the one- and two-word
        // row boundaries (and tiny ones), dense and sparse.
        let mut lcg = 0x243f_6a88_85a3_08d3u64;
        let mut next = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 33
        };
        for n in [1usize, 2, 7, 63, 64, 65, 70, 127, 128, 130] {
            for density in [3u64, 17] {
                let mut fast = BitMatrix::new(n);
                for i in 0..n {
                    for j in 0..n {
                        if next() % density == 0 {
                            fast.set(i, j);
                        }
                    }
                }
                let mut naive = fast.clone();
                fast.transitive_close();
                naive_transitive_close(&mut naive);
                assert_eq!(fast, naive, "closures diverge at n={n} density=1/{density}");
            }
        }
    }

    #[test]
    fn or_row_into_detects_changes_beyond_the_chunk_remainder() {
        // 130 columns = 3 words per row: two words of full 4-wide blocks
        // would need ≥4, so the whole row is remainder — then 260 columns
        // = 5 words exercises one block plus remainder. The changed flag
        // must see a difference wherever it lands.
        for (n, probe) in [(130usize, [0usize, 64, 129]), (260, [3, 200, 259])] {
            for j in probe {
                let mut m = BitMatrix::new(n);
                m.set(0, j);
                assert!(m.or_row_into(0, 1), "change at column {j} missed (n={n})");
                assert!(!m.or_row_into(0, 1), "idempotent union reported a change");
                assert!(m.get(1, j));
            }
        }
    }

    #[test]
    fn or_into_row_with_bit_accepts_narrow_saved_rows() {
        // The incremental engines replay saved rows that can be narrower
        // than the current stride; the union must stop at the slice.
        let mut m = BitMatrix::new(130);
        let saved = [1u64 << 5]; // one word, bit 5
        m.or_into_row_with_bit(2, &saved, 129);
        assert!(m.get(2, 5));
        assert!(m.get(2, 129));
    }

    #[test]
    fn closure_follows_successors_added_within_the_same_word() {
        // 0 → 1 and 1 → 2: unioning row 1 into row 0 adds bit 2 inside the
        // word being scanned; the kernel must follow it in the same sweep
        // (and in any case reach the fixpoint 0 → 2).
        let mut m = BitMatrix::new(66);
        m.set(0, 1);
        m.set(1, 2);
        m.set(2, 65); // crosses into the second word
        m.transitive_close();
        assert!(m.get(0, 2));
        assert!(m.get(0, 65));
        assert!(m.get(1, 65));
        assert!(!m.get(65, 0));
    }

    #[test]
    fn topological_order_enumeration() {
        let mut g = Digraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        let mut orders = Vec::new();
        g.any_topological_order(|o| {
            orders.push(o.to_vec());
            false
        });
        assert_eq!(orders.len(), 2);
        assert!(orders.contains(&vec![0, 1, 2]));
        assert!(orders.contains(&vec![0, 2, 1]));
        // Early exit works.
        let mut count = 0;
        let found = g.any_topological_order(|_| {
            count += 1;
            true
        });
        assert!(found);
        assert_eq!(count, 1);
    }

    #[test]
    fn cyclic_graph_has_no_topological_order() {
        let mut g = Digraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        assert!(!g.any_topological_order(|_| true));
    }
}
