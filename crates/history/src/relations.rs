//! Small directed-graph utilities used by the consistency checkers.

use std::collections::VecDeque;

/// A small directed graph over vertices `0..n`.
///
/// Histories contain at most a few dozen transactions, so adjacency lists
/// with linear scans are more than fast enough and keep the code simple.
#[derive(Clone, Debug, Default)]
pub struct Digraph {
    adj: Vec<Vec<usize>>,
}

impl Digraph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Digraph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds the edge `a → b` (duplicates are ignored).
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(a < self.len() && b < self.len(), "vertex out of range");
        if !self.adj[a].contains(&b) {
            self.adj[a].push(b);
        }
    }

    /// Successors of a vertex.
    pub fn successors(&self, a: usize) -> &[usize] {
        &self.adj[a]
    }

    /// Whether the graph is acyclic (Kahn's algorithm).
    pub fn is_acyclic(&self) -> bool {
        let n = self.len();
        let mut indeg = vec![0usize; n];
        for v in 0..n {
            for &w in &self.adj[v] {
                indeg[w] += 1;
            }
        }
        let mut queue: VecDeque<usize> = (0..n).filter(|v| indeg[*v] == 0).collect();
        let mut seen = 0;
        while let Some(v) = queue.pop_front() {
            seen += 1;
            for &w in &self.adj[v] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push_back(w);
                }
            }
        }
        seen == n
    }

    /// Reachability matrix: `out[a][b]` iff there is a (possibly empty) path
    /// from `a` to `b`. Every vertex reaches itself.
    pub fn reachability(&self) -> Vec<Vec<bool>> {
        let n = self.len();
        let mut out = vec![vec![false; n]; n];
        for (start, reached) in out.iter_mut().enumerate() {
            let mut stack = vec![start];
            reached[start] = true;
            while let Some(v) = stack.pop() {
                for &w in &self.adj[v] {
                    if !reached[w] {
                        reached[w] = true;
                        stack.push(w);
                    }
                }
            }
        }
        out
    }

    /// Enumerates all topological orders of the graph, calling `f` on each.
    /// Enumeration stops early when `f` returns `true`, and the function
    /// returns whether any call returned `true`.
    ///
    /// Intended only for the small histories used in tests and the slow
    /// reference oracle.
    pub fn any_topological_order<F: FnMut(&[usize]) -> bool>(&self, mut f: F) -> bool {
        let n = self.len();
        let mut indeg = vec![0usize; n];
        for v in 0..n {
            for &w in &self.adj[v] {
                indeg[w] += 1;
            }
        }
        let mut order = Vec::with_capacity(n);
        let mut used = vec![false; n];
        self.topo_rec(&mut indeg, &mut used, &mut order, &mut f)
    }

    fn topo_rec<F: FnMut(&[usize]) -> bool>(
        &self,
        indeg: &mut Vec<usize>,
        used: &mut Vec<bool>,
        order: &mut Vec<usize>,
        f: &mut F,
    ) -> bool {
        let n = self.len();
        if order.len() == n {
            return f(order);
        }
        for v in 0..n {
            if !used[v] && indeg[v] == 0 {
                used[v] = true;
                order.push(v);
                for &w in &self.adj[v] {
                    indeg[w] -= 1;
                }
                if self.topo_rec(indeg, used, order, f) {
                    return true;
                }
                for &w in &self.adj[v] {
                    indeg[w] += 1;
                }
                order.pop();
                used[v] = false;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclicity() {
        let mut g = Digraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(g.is_acyclic());
        g.add_edge(2, 0);
        assert!(!g.is_acyclic());
    }

    #[test]
    fn empty_graph_is_acyclic() {
        let g = Digraph::new(0);
        assert!(g.is_acyclic());
        assert!(g.is_empty());
        assert!(Digraph::new(4).is_acyclic());
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = Digraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.successors(0), &[1]);
    }

    #[test]
    fn reachability_matrix() {
        let mut g = Digraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let r = g.reachability();
        assert!(r[0][2]);
        assert!(r[0][0]);
        assert!(!r[2][0]);
        assert!(!r[0][3]);
    }

    #[test]
    fn topological_order_enumeration() {
        let mut g = Digraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        let mut orders = Vec::new();
        g.any_topological_order(|o| {
            orders.push(o.to_vec());
            false
        });
        assert_eq!(orders.len(), 2);
        assert!(orders.contains(&vec![0, 1, 2]));
        assert!(orders.contains(&vec![0, 2, 1]));
        // Early exit works.
        let mut count = 0;
        let found = g.any_topological_order(|_| {
            count += 1;
            true
        });
        assert!(found);
        assert_eq!(count, 1);
    }

    #[test]
    fn cyclic_graph_has_no_topological_order() {
        let mut g = Digraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        assert!(!g.any_topological_order(|_| true));
    }
}
