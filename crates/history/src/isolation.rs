//! Isolation levels and their structural properties.
//!
//! The paper considers Read Committed, Read Atomic, Causal Consistency,
//! Snapshot Isolation and Serializability, plus the trivial level `true`
//! used as the weakest exploration base in `explore-ce*(true, I)`. We also
//! support Prefix Consistency (the Prefix axiom alone), which completes
//! the standard six-level hierarchy between CC and SI. Two structural
//! properties drive the design of the DPOR algorithm (§3): *prefix
//! closure* and *causal extensibility*.

use std::fmt;
use std::str::FromStr;

use crate::check;
use crate::history::History;

/// A transactional isolation level.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IsolationLevel {
    /// The trivial isolation level where every history is consistent.
    Trivial,
    /// Read Committed (Fig. A.1a).
    ReadCommitted,
    /// Read Atomic, also called Repeatable Read in the literature (Fig. A.1b).
    ReadAtomic,
    /// Causal Consistency (Fig. 2a).
    CausalConsistency,
    /// Prefix Consistency, defined by the Prefix axiom alone (Fig. 2b):
    /// every transaction reads from a snapshot that is a *prefix* of the
    /// commit order, but — unlike Snapshot Isolation — concurrent
    /// transactions may write the same variable. Sits strictly between
    /// Causal Consistency and Snapshot Isolation in the lattice.
    PrefixConsistency,
    /// Snapshot Isolation, defined by the Prefix and Conflict axioms
    /// (Fig. 2b and 2c).
    SnapshotIsolation,
    /// Serializability (Fig. 2d).
    Serializability,
}

impl IsolationLevel {
    /// All levels, from weakest to strongest.
    pub const ALL: [IsolationLevel; 7] = [
        IsolationLevel::Trivial,
        IsolationLevel::ReadCommitted,
        IsolationLevel::ReadAtomic,
        IsolationLevel::CausalConsistency,
        IsolationLevel::PrefixConsistency,
        IsolationLevel::SnapshotIsolation,
        IsolationLevel::Serializability,
    ];

    /// The levels that are prefix-closed and causally extensible, i.e. those
    /// for which `explore-ce` is strongly optimal (§5).
    pub const CAUSALLY_EXTENSIBLE: [IsolationLevel; 4] = [
        IsolationLevel::Trivial,
        IsolationLevel::ReadCommitted,
        IsolationLevel::ReadAtomic,
        IsolationLevel::CausalConsistency,
    ];

    /// Short name used in tables and figures ("RC", "RA", "CC", "PC", "SI",
    /// "SER", "true").
    pub fn short_name(self) -> &'static str {
        match self {
            IsolationLevel::Trivial => "true",
            IsolationLevel::ReadCommitted => "RC",
            IsolationLevel::ReadAtomic => "RA",
            IsolationLevel::CausalConsistency => "CC",
            IsolationLevel::PrefixConsistency => "PC",
            IsolationLevel::SnapshotIsolation => "SI",
            IsolationLevel::Serializability => "SER",
        }
    }

    /// Numeric strength rank: larger means stronger (admits fewer histories).
    fn rank(self) -> u8 {
        match self {
            IsolationLevel::Trivial => 0,
            IsolationLevel::ReadCommitted => 1,
            IsolationLevel::ReadAtomic => 2,
            IsolationLevel::CausalConsistency => 3,
            IsolationLevel::PrefixConsistency => 4,
            IsolationLevel::SnapshotIsolation => 5,
            IsolationLevel::Serializability => 6,
        }
    }

    /// Whether `self` is weaker than (or equal to) `other`: `self` admits
    /// at least the histories `other` admits, i.e. every `other`-consistent
    /// history is also `self`-consistent.
    pub fn weaker_or_equal(self, other: IsolationLevel) -> bool {
        self.rank() <= other.rank()
    }

    /// Whether the level is prefix-closed (Definition 3.1). All the levels
    /// considered in the paper are (Theorem 3.2).
    pub fn is_prefix_closed(self) -> bool {
        true
    }

    /// Whether the level is causally extensible (Definition 3.3,
    /// Theorem 3.4). Prefix Consistency, Snapshot Isolation and
    /// Serializability are not.
    pub fn is_causally_extensible(self) -> bool {
        matches!(
            self,
            IsolationLevel::Trivial
                | IsolationLevel::ReadCommitted
                | IsolationLevel::ReadAtomic
                | IsolationLevel::CausalConsistency
        )
    }

    /// Whether the given history satisfies this isolation level
    /// (Definition 2.2): there exists a strict total commit order extending
    /// `so ∪ wr` that satisfies the level's axioms.
    ///
    /// Dispatches to the efficient specialised checkers in [`crate::check`].
    pub fn satisfies(self, h: &History) -> bool {
        check::satisfies(h, self)
    }
}

impl fmt::Display for IsolationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Error of parsing an [`IsolationLevel`] from its short name; carries the
/// rejected input and lists the accepted names.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseLevelError {
    input: String,
}

impl fmt::Display for ParseLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown isolation level {:?}; accepted names: ",
            self.input
        )?;
        for (i, l) in IsolationLevel::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(l.short_name())?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseLevelError {}

impl FromStr for IsolationLevel {
    type Err = ParseLevelError;

    /// Parses the short names used in tables and on the command line
    /// (`"RC"`, `"RA"`, `"CC"`, `"PC"`, `"SI"`, `"SER"` and `"true"` for
    /// the trivial level), round-tripping [`IsolationLevel::short_name`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        IsolationLevel::ALL
            .into_iter()
            .find(|l| l.short_name() == s)
            .ok_or_else(|| ParseLevelError { input: s.into() })
    }
}

/// An isolation-level *specification*: either one level for every
/// transaction (the paper's setting) or a per-transaction assignment, as in
/// mixed real-world workloads where read-only analytics run at Read
/// Committed next to payment transactions at Serializability (cf. *On the
/// Complexity of Checking Mixed Isolation Levels for SQL Transactions*).
///
/// Transactions are addressed by their *position*: the session id and the
/// transaction's index within that session. For histories generated by the
/// exploration layer this index equals the program index of the
/// transaction in its session (sessions execute their transactions in
/// order), so a spec written against a program applies verbatim to every
/// history the program produces.
///
/// A spec is kept **normalised**: overrides equal to the default level are
/// dropped and the override list is sorted by position, so two specs with
/// the same per-transaction assignment compare equal and hash identically.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LevelSpec {
    /// Level of every transaction without an override.
    default: IsolationLevel,
    /// Sorted `(session, index-within-session, level)` overrides, each
    /// differing from `default`.
    overrides: Vec<(u32, u32, IsolationLevel)>,
}

impl LevelSpec {
    /// The uniform spec assigning `level` to every transaction.
    pub fn uniform(level: IsolationLevel) -> Self {
        LevelSpec {
            default: level,
            overrides: Vec::new(),
        }
    }

    /// Returns the spec with the transaction at `(session, index)` assigned
    /// `level` (replacing any previous override for that position;
    /// assignments equal to the default are normalised away).
    #[must_use]
    pub fn with_override(mut self, session: u32, index: u32, level: IsolationLevel) -> Self {
        let pos = self
            .overrides
            .binary_search_by_key(&(session, index), |&(s, i, _)| (s, i));
        match (pos, level == self.default) {
            (Ok(k), true) => {
                self.overrides.remove(k);
            }
            (Ok(k), false) => self.overrides[k].2 = level,
            (Err(_), true) => {}
            (Err(k), false) => self.overrides.insert(k, (session, index, level)),
        }
        self
    }

    /// The default level (assigned to every position without an override).
    pub fn default_level(&self) -> IsolationLevel {
        self.default
    }

    /// The single level of a uniform spec, `None` when genuinely mixed.
    pub fn as_uniform(&self) -> Option<IsolationLevel> {
        self.overrides.is_empty().then_some(self.default)
    }

    /// The level assigned to the transaction at `(session, index)`.
    pub fn level_of(&self, session: u32, index: u32) -> IsolationLevel {
        match self
            .overrides
            .binary_search_by_key(&(session, index), |&(s, i, _)| (s, i))
        {
            Ok(k) => self.overrides[k].2,
            Err(_) => self.default,
        }
    }

    /// The overridden positions as `(session, index, level)`, sorted.
    pub fn overrides(&self) -> &[(u32, u32, IsolationLevel)] {
        &self.overrides
    }

    /// Whether any position is assigned `level`.
    pub fn mentions(&self, level: IsolationLevel) -> bool {
        self.default == level || self.overrides.iter().any(|&(_, _, l)| l == level)
    }

    /// Whether any position is assigned Prefix Consistency, Snapshot
    /// Isolation or Serializability (the levels that need the commit-order
    /// search).
    pub fn has_strong(&self) -> bool {
        self.mentions(IsolationLevel::PrefixConsistency)
            || self.mentions(IsolationLevel::SnapshotIsolation)
            || self.mentions(IsolationLevel::Serializability)
    }

    /// Whether every assigned level is causally extensible (Definition 3.3)
    /// — the requirement on an exploration base spec.
    pub fn is_causally_extensible(&self) -> bool {
        self.default.is_causally_extensible()
            && self
                .overrides
                .iter()
                .all(|&(_, _, l)| l.is_causally_extensible())
    }

    /// Pointwise [`IsolationLevel::weaker_or_equal`]: whether every
    /// position's level in `self` is weaker than or equal to the level
    /// `other` assigns it (so every `other`-consistent history is also
    /// `self`-consistent).
    pub fn weaker_or_equal(&self, other: &LevelSpec) -> bool {
        self.default.weaker_or_equal(other.default)
            && self
                .overrides
                .iter()
                .all(|&(s, i, l)| l.weaker_or_equal(other.level_of(s, i)))
            && other
                .overrides
                .iter()
                .all(|&(s, i, l)| self.level_of(s, i).weaker_or_equal(l))
    }

    /// A 64-bit structural hash of the assignment, folded into the
    /// consistency engines' memo keys so verdicts memoised under one spec
    /// can never be served for another.
    pub fn spec_hash(&self) -> u64 {
        let mut acc = spec_mix(0x6d69_7865_645f_6c76 ^ self.default as u64);
        for &(s, i, l) in &self.overrides {
            acc = spec_mix(acc ^ ((s as u64) << 40) ^ ((i as u64) << 8) ^ l as u64);
        }
        acc
    }

    /// Canonical label: the short level name for uniform specs, otherwise
    /// `default[s<session>.t<index>=LEVEL,...]` — used in benchmark tables
    /// and the fig14 JSON `levels` field.
    pub fn label(&self) -> String {
        let mut out = self.default.short_name().to_owned();
        if !self.overrides.is_empty() {
            out.push('[');
            for (k, (s, i, l)) in self.overrides.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(&format!("s{s}.t{i}={}", l.short_name()));
            }
            out.push(']');
        }
        out
    }

    /// The level assigned to transaction `t` of history `h`, resolved
    /// through the transaction's session and position within it. Unknown
    /// transactions (including init) get the default level.
    pub fn level_of_tx(&self, h: &History, t: crate::transaction::TxId) -> IsolationLevel {
        if self.overrides.is_empty() {
            return self.default;
        }
        match (h.get_tx(t), h.tx_session_index(t)) {
            (Some(log), Some(idx)) => self.level_of(log.session.0, idx as u32),
            _ => self.default,
        }
    }

    /// Whether the given history satisfies this spec (the mixed-level
    /// generalisation of Definition 2.2): there exists a strict total
    /// commit order extending `so ∪ wr` in which every transaction obeys
    /// the axioms of *its own* level.
    pub fn satisfies(&self, h: &History) -> bool {
        check::satisfies_spec(h, self)
    }
}

impl From<IsolationLevel> for LevelSpec {
    fn from(level: IsolationLevel) -> Self {
        LevelSpec::uniform(level)
    }
}

impl fmt::Display for LevelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Error of parsing a [`LevelSpec`] from its canonical label; carries the
/// rejected input and an explanation mirroring [`ParseLevelError`]'s style.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSpecError {
    input: String,
    reason: SpecErrorReason,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum SpecErrorReason {
    Level(ParseLevelError),
    Syntax,
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.reason {
            SpecErrorReason::Level(e) => {
                write!(f, "invalid level spec {:?}: {e}", self.input)
            }
            SpecErrorReason::Syntax => write!(
                f,
                "invalid level spec {:?}; expected LEVEL or \
                 LEVEL[s<session>.t<index>=LEVEL,...], e.g. \"CC[s0.t1=SER]\"",
                self.input
            ),
        }
    }
}

impl std::error::Error for ParseSpecError {}

impl FromStr for LevelSpec {
    type Err = ParseSpecError;

    /// Parses the canonical labels produced by [`LevelSpec::label`]: a
    /// short level name (`"CC"`) for uniform specs, otherwise
    /// `default[s<session>.t<index>=LEVEL,...]` as in `"CC[s0.t1=SER]"`.
    /// Overrides equal to the default are normalised away, so parsing
    /// round-trips `label()` exactly.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let syntax = || ParseSpecError {
            input: s.into(),
            reason: SpecErrorReason::Syntax,
        };
        let level = |e: ParseLevelError| ParseSpecError {
            input: s.into(),
            reason: SpecErrorReason::Level(e),
        };
        let (head, rest) = match s.find('[') {
            Some(k) => {
                let rest = s[k + 1..].strip_suffix(']').ok_or_else(syntax)?;
                (&s[..k], Some(rest))
            }
            None => (s, None),
        };
        let mut spec = LevelSpec::uniform(head.parse::<IsolationLevel>().map_err(level)?);
        let Some(rest) = rest else { return Ok(spec) };
        if rest.is_empty() {
            return Err(syntax());
        }
        for item in rest.split(',') {
            let (pos, lvl) = item.split_once('=').ok_or_else(syntax)?;
            let (sess, idx) = pos.split_once('.').ok_or_else(syntax)?;
            let sess = sess
                .strip_prefix('s')
                .and_then(|n| n.parse::<u32>().ok())
                .ok_or_else(syntax)?;
            let idx = idx
                .strip_prefix('t')
                .and_then(|n| n.parse::<u32>().ok())
                .ok_or_else(syntax)?;
            spec = spec.with_override(sess, idx, lvl.parse::<IsolationLevel>().map_err(level)?);
        }
        Ok(spec)
    }
}

/// Finalising mixer of [`LevelSpec::spec_hash`] (splitmix64).
fn spec_mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_of_levels() {
        use IsolationLevel::*;
        assert!(ReadCommitted.weaker_or_equal(Serializability));
        assert!(Trivial.weaker_or_equal(ReadCommitted));
        assert!(CausalConsistency.weaker_or_equal(SnapshotIsolation));
        assert!(!Serializability.weaker_or_equal(CausalConsistency));
        assert!(ReadAtomic.weaker_or_equal(ReadAtomic));
        // PC sits strictly between CC and SI.
        assert!(CausalConsistency.weaker_or_equal(PrefixConsistency));
        assert!(PrefixConsistency.weaker_or_equal(SnapshotIsolation));
        assert!(!PrefixConsistency.weaker_or_equal(CausalConsistency));
        assert!(!SnapshotIsolation.weaker_or_equal(PrefixConsistency));
    }

    #[test]
    fn structural_properties() {
        use IsolationLevel::*;
        for l in IsolationLevel::ALL {
            assert!(l.is_prefix_closed());
        }
        assert!(CausalConsistency.is_causally_extensible());
        assert!(ReadCommitted.is_causally_extensible());
        assert!(ReadAtomic.is_causally_extensible());
        assert!(Trivial.is_causally_extensible());
        assert!(!PrefixConsistency.is_causally_extensible());
        assert!(!SnapshotIsolation.is_causally_extensible());
        assert!(!Serializability.is_causally_extensible());
        assert_eq!(IsolationLevel::CAUSALLY_EXTENSIBLE.len(), 4);
    }

    #[test]
    fn names() {
        assert_eq!(IsolationLevel::Serializability.to_string(), "SER");
        assert_eq!(IsolationLevel::Trivial.short_name(), "true");
        assert_eq!(IsolationLevel::CausalConsistency.short_name(), "CC");
        assert_eq!(IsolationLevel::PrefixConsistency.short_name(), "PC");
    }

    #[test]
    fn empty_history_satisfies_everything() {
        let h = History::default();
        for l in IsolationLevel::ALL {
            assert!(l.satisfies(&h), "{l} should accept the empty history");
        }
    }

    #[test]
    fn level_from_str_round_trips_short_names() {
        for l in IsolationLevel::ALL {
            assert_eq!(l.short_name().parse::<IsolationLevel>(), Ok(l));
        }
        assert_eq!(
            "true".parse::<IsolationLevel>(),
            Ok(IsolationLevel::Trivial)
        );
        let err = "serializable".parse::<IsolationLevel>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("serializable"), "{msg}");
        for l in IsolationLevel::ALL {
            assert!(msg.contains(l.short_name()), "{msg} misses {l}");
        }
    }

    #[test]
    fn spec_normalisation_and_lookup() {
        use IsolationLevel::*;
        let spec = LevelSpec::uniform(CausalConsistency)
            .with_override(0, 1, Serializability)
            .with_override(2, 0, ReadCommitted)
            .with_override(1, 3, CausalConsistency); // == default: dropped
        assert_eq!(spec.as_uniform(), None);
        assert_eq!(spec.level_of(0, 1), Serializability);
        assert_eq!(spec.level_of(2, 0), ReadCommitted);
        assert_eq!(spec.level_of(1, 3), CausalConsistency);
        assert_eq!(spec.level_of(7, 7), CausalConsistency);
        assert_eq!(spec.overrides().len(), 2);
        // Replacing an override, then normalising it away, restores the
        // uniform spec exactly (equal hash and label).
        let back = spec
            .clone()
            .with_override(0, 1, ReadAtomic)
            .with_override(0, 1, CausalConsistency)
            .with_override(2, 0, CausalConsistency);
        assert_eq!(back, LevelSpec::uniform(CausalConsistency));
        assert_eq!(back.as_uniform(), Some(CausalConsistency));
        assert_eq!(
            back.spec_hash(),
            LevelSpec::uniform(CausalConsistency).spec_hash()
        );
        assert_ne!(back.spec_hash(), spec.spec_hash());
    }

    #[test]
    fn spec_labels() {
        use IsolationLevel::*;
        assert_eq!(LevelSpec::uniform(Serializability).label(), "SER");
        let spec = LevelSpec::uniform(CausalConsistency)
            .with_override(0, 1, Serializability)
            .with_override(2, 0, ReadCommitted);
        assert_eq!(spec.label(), "CC[s0.t1=SER,s2.t0=RC]");
        assert_eq!(spec.to_string(), spec.label());
    }

    #[test]
    fn spec_labels_round_trip_through_from_str() {
        use IsolationLevel::*;
        let specs = [
            LevelSpec::uniform(Serializability),
            LevelSpec::uniform(Trivial),
            LevelSpec::uniform(CausalConsistency)
                .with_override(0, 1, Serializability)
                .with_override(2, 0, ReadCommitted),
            LevelSpec::uniform(SnapshotIsolation).with_override(10, 42, PrefixConsistency),
        ];
        for spec in specs {
            assert_eq!(
                spec.label().parse::<LevelSpec>(),
                Ok(spec.clone()),
                "{spec}"
            );
        }
        assert_eq!(
            "CC[s0.t1=SER]".parse::<LevelSpec>(),
            Ok(LevelSpec::uniform(CausalConsistency).with_override(0, 1, Serializability))
        );
        // Overrides equal to the default normalise away, as in `with_override`.
        assert_eq!(
            "CC[s0.t1=CC]".parse::<LevelSpec>(),
            Ok(LevelSpec::uniform(CausalConsistency))
        );
    }

    #[test]
    fn spec_parse_errors_list_accepted_level_names() {
        let err = "XX[s0.t1=SER]".parse::<LevelSpec>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("XX"), "{msg}");
        for l in IsolationLevel::ALL {
            assert!(msg.contains(l.short_name()), "{msg} misses {l}");
        }
        let err = "CC[s0.t1=serializable]".parse::<LevelSpec>().unwrap_err();
        assert!(err.to_string().contains("serializable"), "{err}");
        for bad in ["CC[s0.t1=SER", "CC[]", "CC[0.1=SER]", "CC[s0t1=SER]"] {
            let err = bad.parse::<LevelSpec>().unwrap_err();
            assert!(err.to_string().contains("expected LEVEL"), "{bad}: {err}");
        }
    }

    #[test]
    fn spec_structural_queries() {
        use IsolationLevel::*;
        let weak = LevelSpec::uniform(CausalConsistency).with_override(0, 0, ReadCommitted);
        assert!(weak.is_causally_extensible());
        assert!(!weak.has_strong());
        assert!(weak.mentions(ReadCommitted));
        assert!(!weak.mentions(Serializability));
        let mixed = weak.clone().with_override(1, 1, Serializability);
        assert!(mixed.has_strong());
        assert!(!mixed.is_causally_extensible());
        // PC needs the commit-order search and is not causally extensible.
        let pc = weak.with_override(1, 1, PrefixConsistency);
        assert!(pc.has_strong());
        assert!(!pc.is_causally_extensible());
    }

    #[test]
    fn spec_pointwise_weaker_or_equal() {
        use IsolationLevel::*;
        let base = LevelSpec::uniform(ReadCommitted);
        let target = LevelSpec::uniform(Serializability).with_override(0, 1, ReadCommitted);
        assert!(base.weaker_or_equal(&target));
        assert!(!target.weaker_or_equal(&base));
        // CC is *stronger* than the RC position of the target.
        assert!(!LevelSpec::uniform(CausalConsistency).weaker_or_equal(&target));
        // Mixed vs mixed, differing on overridden positions only.
        let a = LevelSpec::uniform(CausalConsistency).with_override(0, 0, ReadAtomic);
        let b = LevelSpec::uniform(SnapshotIsolation).with_override(0, 0, CausalConsistency);
        assert!(a.weaker_or_equal(&b));
        assert!(!b.weaker_or_equal(&a));
        assert!(a.weaker_or_equal(&a));
    }
}
