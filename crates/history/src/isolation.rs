//! Isolation levels and their structural properties.
//!
//! The paper considers Read Committed, Read Atomic, Causal Consistency,
//! Snapshot Isolation and Serializability, plus the trivial level `true`
//! used as the weakest exploration base in `explore-ce*(true, I)`. Two
//! structural properties drive the design of the DPOR algorithm (§3):
//! *prefix closure* and *causal extensibility*.

use std::fmt;

use crate::check;
use crate::history::History;

/// A transactional isolation level.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IsolationLevel {
    /// The trivial isolation level where every history is consistent.
    Trivial,
    /// Read Committed (Fig. A.1a).
    ReadCommitted,
    /// Read Atomic, also called Repeatable Read in the literature (Fig. A.1b).
    ReadAtomic,
    /// Causal Consistency (Fig. 2a).
    CausalConsistency,
    /// Snapshot Isolation, defined by the Prefix and Conflict axioms
    /// (Fig. 2b and 2c).
    SnapshotIsolation,
    /// Serializability (Fig. 2d).
    Serializability,
}

impl IsolationLevel {
    /// All levels, from weakest to strongest.
    pub const ALL: [IsolationLevel; 6] = [
        IsolationLevel::Trivial,
        IsolationLevel::ReadCommitted,
        IsolationLevel::ReadAtomic,
        IsolationLevel::CausalConsistency,
        IsolationLevel::SnapshotIsolation,
        IsolationLevel::Serializability,
    ];

    /// The levels that are prefix-closed and causally extensible, i.e. those
    /// for which `explore-ce` is strongly optimal (§5).
    pub const CAUSALLY_EXTENSIBLE: [IsolationLevel; 4] = [
        IsolationLevel::Trivial,
        IsolationLevel::ReadCommitted,
        IsolationLevel::ReadAtomic,
        IsolationLevel::CausalConsistency,
    ];

    /// Short name used in tables and figures ("RC", "RA", "CC", "SI", "SER",
    /// "true").
    pub fn short_name(self) -> &'static str {
        match self {
            IsolationLevel::Trivial => "true",
            IsolationLevel::ReadCommitted => "RC",
            IsolationLevel::ReadAtomic => "RA",
            IsolationLevel::CausalConsistency => "CC",
            IsolationLevel::SnapshotIsolation => "SI",
            IsolationLevel::Serializability => "SER",
        }
    }

    /// Numeric strength rank: larger means stronger (admits fewer histories).
    fn rank(self) -> u8 {
        match self {
            IsolationLevel::Trivial => 0,
            IsolationLevel::ReadCommitted => 1,
            IsolationLevel::ReadAtomic => 2,
            IsolationLevel::CausalConsistency => 3,
            IsolationLevel::SnapshotIsolation => 4,
            IsolationLevel::Serializability => 5,
        }
    }

    /// Whether `self` is weaker than (or equal to) `other`: `self` admits
    /// at least the histories `other` admits, i.e. every `other`-consistent
    /// history is also `self`-consistent.
    pub fn weaker_or_equal(self, other: IsolationLevel) -> bool {
        self.rank() <= other.rank()
    }

    /// Whether the level is prefix-closed (Definition 3.1). All the levels
    /// considered in the paper are (Theorem 3.2).
    pub fn is_prefix_closed(self) -> bool {
        true
    }

    /// Whether the level is causally extensible (Definition 3.3,
    /// Theorem 3.4). Snapshot Isolation and Serializability are not.
    pub fn is_causally_extensible(self) -> bool {
        matches!(
            self,
            IsolationLevel::Trivial
                | IsolationLevel::ReadCommitted
                | IsolationLevel::ReadAtomic
                | IsolationLevel::CausalConsistency
        )
    }

    /// Whether the given history satisfies this isolation level
    /// (Definition 2.2): there exists a strict total commit order extending
    /// `so ∪ wr` that satisfies the level's axioms.
    ///
    /// Dispatches to the efficient specialised checkers in [`crate::check`].
    pub fn satisfies(self, h: &History) -> bool {
        check::satisfies(h, self)
    }
}

impl fmt::Display for IsolationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_of_levels() {
        use IsolationLevel::*;
        assert!(ReadCommitted.weaker_or_equal(Serializability));
        assert!(Trivial.weaker_or_equal(ReadCommitted));
        assert!(CausalConsistency.weaker_or_equal(SnapshotIsolation));
        assert!(!Serializability.weaker_or_equal(CausalConsistency));
        assert!(ReadAtomic.weaker_or_equal(ReadAtomic));
    }

    #[test]
    fn structural_properties() {
        use IsolationLevel::*;
        for l in IsolationLevel::ALL {
            assert!(l.is_prefix_closed());
        }
        assert!(CausalConsistency.is_causally_extensible());
        assert!(ReadCommitted.is_causally_extensible());
        assert!(ReadAtomic.is_causally_extensible());
        assert!(Trivial.is_causally_extensible());
        assert!(!SnapshotIsolation.is_causally_extensible());
        assert!(!Serializability.is_causally_extensible());
        assert_eq!(IsolationLevel::CAUSALLY_EXTENSIBLE.len(), 4);
    }

    #[test]
    fn names() {
        assert_eq!(IsolationLevel::Serializability.to_string(), "SER");
        assert_eq!(IsolationLevel::Trivial.short_name(), "true");
        assert_eq!(IsolationLevel::CausalConsistency.short_name(), "CC");
    }

    #[test]
    fn empty_history_satisfies_everything() {
        let h = History::default();
        for l in IsolationLevel::ALL {
            assert!(l.satisfies(&h), "{l} should accept the empty history");
        }
    }
}
