//! Efficient consistency checking of histories against isolation levels,
//! following the algorithms of Biswas & Enea (OOPSLA 2019) that the paper's
//! implementation relies on (§7.1).
//!
//! * Read Committed, Read Atomic and Causal Consistency are checked in
//!   polynomial time by saturating the commit-order constraints forced by
//!   the axioms (whose premises do not mention `co`) and testing acyclicity
//!   ([`weak`]).
//! * Serializability is checked by a memoised search over commit prefixes,
//!   polynomial for a fixed number of sessions ([`ser`]).
//! * Snapshot Isolation uses the classical start/commit interval
//!   characterisation, equivalent to the Prefix ∧ Conflict axioms
//!   ([`si`]).
//! * Prefix Consistency uses the same interval search without the
//!   write-conflict rule, preceded by the polynomial causal prerequisite
//!   ([`pc`]).
//! * Mixed per-transaction level assignments ([`crate::isolation::LevelSpec`])
//!   compose the weak forced-edge machinery with a commit-order search in
//!   which each transaction enforces its own level's reading rule
//!   ([`mixed`]).
//!
//! The slow axiom-level oracle in [`crate::axioms`] cross-validates all of
//! these in the test suite.

pub mod engine;
pub mod evidence;
pub(crate) mod frontier;
pub mod mixed;
pub mod pc;
pub mod ser;
pub mod shared;
pub mod si;
pub mod weak;

use crate::history::History;
use crate::isolation::IsolationLevel;

pub use engine::{
    engine_for, engine_for_spec, engine_for_spec_with, engine_for_with, ConsistencyChecker,
    EngineStats, MixedEngine,
};
pub use evidence::{AxiomInstance, EdgeReason, Verdict, Violation, ViolationEdge, Witness};
pub use mixed::satisfies_spec;
pub use shared::SharedMemo;

/// Whether the history satisfies the isolation level (Definition 2.2).
///
/// This is the stateless entry point: it builds a fresh
/// [`ConsistencyChecker`] engine and runs a single check, so nothing is
/// amortised across calls. Long-running explorations should create an
/// engine once (via [`engine_for`]) and reuse it.
pub fn satisfies(h: &History, level: IsolationLevel) -> bool {
    match level {
        IsolationLevel::Trivial => true,
        IsolationLevel::ReadCommitted
        | IsolationLevel::ReadAtomic
        | IsolationLevel::CausalConsistency => weak::satisfies_weak(h, level),
        IsolationLevel::Serializability => ser::satisfies_ser(h),
        IsolationLevel::SnapshotIsolation => si::satisfies_si(h),
        IsolationLevel::PrefixConsistency => pc::satisfies_pc(h),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms::oracle_satisfies;
    use crate::event::{Event, EventId, EventKind};
    use crate::transaction::{SessionId, TxId};
    use crate::value::{Value, Var};

    /// A tiny deterministic pseudo-random generator (xorshift), so the
    /// cross-validation test does not need external crates here.
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// Generates a small random history: `n_sessions` sessions, up to
    /// `max_tx` transactions each, over `n_vars` variables. Reads pick an
    /// arbitrary committed-so-far writer of the variable (or init), so the
    /// result is always a well-formed history though not necessarily
    /// consistent with any particular level.
    fn random_history(seed: u64, n_sessions: u32, max_tx: u32, n_vars: u32) -> History {
        let mut rng = XorShift(seed.wrapping_mul(2654435761).wrapping_add(1));
        let mut h = History::new([]);
        let mut next_event = 0u32;
        let mut next_tx = 0u32;
        let mut committed_writers: Vec<(Var, TxId)> = Vec::new();
        let fresh = |next_event: &mut u32| {
            *next_event += 1;
            EventId(*next_event)
        };
        for s in 0..n_sessions {
            let n_tx = 1 + rng.below(max_tx as u64) as u32;
            for idx in 0..n_tx {
                next_tx += 1;
                let tx = TxId(next_tx);
                h.begin_transaction(
                    SessionId(s),
                    tx,
                    idx as usize,
                    Event::new(fresh(&mut next_event), EventKind::Begin),
                );
                let n_ops = 1 + rng.below(3);
                let mut wrote: Vec<Var> = Vec::new();
                for _ in 0..n_ops {
                    let x = Var(rng.below(n_vars as u64) as u32);
                    if rng.below(2) == 0 {
                        // write
                        let v = rng.below(5) as i64;
                        h.append_event(
                            SessionId(s),
                            Event::new(fresh(&mut next_event), EventKind::Write(x, Value::Int(v))),
                        );
                        wrote.push(x);
                    } else {
                        // read; external only if not written before in this tx
                        let e = Event::new(fresh(&mut next_event), EventKind::Read(x));
                        let id = e.id;
                        h.append_event(SessionId(s), e);
                        if !wrote.contains(&x) {
                            let candidates: Vec<TxId> = std::iter::once(TxId::INIT)
                                .chain(
                                    committed_writers
                                        .iter()
                                        .filter(|(y, _)| *y == x)
                                        .map(|(_, t)| *t),
                                )
                                .collect();
                            let pick = candidates[rng.below(candidates.len() as u64) as usize];
                            h.set_wr(id, pick);
                        }
                    }
                }
                h.append_event(
                    SessionId(s),
                    Event::new(fresh(&mut next_event), EventKind::Commit),
                );
                for x in wrote {
                    committed_writers.push((x, tx));
                }
            }
        }
        h
    }

    #[test]
    fn specialised_checkers_agree_with_oracle_on_random_histories() {
        let levels = [
            IsolationLevel::ReadCommitted,
            IsolationLevel::ReadAtomic,
            IsolationLevel::CausalConsistency,
            IsolationLevel::PrefixConsistency,
            IsolationLevel::SnapshotIsolation,
            IsolationLevel::Serializability,
        ];
        for seed in 0..400u64 {
            let h = random_history(seed, 3, 2, 2);
            for level in levels {
                let fast = satisfies(&h, level);
                let slow = oracle_satisfies(&h, level);
                assert_eq!(
                    fast, slow,
                    "checker mismatch for {level} on seed {seed}:\n{h}"
                );
            }
        }
    }

    #[test]
    fn mixed_checker_agrees_with_oracle_on_random_histories_and_specs() {
        // The operational mixed checker (forced edges + commit-order
        // search with SI intervals) against the axiom-level oracle that
        // instantiates each read's axioms by its reader's level — over
        // random histories and random per-transaction assignments drawn
        // from ALL levels, SI and `true` included.
        use crate::axioms::oracle_satisfies_spec;
        use crate::isolation::LevelSpec;
        for seed in 0..300u64 {
            let h = random_history(seed, 3, 2, 2);
            let mut rng = XorShift(seed.wrapping_mul(0x9e3779b9).wrapping_add(0xabcdef));
            let n = IsolationLevel::ALL.len() as u64;
            let default = IsolationLevel::ALL[rng.below(n) as usize];
            let mut spec = LevelSpec::uniform(default);
            for (sid, txs) in h.sessions() {
                for k in 0..txs.len() {
                    if rng.below(2) == 0 {
                        let l = IsolationLevel::ALL[rng.below(n) as usize];
                        spec = spec.with_override(sid.0, k as u32, l);
                    }
                }
            }
            let fast = satisfies_spec(&h, &spec);
            let slow = oracle_satisfies_spec(&h, &spec);
            assert_eq!(
                fast, slow,
                "mixed checker mismatch for spec {spec} on seed {seed}:\n{h}"
            );
        }
    }

    #[test]
    fn uniform_specs_route_to_the_uniform_checkers() {
        use crate::isolation::LevelSpec;
        for seed in 600..700u64 {
            let h = random_history(seed, 3, 2, 2);
            for level in IsolationLevel::ALL {
                assert_eq!(
                    satisfies_spec(&h, &LevelSpec::uniform(level)),
                    satisfies(&h, level),
                    "uniform {level} spec diverged on seed {seed}"
                );
            }
        }
    }

    /// Validates an evidence verdict against the history it was produced
    /// for: the witness must replay through the axiom-level oracle, the
    /// violation cycle must be closed, simple, built from edges that
    /// really exist (or axiom instances that really apply), and minimal —
    /// dropping any single edge leaves the remaining edge set acyclic.
    fn assert_verdict_valid(
        h: &History,
        spec: &crate::isolation::LevelSpec,
        verdict: &Verdict,
        expected: bool,
        ctx: &str,
    ) {
        match verdict {
            Verdict::Consistent(w) => {
                assert!(expected, "witness produced for an inconsistent {ctx}");
                assert!(
                    w.replays(h, spec),
                    "witness fails to replay for {ctx}: {w}\n{h}"
                );
            }
            Verdict::Inconsistent(v) => {
                assert!(!expected, "violation produced for a consistent {ctx}");
                assert!(!v.cycle.is_empty(), "empty violation cycle for {ctx}");
                let mut seen = std::collections::BTreeSet::new();
                for (k, e) in v.cycle.iter().enumerate() {
                    let next = &v.cycle[(k + 1) % v.cycle.len()];
                    assert_eq!(e.to, next.from, "cycle not closed for {ctx}: {v}");
                    assert!(seen.insert(e.from), "cycle not simple for {ctx}: {v}");
                    match &e.reason {
                        EdgeReason::SessionOrder => {
                            assert!(h.so_before(e.from, e.to), "bogus so edge for {ctx}: {v}");
                        }
                        EdgeReason::WriteRead => {
                            assert!(h.wr_tx_edge(e.from, e.to), "bogus wr edge for {ctx}: {v}");
                        }
                        EdgeReason::Forced(i) => {
                            assert!(
                                h.reads_from().iter().any(|(t3, _, x, t1)| *t3 == i.reader
                                    && *x == i.var
                                    && *t1 == i.source),
                                "axiom instance cites a non-existent read for {ctx}: {v}"
                            );
                            assert!(
                                h.writes_var(i.writer, i.var),
                                "axiom instance cites a non-writer for {ctx}: {v}"
                            );
                            assert!(
                                crate::axioms::axioms_for(spec.level_of_tx(h, i.reader))
                                    .contains(&i.axiom),
                                "axiom instance outside the reader's level for {ctx}: {v}"
                            );
                        }
                        EdgeReason::Hypothesis => {
                            panic!("hypothesis edge on the committed corpus for {ctx}: {v}")
                        }
                    }
                }
                // Minimality: dropping any one edge leaves an edge set with
                // no cycle at all (no vertex reaches itself).
                for drop in 0..v.cycle.len() {
                    let rest: Vec<(TxId, TxId)> = v
                        .cycle
                        .iter()
                        .enumerate()
                        .filter(|(k, _)| *k != drop)
                        .map(|(_, e)| (e.from, e.to))
                        .collect();
                    for &(start, _) in &rest {
                        let mut frontier: Vec<TxId> = vec![start];
                        let mut reached = std::collections::BTreeSet::new();
                        while let Some(t) = frontier.pop() {
                            for &(a, b) in &rest {
                                if a == t && reached.insert(b) {
                                    frontier.push(b);
                                    assert_ne!(
                                        b, start,
                                        "cycle not minimal for {ctx}: \
                                         dropping edge {drop} leaves a cycle: {v}"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn witnessed_verdicts_cross_validate_on_random_histories() {
        for seed in 0..400u64 {
            let h = random_history(seed, 3, 2, 2);
            for level in IsolationLevel::ALL {
                let spec = crate::isolation::LevelSpec::uniform(level);
                let mut engine = engine_for(level);
                let verdict = engine.check_witnessed(&h);
                let expected = satisfies(&h, level);
                assert_verdict_valid(
                    &h,
                    &spec,
                    &verdict,
                    expected,
                    &format!("{level} on seed {seed}"),
                );
            }
        }
    }

    #[test]
    fn witnessed_verdicts_cross_validate_on_random_specs() {
        // Same corpus of history × per-transaction-spec pairs as the
        // boolean mixed cross-validation above: every success must come
        // with a replayable witness, every failure with a checkable
        // minimal cycle.
        use crate::isolation::LevelSpec;
        for seed in 0..300u64 {
            let h = random_history(seed, 3, 2, 2);
            let mut rng = XorShift(seed.wrapping_mul(0x9e3779b9).wrapping_add(0xabcdef));
            let n = IsolationLevel::ALL.len() as u64;
            let default = IsolationLevel::ALL[rng.below(n) as usize];
            let mut spec = LevelSpec::uniform(default);
            for (sid, txs) in h.sessions() {
                for k in 0..txs.len() {
                    if rng.below(2) == 0 {
                        let l = IsolationLevel::ALL[rng.below(n) as usize];
                        spec = spec.with_override(sid.0, k as u32, l);
                    }
                }
            }
            let mut engine = engine_for_spec(&spec);
            let verdict = engine.check_witnessed(&h);
            let expected = satisfies_spec(&h, &spec);
            assert_verdict_valid(
                &h,
                &spec,
                &verdict,
                expected,
                &format!("spec {spec} on seed {seed}"),
            );
        }
    }

    #[test]
    fn stronger_levels_accept_fewer_histories() {
        // SER ⊆ SI ⊆ PC ⊆ CC ⊆ RA ⊆ RC on random histories.
        for seed in 400..600u64 {
            let h = random_history(seed, 3, 2, 2);
            let rc = satisfies(&h, IsolationLevel::ReadCommitted);
            let ra = satisfies(&h, IsolationLevel::ReadAtomic);
            let cc = satisfies(&h, IsolationLevel::CausalConsistency);
            let pc = satisfies(&h, IsolationLevel::PrefixConsistency);
            let si = satisfies(&h, IsolationLevel::SnapshotIsolation);
            let ser = satisfies(&h, IsolationLevel::Serializability);
            assert!(!ser || si, "SER must imply SI (seed {seed})");
            assert!(!si || pc, "SI must imply PC (seed {seed})");
            assert!(!pc || cc, "PC must imply CC (seed {seed})");
            assert!(!cc || ra, "CC must imply RA (seed {seed})");
            assert!(!ra || rc, "RA must imply RC (seed {seed})");
        }
    }
}
