//! Efficient consistency checking of histories against isolation levels,
//! following the algorithms of Biswas & Enea (OOPSLA 2019) that the paper's
//! implementation relies on (§7.1).
//!
//! * Read Committed, Read Atomic and Causal Consistency are checked in
//!   polynomial time by saturating the commit-order constraints forced by
//!   the axioms (whose premises do not mention `co`) and testing acyclicity
//!   ([`weak`]).
//! * Serializability is checked by a memoised search over commit prefixes,
//!   polynomial for a fixed number of sessions ([`ser`]).
//! * Snapshot Isolation uses the classical start/commit interval
//!   characterisation, equivalent to the Prefix ∧ Conflict axioms
//!   ([`si`]).
//! * Prefix Consistency uses the same interval search without the
//!   write-conflict rule, preceded by the polynomial causal prerequisite
//!   ([`pc`]).
//! * Mixed per-transaction level assignments ([`crate::isolation::LevelSpec`])
//!   compose the weak forced-edge machinery with a commit-order search in
//!   which each transaction enforces its own level's reading rule
//!   ([`mixed`]).
//!
//! The slow axiom-level oracle in [`crate::axioms`] cross-validates all of
//! these in the test suite.

pub mod engine;
pub mod evidence;
pub(crate) mod frontier;
pub mod mixed;
pub mod pc;
pub mod ser;
pub mod shared;
pub mod si;
pub mod weak;

use crate::history::History;
use crate::isolation::IsolationLevel;

pub use engine::{
    engine_for, engine_for_spec, engine_for_spec_with, engine_for_with, ConsistencyChecker,
    EngineStats, MixedEngine,
};
pub use evidence::{AxiomInstance, EdgeReason, Verdict, Violation, ViolationEdge, Witness};
pub use mixed::satisfies_spec;
pub use shared::SharedMemo;

/// Whether the history satisfies the isolation level (Definition 2.2).
///
/// This is the stateless entry point: it builds a fresh
/// [`ConsistencyChecker`] engine and runs a single check, so nothing is
/// amortised across calls. Long-running explorations should create an
/// engine once (via [`engine_for`]) and reuse it.
pub fn satisfies(h: &History, level: IsolationLevel) -> bool {
    match level {
        IsolationLevel::Trivial => true,
        IsolationLevel::ReadCommitted
        | IsolationLevel::ReadAtomic
        | IsolationLevel::CausalConsistency => weak::satisfies_weak(h, level),
        IsolationLevel::Serializability => ser::satisfies_ser(h),
        IsolationLevel::SnapshotIsolation => si::satisfies_si(h),
        IsolationLevel::PrefixConsistency => pc::satisfies_pc(h),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms::oracle_satisfies;
    use crate::testkit::{assert_verdict_valid, random_history, XorShift};

    #[test]
    fn specialised_checkers_agree_with_oracle_on_random_histories() {
        let levels = [
            IsolationLevel::ReadCommitted,
            IsolationLevel::ReadAtomic,
            IsolationLevel::CausalConsistency,
            IsolationLevel::PrefixConsistency,
            IsolationLevel::SnapshotIsolation,
            IsolationLevel::Serializability,
        ];
        for seed in 0..400u64 {
            let h = random_history(seed, 3, 2, 2);
            for level in levels {
                let fast = satisfies(&h, level);
                let slow = oracle_satisfies(&h, level);
                assert_eq!(
                    fast, slow,
                    "checker mismatch for {level} on seed {seed}:\n{h}"
                );
            }
        }
    }

    #[test]
    fn mixed_checker_agrees_with_oracle_on_random_histories_and_specs() {
        // The operational mixed checker (forced edges + commit-order
        // search with SI intervals) against the axiom-level oracle that
        // instantiates each read's axioms by its reader's level — over
        // random histories and random per-transaction assignments drawn
        // from ALL levels, SI and `true` included.
        use crate::axioms::oracle_satisfies_spec;
        use crate::isolation::LevelSpec;
        for seed in 0..300u64 {
            let h = random_history(seed, 3, 2, 2);
            let mut rng = XorShift(seed.wrapping_mul(0x9e3779b9).wrapping_add(0xabcdef));
            let n = IsolationLevel::ALL.len() as u64;
            let default = IsolationLevel::ALL[rng.below(n) as usize];
            let mut spec = LevelSpec::uniform(default);
            for (sid, txs) in h.sessions() {
                for k in 0..txs.len() {
                    if rng.below(2) == 0 {
                        let l = IsolationLevel::ALL[rng.below(n) as usize];
                        spec = spec.with_override(sid.0, k as u32, l);
                    }
                }
            }
            let fast = satisfies_spec(&h, &spec);
            let slow = oracle_satisfies_spec(&h, &spec);
            assert_eq!(
                fast, slow,
                "mixed checker mismatch for spec {spec} on seed {seed}:\n{h}"
            );
        }
    }

    #[test]
    fn uniform_specs_route_to_the_uniform_checkers() {
        use crate::isolation::LevelSpec;
        for seed in 600..700u64 {
            let h = random_history(seed, 3, 2, 2);
            for level in IsolationLevel::ALL {
                assert_eq!(
                    satisfies_spec(&h, &LevelSpec::uniform(level)),
                    satisfies(&h, level),
                    "uniform {level} spec diverged on seed {seed}"
                );
            }
        }
    }

    #[test]
    fn witnessed_verdicts_cross_validate_on_random_histories() {
        for seed in 0..400u64 {
            let h = random_history(seed, 3, 2, 2);
            for level in IsolationLevel::ALL {
                let spec = crate::isolation::LevelSpec::uniform(level);
                let mut engine = engine_for(level);
                let verdict = engine.check_witnessed(&h);
                let expected = satisfies(&h, level);
                assert_verdict_valid(
                    &h,
                    &spec,
                    &verdict,
                    expected,
                    &format!("{level} on seed {seed}"),
                );
            }
        }
    }

    #[test]
    fn witnessed_verdicts_cross_validate_on_random_specs() {
        // Same corpus of history × per-transaction-spec pairs as the
        // boolean mixed cross-validation above: every success must come
        // with a replayable witness, every failure with a checkable
        // minimal cycle.
        use crate::isolation::LevelSpec;
        for seed in 0..300u64 {
            let h = random_history(seed, 3, 2, 2);
            let mut rng = XorShift(seed.wrapping_mul(0x9e3779b9).wrapping_add(0xabcdef));
            let n = IsolationLevel::ALL.len() as u64;
            let default = IsolationLevel::ALL[rng.below(n) as usize];
            let mut spec = LevelSpec::uniform(default);
            for (sid, txs) in h.sessions() {
                for k in 0..txs.len() {
                    if rng.below(2) == 0 {
                        let l = IsolationLevel::ALL[rng.below(n) as usize];
                        spec = spec.with_override(sid.0, k as u32, l);
                    }
                }
            }
            let mut engine = engine_for_spec(&spec);
            let verdict = engine.check_witnessed(&h);
            let expected = satisfies_spec(&h, &spec);
            assert_verdict_valid(
                &h,
                &spec,
                &verdict,
                expected,
                &format!("spec {spec} on seed {seed}"),
            );
        }
    }

    #[test]
    fn stronger_levels_accept_fewer_histories() {
        // SER ⊆ SI ⊆ PC ⊆ CC ⊆ RA ⊆ RC on random histories.
        for seed in 400..600u64 {
            let h = random_history(seed, 3, 2, 2);
            let rc = satisfies(&h, IsolationLevel::ReadCommitted);
            let ra = satisfies(&h, IsolationLevel::ReadAtomic);
            let cc = satisfies(&h, IsolationLevel::CausalConsistency);
            let pc = satisfies(&h, IsolationLevel::PrefixConsistency);
            let si = satisfies(&h, IsolationLevel::SnapshotIsolation);
            let ser = satisfies(&h, IsolationLevel::Serializability);
            assert!(!ser || si, "SER must imply SI (seed {seed})");
            assert!(!si || pc, "SI must imply PC (seed {seed})");
            assert!(!pc || cc, "PC must imply CC (seed {seed})");
            assert!(!cc || ra, "CC must imply RA (seed {seed})");
            assert!(!ra || rc, "RA must imply RC (seed {seed})");
        }
    }
}
