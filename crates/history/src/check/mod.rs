//! Efficient consistency checking of histories against isolation levels,
//! following the algorithms of Biswas & Enea (OOPSLA 2019) that the paper's
//! implementation relies on (§7.1).
//!
//! * Read Committed, Read Atomic and Causal Consistency are checked in
//!   polynomial time by saturating the commit-order constraints forced by
//!   the axioms (whose premises do not mention `co`) and testing acyclicity
//!   ([`weak`]).
//! * Serializability is checked by a memoised search over commit prefixes,
//!   polynomial for a fixed number of sessions ([`ser`]).
//! * Snapshot Isolation uses the classical start/commit interval
//!   characterisation, equivalent to the Prefix ∧ Conflict axioms
//!   ([`si`]).
//! * Mixed per-transaction level assignments ([`crate::isolation::LevelSpec`])
//!   compose the weak forced-edge machinery with a commit-order search in
//!   which each transaction enforces its own level's reading rule
//!   ([`mixed`]).
//!
//! The slow axiom-level oracle in [`crate::axioms`] cross-validates all of
//! these in the test suite.

pub mod engine;
pub(crate) mod frontier;
pub mod mixed;
pub mod ser;
pub mod si;
pub mod weak;

use crate::history::History;
use crate::isolation::IsolationLevel;

pub use engine::{
    engine_for, engine_for_spec, engine_for_spec_with, engine_for_with, ConsistencyChecker,
    EngineStats, MixedEngine,
};
pub use mixed::satisfies_spec;

/// Whether the history satisfies the isolation level (Definition 2.2).
///
/// This is the stateless entry point: it builds a fresh
/// [`ConsistencyChecker`] engine and runs a single check, so nothing is
/// amortised across calls. Long-running explorations should create an
/// engine once (via [`engine_for`]) and reuse it.
pub fn satisfies(h: &History, level: IsolationLevel) -> bool {
    match level {
        IsolationLevel::Trivial => true,
        IsolationLevel::ReadCommitted
        | IsolationLevel::ReadAtomic
        | IsolationLevel::CausalConsistency => weak::satisfies_weak(h, level),
        IsolationLevel::Serializability => ser::satisfies_ser(h),
        IsolationLevel::SnapshotIsolation => si::satisfies_si(h),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms::oracle_satisfies;
    use crate::event::{Event, EventId, EventKind};
    use crate::transaction::{SessionId, TxId};
    use crate::value::{Value, Var};

    /// A tiny deterministic pseudo-random generator (xorshift), so the
    /// cross-validation test does not need external crates here.
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// Generates a small random history: `n_sessions` sessions, up to
    /// `max_tx` transactions each, over `n_vars` variables. Reads pick an
    /// arbitrary committed-so-far writer of the variable (or init), so the
    /// result is always a well-formed history though not necessarily
    /// consistent with any particular level.
    fn random_history(seed: u64, n_sessions: u32, max_tx: u32, n_vars: u32) -> History {
        let mut rng = XorShift(seed.wrapping_mul(2654435761).wrapping_add(1));
        let mut h = History::new([]);
        let mut next_event = 0u32;
        let mut next_tx = 0u32;
        let mut committed_writers: Vec<(Var, TxId)> = Vec::new();
        let fresh = |next_event: &mut u32| {
            *next_event += 1;
            EventId(*next_event)
        };
        for s in 0..n_sessions {
            let n_tx = 1 + rng.below(max_tx as u64) as u32;
            for idx in 0..n_tx {
                next_tx += 1;
                let tx = TxId(next_tx);
                h.begin_transaction(
                    SessionId(s),
                    tx,
                    idx as usize,
                    Event::new(fresh(&mut next_event), EventKind::Begin),
                );
                let n_ops = 1 + rng.below(3);
                let mut wrote: Vec<Var> = Vec::new();
                for _ in 0..n_ops {
                    let x = Var(rng.below(n_vars as u64) as u32);
                    if rng.below(2) == 0 {
                        // write
                        let v = rng.below(5) as i64;
                        h.append_event(
                            SessionId(s),
                            Event::new(fresh(&mut next_event), EventKind::Write(x, Value::Int(v))),
                        );
                        wrote.push(x);
                    } else {
                        // read; external only if not written before in this tx
                        let e = Event::new(fresh(&mut next_event), EventKind::Read(x));
                        let id = e.id;
                        h.append_event(SessionId(s), e);
                        if !wrote.contains(&x) {
                            let candidates: Vec<TxId> = std::iter::once(TxId::INIT)
                                .chain(
                                    committed_writers
                                        .iter()
                                        .filter(|(y, _)| *y == x)
                                        .map(|(_, t)| *t),
                                )
                                .collect();
                            let pick = candidates[rng.below(candidates.len() as u64) as usize];
                            h.set_wr(id, pick);
                        }
                    }
                }
                h.append_event(
                    SessionId(s),
                    Event::new(fresh(&mut next_event), EventKind::Commit),
                );
                for x in wrote {
                    committed_writers.push((x, tx));
                }
            }
        }
        h
    }

    #[test]
    fn specialised_checkers_agree_with_oracle_on_random_histories() {
        let levels = [
            IsolationLevel::ReadCommitted,
            IsolationLevel::ReadAtomic,
            IsolationLevel::CausalConsistency,
            IsolationLevel::SnapshotIsolation,
            IsolationLevel::Serializability,
        ];
        for seed in 0..400u64 {
            let h = random_history(seed, 3, 2, 2);
            for level in levels {
                let fast = satisfies(&h, level);
                let slow = oracle_satisfies(&h, level);
                assert_eq!(
                    fast, slow,
                    "checker mismatch for {level} on seed {seed}:\n{h}"
                );
            }
        }
    }

    #[test]
    fn mixed_checker_agrees_with_oracle_on_random_histories_and_specs() {
        // The operational mixed checker (forced edges + commit-order
        // search with SI intervals) against the axiom-level oracle that
        // instantiates each read's axioms by its reader's level — over
        // random histories and random per-transaction assignments drawn
        // from ALL levels, SI and `true` included.
        use crate::axioms::oracle_satisfies_spec;
        use crate::isolation::LevelSpec;
        for seed in 0..300u64 {
            let h = random_history(seed, 3, 2, 2);
            let mut rng = XorShift(seed.wrapping_mul(0x9e3779b9).wrapping_add(0xabcdef));
            let default = IsolationLevel::ALL[rng.below(6) as usize];
            let mut spec = LevelSpec::uniform(default);
            for (sid, txs) in h.sessions() {
                for k in 0..txs.len() {
                    if rng.below(2) == 0 {
                        let l = IsolationLevel::ALL[rng.below(6) as usize];
                        spec = spec.with_override(sid.0, k as u32, l);
                    }
                }
            }
            let fast = satisfies_spec(&h, &spec);
            let slow = oracle_satisfies_spec(&h, &spec);
            assert_eq!(
                fast, slow,
                "mixed checker mismatch for spec {spec} on seed {seed}:\n{h}"
            );
        }
    }

    #[test]
    fn uniform_specs_route_to_the_uniform_checkers() {
        use crate::isolation::LevelSpec;
        for seed in 600..700u64 {
            let h = random_history(seed, 3, 2, 2);
            for level in IsolationLevel::ALL {
                assert_eq!(
                    satisfies_spec(&h, &LevelSpec::uniform(level)),
                    satisfies(&h, level),
                    "uniform {level} spec diverged on seed {seed}"
                );
            }
        }
    }

    #[test]
    fn stronger_levels_accept_fewer_histories() {
        // SER ⊆ SI ⊆ CC ⊆ RA ⊆ RC on random histories.
        for seed in 400..600u64 {
            let h = random_history(seed, 3, 2, 2);
            let rc = satisfies(&h, IsolationLevel::ReadCommitted);
            let ra = satisfies(&h, IsolationLevel::ReadAtomic);
            let cc = satisfies(&h, IsolationLevel::CausalConsistency);
            let si = satisfies(&h, IsolationLevel::SnapshotIsolation);
            let ser = satisfies(&h, IsolationLevel::Serializability);
            assert!(!ser || si, "SER must imply SI (seed {seed})");
            assert!(!si || cc, "SI must imply CC (seed {seed})");
            assert!(!cc || ra, "CC must imply RA (seed {seed})");
            assert!(!ra || rc, "RA must imply RC (seed {seed})");
        }
    }
}
