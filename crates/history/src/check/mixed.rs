//! Consistency checking against *mixed* per-transaction isolation levels.
//!
//! Real databases run heterogeneous workloads — read-only analytics at
//! Read Committed next to payment transactions at Serializability — and a
//! [`LevelSpec`] assigns each transaction its own level. A history
//! satisfies a spec when there is a strict total commit order extending
//! `so ∪ wr` in which every transaction obeys the axioms of *its own*
//! level (the per-transaction generalisation of Definition 2.2, following
//! *On the Complexity of Checking Mixed Isolation Levels for SQL
//! Transactions*).
//!
//! The decision procedure composes the two per-level machineries:
//!
//! * **Weak readers** (RC/RA/CC): their axiom premises never mention the
//!   commit order, so each such read contributes a set of *forced* edges
//!   computed by the incrementally synced `WeakIndex` — exactly the
//!   per-level rules of the uniform checkers, selected per reader.
//! * **Strong transactions** (SER/SI/PC): decided by a session-frontier
//!   search over commit orders, shared with the uniform SER/SI/PC checkers
//!   via `FrontierIndex`. Serializability transactions are placed
//!   *atomically* and must read each variable from its last committed
//!   writer; Snapshot Isolation transactions occupy a start/commit
//!   *interval*: reads are checked against the snapshot at start, and no
//!   transaction writing a common variable may commit inside the interval
//!   (the Conflict axiom; for two SI transactions this is the classical
//!   disjoint-interval rule). Prefix Consistency transactions occupy an
//!   interval with the same snapshot reads but no conflict rule in either
//!   direction. Weak and `true` transactions are placed atomically with no
//!   read constraint beyond `wr ⊆ co` and their forced edges.
//!
//! When the spec assigns no strong level the search degenerates to plain
//! acyclicity of `so ∪ wr ∪ forced` (Kahn), and a *uniform* spec
//! reproduces the corresponding uniform checker verdict bit-for-bit —
//! pinned by the cross-validation tests in [`crate::check`] and the
//! engine property suites.

use std::collections::{BTreeMap, HashSet};

use crate::check::frontier::FrontierIndex;
use crate::check::weak::WeakIndex;
use crate::history::History;
use crate::isolation::{IsolationLevel, LevelSpec};
use crate::transaction::TxId;
use crate::value::Var;

/// Whether the history satisfies the mixed-level spec. Stateless entry
/// point: builds fresh indexes per call. Long-running explorations should
/// use the memoised engine from [`crate::check::engine::engine_for_spec`].
pub fn satisfies_spec(h: &History, spec: &LevelSpec) -> bool {
    if let Some(level) = spec.as_uniform() {
        return crate::check::satisfies(h, level);
    }
    let mut weak = WeakIndex::new_spec(spec.clone());
    let mut frontier = FrontierIndex::default();
    let mut scratch = MixedScratch::default();
    weak.sync(h);
    if spec.has_strong() {
        frontier.sync(h);
    }
    decide_mixed(spec, &mut weak, &mut frontier, &mut scratch)
}

/// Failed-state key of the mixed search: the per-session frontier with the
/// started flag of the session's current transaction, plus the
/// last-committed writer of every variable. The committed set is a
/// function of the frontiers, so it is not part of the key.
pub(crate) type StateKey = (Vec<(usize, bool)>, Vec<(u32, u32)>);

/// Reusable buffers of the mixed decision procedure, owned by the mixed
/// engine so repeated checks allocate nothing.
#[derive(Debug, Default)]
pub(crate) struct MixedScratch {
    /// Forced commit-order edges of the weak readers, as transaction ids.
    forced_tx: Vec<(TxId, TxId)>,
    /// `slot ↦` the level the spec assigns the slot's transaction.
    slot_level: Vec<IsolationLevel>,
    /// `slot ↦` forced-edge predecessor slots (must commit first).
    preds: Vec<Vec<u32>>,
    /// `slot ↦` whether the slot is committed in the current search prefix.
    committed: Vec<bool>,
    /// Memoised failed states (cleared per check; entries are only
    /// meaningful within one history).
    memo: HashSet<StateKey>,
}

/// Decides the spec for the history both indexes are synced to. The weak
/// index must have been built with the same spec (it selects each forced
/// edge by its reader's level).
pub(crate) fn decide_mixed(
    spec: &LevelSpec,
    weak: &mut WeakIndex,
    frontier: &mut FrontierIndex,
    scratch: &mut MixedScratch,
) -> bool {
    if spec.as_uniform() == Some(IsolationLevel::Trivial) {
        // Uniformly `true` is the paper's trivial level: every history is
        // consistent, with no commit-order obligation — matching
        // `TrivialEngine` exactly. (A *mixed* spec with `true` positions
        // keeps Definition 2.2's requirement that a commit order
        // extending `so ∪ wr` exists.)
        return true;
    }
    if !spec.has_strong() {
        // No SER/SI transaction: the axioms reduce to the forced edges,
        // and the spec holds iff `so ∪ wr ∪ forced` is acyclic.
        return weak.decide();
    }
    weak.collect_forced_tx(&mut scratch.forced_tx);
    let n = frontier.len();
    scratch.slot_level.clear();
    scratch.slot_level.resize(n, spec.default_level());
    for (s, txs) in frontier.sessions.iter().enumerate() {
        for (k, &(_, slot)) in txs.iter().enumerate() {
            scratch.slot_level[slot as usize] = spec.level_of(s as u32, k as u32);
        }
    }
    for p in &mut scratch.preds {
        p.clear();
    }
    if scratch.preds.len() < n {
        scratch.preds.resize_with(n, Vec::new);
    }
    for &(a, b) in &scratch.forced_tx {
        if b.is_init() {
            // A forced edge into the init transaction (co-first by
            // construction) is unsatisfiable.
            return false;
        }
        if a.is_init() {
            continue; // init commits before everything: always satisfied
        }
        let (Some(sa), Some(sb)) = (frontier.slot_of(a), frontier.slot_of(b)) else {
            return false;
        };
        scratch.preds[sb as usize].push(sa);
    }
    scratch.committed.clear();
    scratch.committed.resize(n, false);
    scratch.memo.clear();
    let sessions = frontier.sessions.len();
    let mut state = SearchState {
        frontier: vec![0; sessions],
        started: vec![false; sessions],
        last_committed: BTreeMap::new(),
    };
    search(
        frontier,
        &scratch.slot_level,
        &scratch.preds,
        &mut scratch.committed,
        &mut state,
        &mut scratch.memo,
        &mut None,
    )
}

/// Like [`satisfies_spec`] for a genuinely mixed spec, additionally
/// returning the commit order the successful search found (init first), for
/// witness reconstruction. Builds fresh indexes: this is the cold evidence
/// path, not the memoised engine path.
pub(crate) fn witness_spec(h: &History, spec: &LevelSpec) -> Option<Vec<TxId>> {
    debug_assert!(spec.as_uniform().is_none());
    let mut weak = WeakIndex::new_spec(spec.clone());
    weak.sync(h);
    if !spec.has_strong() {
        // No commit-order search: any topological order of
        // `so ∪ wr ∪ forced` witnesses the weak readers' axioms.
        return weak.witness_order();
    }
    let mut frontier = FrontierIndex::default();
    frontier.sync(h);
    let mut scratch = MixedScratch::default();
    weak.collect_forced_tx(&mut scratch.forced_tx);
    let n = frontier.len();
    scratch.slot_level.resize(n, spec.default_level());
    for (s, txs) in frontier.sessions.iter().enumerate() {
        for (k, &(_, slot)) in txs.iter().enumerate() {
            scratch.slot_level[slot as usize] = spec.level_of(s as u32, k as u32);
        }
    }
    scratch.preds.resize_with(n, Vec::new);
    for &(a, b) in &scratch.forced_tx {
        if b.is_init() {
            return None;
        }
        if a.is_init() {
            continue;
        }
        let (sa, sb) = (frontier.slot_of(a)?, frontier.slot_of(b)?);
        scratch.preds[sb as usize].push(sa);
    }
    scratch.committed.resize(n, false);
    let sessions = frontier.sessions.len();
    let mut state = SearchState {
        frontier: vec![0; sessions],
        started: vec![false; sessions],
        last_committed: BTreeMap::new(),
    };
    let mut order = Some(vec![TxId::INIT]);
    search(
        &frontier,
        &scratch.slot_level,
        &scratch.preds,
        &mut scratch.committed,
        &mut state,
        &mut scratch.memo,
        &mut order,
    )
    .then(|| order.unwrap())
}

struct SearchState {
    /// Index of the next transaction of each session (started or not).
    frontier: Vec<usize>,
    /// Whether the session's current transaction has started but not yet
    /// committed (only ever true for SI and PC interval transactions).
    started: Vec<bool>,
    /// Last committed writer of each variable (absent = init).
    last_committed: BTreeMap<Var, TxId>,
}

fn state_key(state: &SearchState) -> StateKey {
    (
        state
            .frontier
            .iter()
            .copied()
            .zip(state.started.iter().copied())
            .collect(),
        state
            .last_committed
            .iter()
            .map(|(v, t)| (v.0, t.0))
            .collect(),
    )
}

/// Whether any started in-progress *Snapshot Isolation* transaction of
/// another session visibly writes a variable that `slot` visibly writes.
/// The Conflict axiom forbids a conflicting writer from committing inside
/// an SI transaction's interval; Prefix Consistency has no Conflict axiom,
/// so a started PC interval constrains nobody.
fn conflicts_with_started(
    idx: &FrontierIndex,
    level: &[IsolationLevel],
    state: &SearchState,
    skip_session: usize,
    slot: u32,
) -> bool {
    idx.visible_writes(slot as usize).any(|x| {
        (0..idx.sessions.len()).any(|s2| {
            if s2 == skip_session || !state.started[s2] {
                return false;
            }
            let (_, slot2) = idx.sessions[s2][state.frontier[s2]];
            level[slot2 as usize] == IsolationLevel::SnapshotIsolation
                && idx.writes_var(slot2 as usize, x)
        })
    })
}

fn search(
    idx: &FrontierIndex,
    level: &[IsolationLevel],
    preds: &[Vec<u32>],
    committed: &mut Vec<bool>,
    state: &mut SearchState,
    memo: &mut HashSet<StateKey>,
    order: &mut Option<Vec<TxId>>,
) -> bool {
    let done = state
        .frontier
        .iter()
        .zip(&idx.sessions)
        .all(|(f, s)| *f == s.len());
    if done {
        return true;
    }
    let key = state_key(state);
    if memo.contains(&key) {
        return false;
    }
    for s in 0..idx.sessions.len() {
        if state.frontier[s] >= idx.sessions[s].len() {
            continue;
        }
        let (t, slot) = idx.sessions[s][state.frontier[s]];
        let lvl = level[slot as usize];
        if matches!(
            lvl,
            IsolationLevel::SnapshotIsolation | IsolationLevel::PrefixConsistency
        ) {
            if !state.started[s] {
                // Try to start t: snapshot reads, plus — for SI only —
                // write-conflict freedom against the other in-progress SI
                // transactions. PC starts are never conflict-constrained.
                let snapshot_ok = idx.reads[slot as usize]
                    .iter()
                    .all(|(x, w)| state.last_committed.get(x).copied().unwrap_or(TxId::INIT) == *w);
                if !snapshot_ok
                    || (lvl == IsolationLevel::SnapshotIsolation
                        && conflicts_with_started(idx, level, state, s, slot))
                {
                    continue;
                }
                state.started[s] = true;
                if search(idx, level, preds, committed, state, memo, order) {
                    return true;
                }
                state.started[s] = false;
            } else {
                // Commit t: the forced-edge predecessors must be in, and
                // the commit must not land inside a conflicting started SI
                // interval (reachable only for PC commits — two
                // conflicting SI intervals never overlap by the start
                // rule).
                if !preds[slot as usize].iter().all(|&p| committed[p as usize])
                    || conflicts_with_started(idx, level, state, s, slot)
                {
                    continue;
                }
                state.started[s] = false;
                state.frontier[s] += 1;
                committed[slot as usize] = true;
                let mut saved: Vec<(Var, Option<TxId>)> = Vec::new();
                for x in idx.visible_writes(slot as usize) {
                    saved.push((x, state.last_committed.insert(x, t)));
                }
                if let Some(order) = order.as_mut() {
                    order.push(t);
                }
                let found = search(idx, level, preds, committed, state, memo, order);
                if !found {
                    if let Some(order) = order.as_mut() {
                        order.pop();
                    }
                }
                for (x, old) in saved.into_iter().rev() {
                    match old {
                        Some(w) => {
                            state.last_committed.insert(x, w);
                        }
                        None => {
                            state.last_committed.remove(&x);
                        }
                    }
                }
                committed[slot as usize] = false;
                state.frontier[s] -= 1;
                state.started[s] = true;
                if found {
                    return true;
                }
            }
        } else {
            // Atomic placement (start = commit) for SER, the weak levels
            // and `true`.
            if !preds[slot as usize].iter().all(|&p| committed[p as usize]) {
                continue;
            }
            let reads_ok = match lvl {
                // Serializability: every external read observes the last
                // committed writer at the placement point.
                IsolationLevel::Serializability => idx.reads[slot as usize]
                    .iter()
                    .all(|(x, w)| state.last_committed.get(x).copied().unwrap_or(TxId::INIT) == *w),
                // Weak levels and `true`: the commit order merely extends
                // `wr`, so each observed writer must already be committed
                // (the level's axioms are carried by the forced edges).
                _ => idx.reads[slot as usize].iter().all(|(_, w)| {
                    w.is_init() || idx.slot_of(*w).is_some_and(|ws| committed[ws as usize])
                }),
            };
            if !reads_ok || conflicts_with_started(idx, level, state, s, slot) {
                continue;
            }
            state.frontier[s] += 1;
            committed[slot as usize] = true;
            let mut saved: Vec<(Var, Option<TxId>)> = Vec::new();
            for x in idx.visible_writes(slot as usize) {
                saved.push((x, state.last_committed.insert(x, t)));
            }
            if let Some(order) = order.as_mut() {
                order.push(t);
            }
            let found = search(idx, level, preds, committed, state, memo, order);
            if !found {
                if let Some(order) = order.as_mut() {
                    order.pop();
                }
            }
            for (x, old) in saved.into_iter().rev() {
                match old {
                    Some(w) => {
                        state.last_committed.insert(x, w);
                    }
                    None => {
                        state.last_committed.remove(&x);
                    }
                }
            }
            committed[slot as usize] = false;
            state.frontier[s] -= 1;
            if found {
                return true;
            }
        }
    }
    memo.insert(key);
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventId, EventKind};
    use crate::isolation::IsolationLevel::*;
    use crate::transaction::SessionId;
    use crate::value::Value;

    struct Builder {
        h: History,
        next_event: u32,
        next_tx: u32,
    }

    impl Builder {
        fn new() -> Self {
            Builder {
                h: History::new([]),
                next_event: 0,
                next_tx: 0,
            }
        }
        fn fresh(&mut self) -> EventId {
            self.next_event += 1;
            EventId(self.next_event)
        }
        fn begin(&mut self, s: u32) -> TxId {
            self.next_tx += 1;
            let id = TxId(self.next_tx);
            let idx = self.h.session_txs(SessionId(s)).len();
            let e = Event::new(self.fresh(), EventKind::Begin);
            self.h.begin_transaction(SessionId(s), id, idx, e);
            id
        }
        fn write(&mut self, s: u32, x: Var, v: i64) {
            let e = Event::new(self.fresh(), EventKind::Write(x, Value::Int(v)));
            self.h.append_event(SessionId(s), e);
        }
        fn read(&mut self, s: u32, x: Var, from: TxId) {
            let e = Event::new(self.fresh(), EventKind::Read(x));
            let id = e.id;
            self.h.append_event(SessionId(s), e);
            self.h.set_wr(id, from);
        }
        fn commit(&mut self, s: u32) {
            let e = Event::new(self.fresh(), EventKind::Commit);
            self.h.append_event(SessionId(s), e);
        }
    }

    /// Lost update: both transactions read x from init and write it.
    fn lost_update() -> History {
        let x = Var(0);
        let mut b = Builder::new();
        b.begin(0);
        b.read(0, x, TxId::INIT);
        b.write(0, x, 1);
        b.commit(0);
        b.begin(1);
        b.read(1, x, TxId::INIT);
        b.write(1, x, 2);
        b.commit(1);
        b.h
    }

    /// Long fork: two blind writers, two readers observing them in
    /// opposite orders.
    fn long_fork() -> History {
        let (x, y) = (Var(0), Var(1));
        let mut b = Builder::new();
        let t1 = b.begin(0);
        b.write(0, x, 1);
        b.commit(0);
        let t2 = b.begin(1);
        b.write(1, y, 1);
        b.commit(1);
        b.begin(2);
        b.read(2, x, t1);
        b.read(2, y, TxId::INIT);
        b.commit(2);
        b.begin(3);
        b.read(3, y, t2);
        b.read(3, x, TxId::INIT);
        b.commit(3);
        b.h
    }

    #[test]
    fn uniform_specs_match_uniform_checkers() {
        for h in [lost_update(), long_fork(), History::default()] {
            for level in IsolationLevel::ALL {
                assert_eq!(
                    satisfies_spec(&h, &LevelSpec::uniform(level)),
                    crate::check::satisfies(&h, level),
                    "uniform {level} spec diverged on\n{h}"
                );
            }
        }
    }

    #[test]
    fn lost_update_with_one_weak_increment() {
        let h = lost_update();
        // Both increments serializable: the anomaly is rejected.
        let both_ser = LevelSpec::uniform(Serializability);
        assert!(!satisfies_spec(&h, &both_ser));
        // Demote one increment to Read Committed: its stale read is now
        // allowed and the other (SER) increment can be placed first.
        let one_rc = both_ser.clone().with_override(0, 0, ReadCommitted);
        assert!(satisfies_spec(&h, &one_rc));
        let other_rc = both_ser.with_override(1, 0, ReadCommitted);
        assert!(satisfies_spec(&h, &other_rc));
    }

    #[test]
    fn long_fork_verdicts_follow_the_reader_levels() {
        let h = long_fork();
        // Both readers at SER: the opposite observation orders are
        // irreconcilable with one commit order.
        assert!(!satisfies_spec(&h, &LevelSpec::uniform(Serializability)));
        // Demoting ONE reader to CC frees the other's order.
        let spec = LevelSpec::uniform(Serializability).with_override(2, 0, CausalConsistency);
        assert!(satisfies_spec(&h, &spec));
        // Both readers at SI (writers at SER): the long fork is an SI
        // anomaly too — both snapshots cannot exist.
        let spec = LevelSpec::uniform(Serializability)
            .with_override(2, 0, SnapshotIsolation)
            .with_override(3, 0, SnapshotIsolation);
        assert!(!satisfies_spec(&h, &spec));
        // One snapshot reader, one RC reader is fine.
        let spec = LevelSpec::uniform(Serializability)
            .with_override(2, 0, SnapshotIsolation)
            .with_override(3, 0, ReadCommitted);
        assert!(satisfies_spec(&h, &spec));
    }

    #[test]
    fn forced_edges_of_weak_readers_constrain_the_strong_search() {
        // Session 0: t1 writes x. Session 1: t2 writes x. Session 2:
        // t3 (CC) reads x from t1 *after* reading y from t4 which read x
        // from t2 — forcing t2 before t1 in co. Session 3: t5 (SER) reads
        // x from t1: fine. But a SER read of x from t2 placed *after*
        // both writers is impossible when t1 must follow t2... build a
        // simpler shape: CC reader forces t2 < t1, SER reader of x=t2
        // must then be placed between t2 and t1 — satisfiable; a SER
        // reader of y (written only by t1... keep it direct:
        // CC reader in one transaction reads x from t2 then x from t1
        // (internal po order) — RC-style premise forces t2 < t1. A SER
        // transaction writing x and reading nothing can commit anywhere.
        let x = Var(0);
        let mut b = Builder::new();
        let t1 = b.begin(0);
        b.write(0, x, 1);
        b.commit(0);
        let t2 = b.begin(1);
        b.write(1, x, 2);
        b.commit(1);
        b.begin(2);
        b.read(2, x, t2);
        b.read(2, x, t1);
        b.commit(2);
        let h = b.h;
        // Reader at RC: reading t2 then t1 forces t2 < t1 — satisfiable
        // on its own (no cycle), even with the writers at SER.
        let spec = LevelSpec::uniform(Serializability).with_override(2, 0, ReadCommitted);
        assert!(satisfies_spec(&h, &spec));

        // Now add a second RC reader observing the writers in the
        // opposite internal order: t1 < t2 is also forced — a cycle no
        // commit order satisfies, whatever the writers' levels.
        let mut b = Builder::new();
        let t1 = b.begin(0);
        b.write(0, x, 1);
        b.commit(0);
        let t2 = b.begin(1);
        b.write(1, x, 2);
        b.commit(1);
        b.begin(2);
        b.read(2, x, t2);
        b.read(2, x, t1);
        b.commit(2);
        b.begin(3);
        b.read(3, x, t1);
        b.read(3, x, t2);
        b.commit(3);
        let h = b.h;
        let spec = LevelSpec::uniform(Serializability)
            .with_override(2, 0, ReadCommitted)
            .with_override(3, 0, ReadCommitted);
        assert!(!satisfies_spec(&h, &spec));
    }

    #[test]
    fn atomic_writer_may_not_commit_inside_a_conflicting_si_interval() {
        // Write skew with one SI transaction and one SER transaction that
        // write a *common* variable: t1 (SI) reads x=init writes x,y;
        // t2 (SER) reads y=init writes x. t2's stale read of y needs
        // placement before t1 commits y; t1's stale read of x needs its
        // snapshot before t2 commits x — so t2 must commit inside t1's
        // interval, which the common write of x forbids.
        let (x, y) = (Var(0), Var(1));
        let mut b = Builder::new();
        b.begin(0);
        b.read(0, x, TxId::INIT);
        b.write(0, x, 1);
        b.write(0, y, 1);
        b.commit(0);
        b.begin(1);
        b.read(1, y, TxId::INIT);
        b.write(1, x, 2);
        b.commit(1);
        let h = b.h;
        let spec = LevelSpec::uniform(SnapshotIsolation).with_override(1, 0, Serializability);
        assert!(!satisfies_spec(&h, &spec));
        // Without the write conflict (t2 writes z instead of x) the same
        // shape is accepted: t2 commits inside t1's interval.
        let z = Var(2);
        let mut b = Builder::new();
        b.begin(0);
        b.read(0, x, TxId::INIT);
        b.write(0, x, 1);
        b.write(0, y, 1);
        b.commit(0);
        b.begin(1);
        b.read(1, y, TxId::INIT);
        b.write(1, z, 2);
        b.commit(1);
        let h = b.h;
        let spec = LevelSpec::uniform(SnapshotIsolation).with_override(1, 0, Serializability);
        assert!(satisfies_spec(&h, &spec));
    }

    #[test]
    fn empty_history_satisfies_every_spec() {
        let h = History::default();
        let spec = LevelSpec::uniform(CausalConsistency)
            .with_override(0, 0, Serializability)
            .with_override(1, 0, SnapshotIsolation);
        assert!(satisfies_spec(&h, &spec));
    }
}
