//! Serializability checking by memoised search over commit prefixes.
//!
//! A history satisfies the Serializability axiom (Fig. 2d) iff the
//! transactions can be arranged in a total order extending `so ∪ wr` such
//! that every external read of a variable `x` reads from the *last*
//! transaction writing `x` that precedes the reader in the order. The
//! search enumerates such orders session-frontier by session-frontier and
//! memoises failed states, which makes it polynomial for a fixed number of
//! sessions (the setting of the paper's benchmarks, following
//! Biswas & Enea 2019).

use std::collections::{BTreeMap, HashSet};

use crate::check::frontier::FrontierIndex;
use crate::history::History;
use crate::transaction::TxId;
use crate::value::Var;

/// Whether the history satisfies Serializability.
pub fn satisfies_ser(h: &History) -> bool {
    satisfies_ser_with(h, &mut FrontierIndex::default(), &mut HashSet::new())
}

/// Like [`satisfies_ser`], reusing a caller-owned per-transaction index
/// (incrementally synced to `h`, see [`FrontierIndex`]) and memo table for
/// the failed-state set, so that engines avoid rebuilding either per
/// history. The memo is cleared on entry: its entries are only meaningful
/// within one history.
pub(crate) fn satisfies_ser_with(
    h: &History,
    idx: &mut FrontierIndex,
    memo: &mut HashSet<StateKey>,
) -> bool {
    memo.clear();
    idx.sync(h);
    let mut frontier = vec![0usize; idx.sessions.len()];
    let mut last_writer: BTreeMap<Var, TxId> = BTreeMap::new();
    search(idx, &mut frontier, &mut last_writer, memo, &mut None)
}

/// Like [`satisfies_ser`], additionally returning the serialization order
/// the successful search found (init first), for witness reconstruction.
pub(crate) fn witness_ser(h: &History) -> Option<Vec<TxId>> {
    let idx = &mut FrontierIndex::default();
    idx.sync(h);
    let mut frontier = vec![0usize; idx.sessions.len()];
    let mut last_writer: BTreeMap<Var, TxId> = BTreeMap::new();
    let mut order = Some(vec![TxId::INIT]);
    search(
        idx,
        &mut frontier,
        &mut last_writer,
        &mut HashSet::new(),
        &mut order,
    )
    .then(|| order.unwrap())
}

pub(crate) type StateKey = (Vec<usize>, Vec<(u32, u32)>);

fn state_key(frontier: &[usize], last_writer: &BTreeMap<Var, TxId>) -> StateKey {
    (
        frontier.to_vec(),
        last_writer.iter().map(|(v, t)| (v.0, t.0)).collect(),
    )
}

fn search(
    idx: &FrontierIndex,
    frontier: &mut Vec<usize>,
    last_writer: &mut BTreeMap<Var, TxId>,
    memo: &mut HashSet<StateKey>,
    order: &mut Option<Vec<TxId>>,
) -> bool {
    if frontier
        .iter()
        .zip(&idx.sessions)
        .all(|(f, s)| *f == s.len())
    {
        return true;
    }
    let key = state_key(frontier, last_writer);
    if memo.contains(&key) {
        return false;
    }
    for s in 0..idx.sessions.len() {
        if frontier[s] >= idx.sessions[s].len() {
            continue;
        }
        let (t, slot) = idx.sessions[s][frontier[s]];
        // Every external read must read from the currently-last writer.
        let ok = idx.reads[slot as usize]
            .iter()
            .all(|(x, w)| last_writer.get(x).copied().unwrap_or(TxId::INIT) == *w);
        if !ok {
            continue;
        }
        // Append t.
        frontier[s] += 1;
        let mut saved: Vec<(Var, Option<TxId>)> = Vec::new();
        for x in idx.visible_writes(slot as usize) {
            saved.push((x, last_writer.insert(x, t)));
        }
        if let Some(order) = order.as_mut() {
            order.push(t);
        }
        if search(idx, frontier, last_writer, memo, order) {
            return true;
        }
        // Undo.
        if let Some(order) = order.as_mut() {
            order.pop();
        }
        for (x, old) in saved.into_iter().rev() {
            match old {
                Some(w) => {
                    last_writer.insert(x, w);
                }
                None => {
                    last_writer.remove(&x);
                }
            }
        }
        frontier[s] -= 1;
    }
    memo.insert(key);
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventId, EventKind};
    use crate::transaction::SessionId;
    use crate::value::Value;

    struct Builder {
        h: History,
        next_event: u32,
        next_tx: u32,
    }

    impl Builder {
        fn new() -> Self {
            Builder {
                h: History::new([]),
                next_event: 0,
                next_tx: 0,
            }
        }
        fn fresh(&mut self) -> EventId {
            self.next_event += 1;
            EventId(self.next_event)
        }
        fn begin(&mut self, s: u32) -> TxId {
            self.next_tx += 1;
            let id = TxId(self.next_tx);
            let idx = self.h.session_txs(SessionId(s)).len();
            let e = Event::new(self.fresh(), EventKind::Begin);
            self.h.begin_transaction(SessionId(s), id, idx, e);
            id
        }
        fn write(&mut self, s: u32, x: Var, v: i64) {
            let e = Event::new(self.fresh(), EventKind::Write(x, Value::Int(v)));
            self.h.append_event(SessionId(s), e);
        }
        fn read(&mut self, s: u32, x: Var, from: TxId) {
            let e = Event::new(self.fresh(), EventKind::Read(x));
            let id = e.id;
            self.h.append_event(SessionId(s), e);
            self.h.set_wr(id, from);
        }
        fn commit(&mut self, s: u32) {
            let e = Event::new(self.fresh(), EventKind::Commit);
            self.h.append_event(SessionId(s), e);
        }
        fn abort(&mut self, s: u32) {
            let e = Event::new(self.fresh(), EventKind::Abort);
            self.h.append_event(SessionId(s), e);
        }
    }

    #[test]
    fn empty_history_is_serializable() {
        assert!(satisfies_ser(&History::default()));
    }

    #[test]
    fn lost_update_is_not_serializable() {
        let x = Var(0);
        let mut b = Builder::new();
        b.begin(0);
        b.read(0, x, TxId::INIT);
        b.write(0, x, 1);
        b.commit(0);
        b.begin(1);
        b.read(1, x, TxId::INIT);
        b.write(1, x, 2);
        b.commit(1);
        assert!(!satisfies_ser(&b.h));
    }

    #[test]
    fn write_skew_is_not_serializable() {
        let (x, y) = (Var(0), Var(1));
        let mut b = Builder::new();
        b.begin(0);
        b.read(0, x, TxId::INIT);
        b.write(0, y, 1);
        b.commit(0);
        b.begin(1);
        b.read(1, y, TxId::INIT);
        b.write(1, x, 1);
        b.commit(1);
        assert!(!satisfies_ser(&b.h));
    }

    #[test]
    fn sequential_reads_are_serializable() {
        let x = Var(0);
        let mut b = Builder::new();
        let t1 = b.begin(0);
        b.write(0, x, 1);
        b.commit(0);
        b.begin(1);
        b.read(1, x, t1);
        b.commit(1);
        b.begin(2);
        b.read(2, x, t1);
        b.commit(2);
        assert!(satisfies_ser(&b.h));
    }

    #[test]
    fn reading_overwritten_value_in_session_is_not_serializable() {
        // Session 0: t1 writes x=1, t2 writes x=2. Session 1: reads x from t1
        // and then (another transaction) reads x from t2: serializable.
        let x = Var(0);
        let mut b = Builder::new();
        let t1 = b.begin(0);
        b.write(0, x, 1);
        b.commit(0);
        let t2 = b.begin(0);
        b.write(0, x, 2);
        b.commit(0);
        b.begin(1);
        b.read(1, x, t1);
        b.commit(1);
        b.begin(1);
        b.read(1, x, t2);
        b.commit(1);
        assert!(satisfies_ser(&b.h));

        // Reading them in the opposite order (t2 then t1) is not.
        let mut b = Builder::new();
        let t1 = b.begin(0);
        b.write(0, x, 1);
        b.commit(0);
        let t2 = b.begin(0);
        b.write(0, x, 2);
        b.commit(0);
        b.begin(1);
        b.read(1, x, t2);
        b.commit(1);
        b.begin(1);
        b.read(1, x, t1);
        b.commit(1);
        assert!(!satisfies_ser(&b.h));
    }

    #[test]
    fn aborted_writer_is_invisible() {
        // An aborted transaction writing x does not block others from
        // reading the initial value.
        let x = Var(0);
        let mut b = Builder::new();
        b.begin(0);
        b.write(0, x, 5);
        b.abort(0);
        b.begin(1);
        b.read(1, x, TxId::INIT);
        b.commit(1);
        assert!(satisfies_ser(&b.h));
    }

    #[test]
    fn long_fork_is_not_serializable() {
        // t1 writes x; t2 writes y; t3 reads x (new) and y (init);
        // t4 reads y (new) and x (init). Classic SI-but-not-SER anomaly.
        let (x, y) = (Var(0), Var(1));
        let mut b = Builder::new();
        let t1 = b.begin(0);
        b.write(0, x, 1);
        b.commit(0);
        let t2 = b.begin(1);
        b.write(1, y, 1);
        b.commit(1);
        b.begin(2);
        b.read(2, x, t1);
        b.read(2, y, TxId::INIT);
        b.commit(2);
        b.begin(3);
        b.read(3, y, t2);
        b.read(3, x, TxId::INIT);
        b.commit(3);
        assert!(!satisfies_ser(&b.h));
    }
}
