//! A sharded concurrent verdict memo shared by parallel exploration
//! workers.
//!
//! The work-stealing parallel exploration gives every worker its own
//! private consistency engines (scratch indexes stay single-threaded and
//! journal-warm), but sibling subtrees constantly re-reach structurally
//! equal histories — the prefix a stolen subtree hangs off, the common
//! re-orderings two workers both try. The [`SharedMemo`] lets workers
//! publish boolean verdicts to each other: it is the per-engine
//! direct-mapped 16-byte-slot table of [`super::engine`] rebuilt on
//! [`AtomicU64`] pairs and split into power-of-two shards so concurrent
//! publishes from different workers rarely touch the same cache lines.
//!
//! # Keys
//!
//! Entries are keyed by `live_hash ⊕ spec_hash`: the history's rolling
//! 128-bit structural hash ([`crate::History::live_hash`]) with the
//! engine's [`crate::LevelSpec::spec_hash`] folded into the first word.
//! One table therefore serves every engine of a run — the exploration
//! engine and the output engine, uniform and mixed specs alike — without
//! a verdict decided under one spec ever being served for another.
//!
//! # Publish protocol (tag-last, torn reads degrade to misses)
//!
//! A slot is two `AtomicU64`s written without any lock:
//!
//! ```text
//! payload = (key.1 & !1) | verdict        // stored first (Release)
//! tag     = key.0 ^ payload               // stored last  (Release)
//! ```
//!
//! A reader loads both words and accepts the slot only when
//! `tag ^ payload == key.0` **and** `payload` matches `key.1` above the
//! verdict bit. Because the tag is XOR-entangled with the payload, any
//! torn read — a payload from one publish paired with the tag of another,
//! in either order — fails the check and degrades to a *miss*, never to a
//! wrong verdict (the classic lock-free transposition-table scheme). The
//! empty slot `(0, 0)` only validates for the all-zero key, which the
//! non-zero-seeded `live_hash` makes as improbable as a 127-bit hash
//! collision — the risk the hash-compacted memo design already accepts.
//!
//! Collisions simply overwrite (the table is lossy by design, like the
//! private memo), so memory stays hard-bounded: [`SharedMemo::new`] sizes
//! the table once and never grows it, which is what makes the lock-free
//! protocol sufficient — there is no resize to coordinate.

use std::sync::atomic::{AtomicU64, Ordering};

/// Total number of slots of a shared memo (16 bytes per slot — a hard
/// 4 MiB ceiling for the whole worker fleet, spread over the shards).
pub const SHARED_MEMO_SLOTS: usize = 1 << 18;

/// One lock-free slot: `tag = key.0 ^ payload`, `payload = key.1 | verdict`.
#[derive(Debug, Default)]
struct Slot {
    tag: AtomicU64,
    payload: AtomicU64,
}

/// A sharded, lock-free, direct-mapped verdict memo shared across
/// exploration workers. See the module documentation for the key and
/// publish protocols.
#[derive(Debug)]
pub struct SharedMemo {
    /// Shard tables, each `slots_per_shard` slots long, concatenated.
    slots: Vec<Slot>,
    /// `shard_count - 1` (shard count is a power of two).
    shard_mask: u64,
    /// `slots_per_shard - 1` (per-shard slot count is a power of two).
    slot_mask: u64,
}

impl SharedMemo {
    /// Creates a memo sized for `workers` concurrent publishers: the shard
    /// count is the smallest power of two ≥ `4 * workers` (capped at 64),
    /// so two workers publishing simultaneously usually land in different
    /// shards; the total slot count is fixed at [`SHARED_MEMO_SLOTS`].
    pub fn new(workers: usize) -> Self {
        let shards = (workers.max(1) * 4).next_power_of_two().min(64);
        Self::with_shape(shards, SHARED_MEMO_SLOTS / shards)
    }

    /// Creates a memo with an explicit shape (both counts must be powers
    /// of two; tests use tiny tables to force collisions).
    ///
    /// # Panics
    ///
    /// Panics if either count is zero or not a power of two.
    pub fn with_shape(shards: usize, slots_per_shard: usize) -> Self {
        assert!(
            shards.is_power_of_two() && slots_per_shard.is_power_of_two(),
            "shard and slot counts must be powers of two"
        );
        let mut slots = Vec::new();
        slots.resize_with(shards * slots_per_shard, Slot::default);
        SharedMemo {
            slots,
            shard_mask: shards as u64 - 1,
            slot_mask: slots_per_shard as u64 - 1,
        }
    }

    /// The slot a key maps to: the shard index comes from the key's upper
    /// half, the in-shard slot from its lower bits, so the two are
    /// independent (the private memo also indexes by the low bits — using
    /// different bits for the shard keeps the sharding uncorrelated with
    /// private-table placement).
    fn slot(&self, key: (u64, u64)) -> &Slot {
        let shard = (key.0 >> 32) & self.shard_mask;
        let slot = key.0 & self.slot_mask;
        &self.slots[(shard * (self.slot_mask + 1) + slot) as usize]
    }

    /// Looks up a verdict. Returns `None` on an empty slot, a key
    /// mismatch, or a torn read (see the module documentation — a torn
    /// read can never validate).
    pub fn lookup(&self, key: (u64, u64)) -> Option<bool> {
        let slot = self.slot(key);
        let payload = slot.payload.load(Ordering::Acquire);
        let tag = slot.tag.load(Ordering::Acquire);
        (tag ^ payload == key.0 && payload & !1 == key.1 & !1).then_some(payload & 1 == 1)
    }

    /// Publishes a verdict, overwriting whatever the slot held. The
    /// payload is stored before the XOR-entangled tag ("publish tag
    /// last"), so concurrent readers either validate a fully published
    /// entry or miss.
    pub fn publish(&self, key: (u64, u64), verdict: bool) {
        let slot = self.slot(key);
        let payload = (key.1 & !1) | verdict as u64;
        slot.payload.store(payload, Ordering::Release);
        slot.tag.store(key.0 ^ payload, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_then_lookup_round_trips() {
        let memo = SharedMemo::new(4);
        let key = (0x1234_5678_9abc_def0, 0x0fed_cba9_8765_4321);
        assert_eq!(memo.lookup(key), None, "fresh table misses");
        memo.publish(key, true);
        assert_eq!(memo.lookup(key), Some(true));
        memo.publish(key, false);
        assert_eq!(memo.lookup(key), Some(false));
    }

    #[test]
    fn verdict_bit_does_not_corrupt_the_key() {
        let memo = SharedMemo::new(1);
        // Keys differing only in the (masked-out) low bit of the second
        // word share a slot and a stored payload.
        let even = (42, 0x1000);
        let odd = (42, 0x1001);
        memo.publish(even, true);
        assert_eq!(memo.lookup(odd), Some(true));
    }

    #[test]
    fn different_keys_miss() {
        let memo = SharedMemo::with_shape(1, 1);
        memo.publish((7, 7), true);
        // Same slot (single-slot table), different key halves: miss.
        assert_eq!(memo.lookup((8, 7)), None);
        assert_eq!(memo.lookup((7, 9)), None);
        // The collision overwrote nothing for the original key.
        assert_eq!(memo.lookup((7, 7)), Some(true));
        memo.publish((8, 8), false);
        assert_eq!(memo.lookup((7, 7)), None, "collision evicts");
        assert_eq!(memo.lookup((8, 8)), Some(false));
    }

    #[test]
    fn torn_slot_degrades_to_a_miss() {
        // Forge the torn state a reader could observe mid-publish: the
        // payload of key B with the tag of key A. The XOR validation must
        // reject it for both keys.
        let memo = SharedMemo::with_shape(1, 1);
        let a = (0xaaaa_aaaa_aaaa_aaaa, 0x1111_1111_1111_1110);
        let b = (0xbbbb_bbbb_bbbb_bbbb, 0x2222_2222_2222_2220);
        memo.publish(a, true);
        let tag_a = memo.slots[0].tag.load(Ordering::Acquire);
        memo.publish(b, false);
        memo.slots[0].tag.store(tag_a, Ordering::Release); // torn: payload B, tag A
        assert_eq!(memo.lookup(a), None);
        assert_eq!(memo.lookup(b), None);
    }

    #[test]
    fn sharding_spreads_upper_key_bits() {
        // Keys equal in the low 32 bits but different above land in
        // different shards of a multi-shard table and coexist.
        let memo = SharedMemo::with_shape(4, 2);
        let k1 = (0x0000_0001_0000_0000u64, 1 << 1);
        let k2 = (0x0000_0002_0000_0000u64, 2 << 1);
        memo.publish(k1, true);
        memo.publish(k2, false);
        assert_eq!(memo.lookup(k1), Some(true));
        assert_eq!(memo.lookup(k2), Some(false));
    }

    #[test]
    fn concurrent_publishers_never_yield_wrong_verdicts() {
        use std::sync::Arc;
        // Hammer one tiny table from several threads, each publishing its
        // own keys and validating every lookup it gets back: a hit must
        // carry the verdict that key was published with (misses are
        // always allowed — the table is lossy).
        let memo = Arc::new(SharedMemo::with_shape(2, 8));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let memo = Arc::clone(&memo);
                scope.spawn(move || {
                    for round in 0..2000u64 {
                        let k = ((t << 32) | (round % 32), (round % 32) << 1);
                        let verdict = (round % 32) % 3 == 0;
                        memo.publish(k, verdict);
                        if let Some(v) = memo.lookup(k) {
                            assert_eq!(v, verdict, "hit with a foreign verdict");
                        }
                    }
                });
            }
        });
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn non_power_of_two_shape_is_rejected() {
        SharedMemo::with_shape(3, 8);
    }
}
