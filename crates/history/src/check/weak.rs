//! Polynomial-time consistency checking for Read Committed, Read Atomic and
//! Causal Consistency.
//!
//! For these levels the premise `φ(t2, α)` of the axiom schema does not
//! mention the commit order, so the set of commit-order edges forced by the
//! axioms can be computed in a single pass. The history satisfies the level
//! iff `so ∪ wr ∪ forced` is acyclic, in which case any topological order is
//! a witness commit order.

use std::collections::HashMap;

use crate::event::EventKind;
use crate::history::History;
use crate::isolation::IsolationLevel;
use crate::relations::{BitMatrix, Digraph};
use crate::transaction::TxId;

/// Checks Read Committed, Read Atomic or Causal Consistency.
///
/// # Panics
///
/// Panics if called with a level outside `{RC, RA, CC}`.
pub fn satisfies_weak(h: &History, level: IsolationLevel) -> bool {
    satisfies_weak_with(h, level, &mut WeakScratch::default())
}

/// One axiom instance: a read of `var` in transaction (vertex) `reader`
/// reading from `writer`, with `prefix` wr-reads of the same transaction
/// preceding it in program order (the Read Committed premise set).
#[derive(Debug)]
struct ReadInfo {
    reader: usize,
    prefix: usize,
    var: crate::value::Var,
    writer: usize,
}

/// Reusable buffers for the weak-level saturation: the transaction index,
/// the per-variable writer lists, the axiom instances, the `so ∪ wr`
/// membership matrix, its transitive closure and the forced commit-order
/// graph. One instance is owned by each
/// [`crate::check::engine::WeakEngine`] and reused across histories.
#[derive(Debug, Default)]
pub(crate) struct WeakScratch {
    txs: Vec<TxId>,
    /// Direct-indexed `TxId.0 ↦ vertex` (dense ids; `u32::MAX` = absent).
    index: Vec<u32>,
    so_wr: BitMatrix,
    reach: BitMatrix,
    graph: Digraph,
    writers: HashMap<crate::value::Var, Vec<usize>>,
    reads: Vec<ReadInfo>,
    wr_seqs: Vec<Vec<usize>>,
}

/// Like [`satisfies_weak`], reusing caller-owned scratch buffers.
///
/// The saturation makes a single pass over the transaction logs to index
/// writers per variable, the axiom instances and the per-transaction
/// sequences of wr-read sources (so no per-pair log rescans are needed),
/// builds the direct `so ∪ wr` matrix, takes one word-packed transitive
/// closure for the Causal Consistency premise (instead of a BFS per
/// transaction pair), then adds the forced commit-order edges and tests
/// acyclicity.
pub(crate) fn satisfies_weak_with(
    h: &History,
    level: IsolationLevel,
    scratch: &mut WeakScratch,
) -> bool {
    assert!(
        matches!(
            level,
            IsolationLevel::ReadCommitted
                | IsolationLevel::ReadAtomic
                | IsolationLevel::CausalConsistency
        ),
        "satisfies_weak only handles RC/RA/CC, got {level}"
    );

    // Vertex 0 is the init transaction.
    let WeakScratch {
        txs,
        index,
        so_wr,
        reach,
        graph: g,
        writers,
        reads,
        wr_seqs,
    } = scratch;
    txs.clear();
    txs.push(TxId::INIT);
    txs.extend(h.tx_ids());
    // Direct-indexed vertex lookup over the dense transaction ids.
    index.clear();
    index.resize(h.max_tx_id() as usize + 1, u32::MAX);
    for (i, t) in txs.iter().enumerate() {
        index[t.0 as usize] = i as u32;
    }
    let idx = |t: TxId| index[t.0 as usize] as usize;
    let n = txs.len();
    g.reset(n);
    so_wr.reset(n);
    for seq in wr_seqs.iter_mut() {
        seq.clear();
    }
    wr_seqs.resize_with(n, Vec::new);
    for list in writers.values_mut() {
        list.clear();
    }
    reads.clear();

    // Direct so ∪ wr membership (init precedes everything, transactions of
    // a session are ordered by position, wr edges at the transaction level)
    // plus, in the same pass over the logs: visible writers per variable and
    // the axiom instances with their Read Committed premise prefixes. The
    // graph only needs the immediate successors (plus wr) since its closure
    // equals the closure of the full relation.
    for j in 1..n {
        so_wr.set(0, j);
    }
    for (_, session) in h.sessions() {
        if let Some(first) = session.first() {
            g.add_edge(0, idx(*first));
        }
        for pair in session.windows(2) {
            g.add_edge(idx(pair[0]), idx(pair[1]));
        }
        for (k, a) in session.iter().enumerate() {
            let i = idx(*a);
            for b in &session[k + 1..] {
                so_wr.set(i, idx(*b));
            }
            let log = h.tx(*a);
            let aborted = log.is_aborted();
            for e in &log.events {
                match &e.kind {
                    EventKind::Write(x, _) if !aborted => {
                        let list = writers.entry(*x).or_default();
                        if list.last() != Some(&i) {
                            list.push(i);
                        }
                    }
                    EventKind::Read(x) => {
                        if let Some(w) = h.wr_of(e.id) {
                            let iw = idx(w);
                            reads.push(ReadInfo {
                                reader: i,
                                prefix: wr_seqs[i].len(),
                                var: *x,
                                writer: iw,
                            });
                            wr_seqs[i].push(iw);
                            if iw != i {
                                g.add_edge(iw, i);
                                so_wr.set(iw, i);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    // Causal reachability (so ∪ wr)+ as one packed transitive closure.
    if level == IsolationLevel::CausalConsistency {
        reach.clone_from(so_wr);
        reach.transitive_close();
    }

    // Forced commit-order edges from the axiom instances: for each read
    // (t3 = reader, t1 = writer read from) and each other transaction t2
    // writing the variable (init always does), the premise forces t2 → t1.
    for r in reads.iter() {
        let (i3, i1) = (r.reader, r.writer);
        let var_writers = writers.get(&r.var).map(Vec::as_slice).unwrap_or(&[]);
        for i2 in std::iter::once(0).chain(var_writers.iter().copied()) {
            if i2 == i1 || i2 == i3 {
                continue;
            }
            let premise = match level {
                // ∃ read c of t3, po-before α, reading from t2.
                IsolationLevel::ReadCommitted => wr_seqs[i3][..r.prefix].contains(&i2),
                IsolationLevel::ReadAtomic => so_wr.get(i2, i3),
                IsolationLevel::CausalConsistency => reach.get(i2, i3),
                _ => unreachable!(),
            };
            if premise {
                g.add_edge(i2, i1);
            }
        }
    }

    g.is_acyclic()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventId, EventKind};
    use crate::transaction::SessionId;
    use crate::value::{Value, Var};

    struct Builder {
        h: History,
        next_event: u32,
        next_tx: u32,
    }

    impl Builder {
        fn new() -> Self {
            Builder {
                h: History::new([]),
                next_event: 0,
                next_tx: 0,
            }
        }
        fn fresh(&mut self) -> EventId {
            self.next_event += 1;
            EventId(self.next_event)
        }
        fn begin(&mut self, s: u32) -> TxId {
            self.next_tx += 1;
            let id = TxId(self.next_tx);
            let idx = self.h.session_txs(SessionId(s)).len();
            let e = Event::new(self.fresh(), EventKind::Begin);
            self.h.begin_transaction(SessionId(s), id, idx, e);
            id
        }
        fn write(&mut self, s: u32, x: Var, v: i64) {
            let e = Event::new(self.fresh(), EventKind::Write(x, Value::Int(v)));
            self.h.append_event(SessionId(s), e);
        }
        fn read(&mut self, s: u32, x: Var, from: TxId) {
            let e = Event::new(self.fresh(), EventKind::Read(x));
            let id = e.id;
            self.h.append_event(SessionId(s), e);
            self.h.set_wr(id, from);
        }
        fn commit(&mut self, s: u32) {
            let e = Event::new(self.fresh(), EventKind::Commit);
            self.h.append_event(SessionId(s), e);
        }
    }

    /// Fig. 3: CC violation, RA/RC consistent.
    fn fig3() -> History {
        let (x, y) = (Var(0), Var(1));
        let mut b = Builder::new();
        let t1 = b.begin(0);
        b.write(0, x, 1);
        b.commit(0);
        let t2 = b.begin(1);
        b.read(1, x, t1);
        b.write(1, x, 2);
        b.commit(1);
        let t4 = b.begin(2);
        b.read(2, x, t2);
        b.write(2, y, 1);
        b.commit(2);
        b.begin(3);
        b.read(3, x, t1);
        b.read(3, y, t4);
        b.commit(3);
        b.h
    }

    #[test]
    fn fig3_violates_cc_only() {
        let h = fig3();
        assert!(!satisfies_weak(&h, IsolationLevel::CausalConsistency));
        assert!(satisfies_weak(&h, IsolationLevel::ReadAtomic));
        assert!(satisfies_weak(&h, IsolationLevel::ReadCommitted));
    }

    /// Fig. 9d under CC: read of y from init while reading x from a later
    /// transaction in the same session is a Read Atomic violation too.
    #[test]
    fn fractured_read_violates_ra_but_not_rc() {
        // t1 (session 0): write x 1, write y 1
        // t2 (session 1): read y <- t1 ; read x <- init
        let (x, y) = (Var(0), Var(1));
        let mut b = Builder::new();
        let t1 = b.begin(0);
        b.write(0, x, 1);
        b.write(0, y, 1);
        b.commit(0);
        b.begin(1);
        b.read(1, y, t1);
        b.read(1, x, TxId::INIT);
        b.commit(1);
        let h = b.h;
        assert!(!satisfies_weak(&h, IsolationLevel::ReadAtomic));
        assert!(!satisfies_weak(&h, IsolationLevel::CausalConsistency));
        // RC: the read of x from init is preceded (po) by a read from t1,
        // so t1 must precede init in co: violation of RC as well.
        assert!(!satisfies_weak(&h, IsolationLevel::ReadCommitted));
        // Swapping the order of the two reads removes the RC violation.
        let mut b = Builder::new();
        let t1 = b.begin(0);
        b.write(0, x, 1);
        b.write(0, y, 1);
        b.commit(0);
        b.begin(1);
        b.read(1, x, TxId::INIT);
        b.read(1, y, t1);
        b.commit(1);
        let h = b.h;
        assert!(satisfies_weak(&h, IsolationLevel::ReadCommitted));
        assert!(!satisfies_weak(&h, IsolationLevel::ReadAtomic));
    }

    #[test]
    fn causal_violation_through_session_order() {
        // Session 0: t1 writes x=1 ; t2 writes x=2.
        // Session 1: t3 reads x from t1 — stale w.r.t. so: CC forbids
        // nothing here (t2 not causally before t3), so consistent.
        let x = Var(0);
        let mut b = Builder::new();
        let t1 = b.begin(0);
        b.write(0, x, 1);
        b.commit(0);
        b.begin(0);
        b.write(0, x, 2);
        b.commit(0);
        b.begin(1);
        b.read(1, x, t1);
        b.commit(1);
        assert!(satisfies_weak(&b.h, IsolationLevel::CausalConsistency));

        // But if t3 first reads x from t2 then reads x again from t1 the
        // second read is internal-free and CC (even RC) is violated.
        let mut b = Builder::new();
        let t1 = b.begin(0);
        b.write(0, x, 1);
        b.commit(0);
        let t2 = b.begin(0);
        b.write(0, x, 2);
        b.commit(0);
        b.begin(1);
        b.read(1, x, t2);
        b.read(1, x, t1);
        b.commit(1);
        assert!(!satisfies_weak(&b.h, IsolationLevel::ReadCommitted));
        assert!(!satisfies_weak(&b.h, IsolationLevel::CausalConsistency));
    }

    #[test]
    fn reading_own_session_past_is_consistent() {
        let x = Var(0);
        let mut b = Builder::new();
        let t1 = b.begin(0);
        b.write(0, x, 1);
        b.commit(0);
        b.begin(0);
        b.read(0, x, t1);
        b.commit(0);
        for level in [
            IsolationLevel::ReadCommitted,
            IsolationLevel::ReadAtomic,
            IsolationLevel::CausalConsistency,
        ] {
            assert!(satisfies_weak(&b.h, level));
        }
    }

    #[test]
    fn empty_history_is_consistent() {
        let h = History::default();
        for level in [
            IsolationLevel::ReadCommitted,
            IsolationLevel::ReadAtomic,
            IsolationLevel::CausalConsistency,
        ] {
            assert!(satisfies_weak(&h, level));
        }
    }

    #[test]
    #[should_panic(expected = "only handles RC/RA/CC")]
    fn rejects_strong_levels() {
        satisfies_weak(&History::default(), IsolationLevel::Serializability);
    }
}
