//! Polynomial-time consistency checking for Read Committed, Read Atomic and
//! Causal Consistency.
//!
//! For these levels the premise `φ(t2, α)` of the axiom schema does not
//! mention the commit order, so the set of commit-order edges forced by the
//! axioms can be computed in a single pass. The history satisfies the level
//! iff `so ∪ wr ∪ forced` is acyclic, in which case any topological order is
//! a witness commit order.
//!
//! # Incremental index
//!
//! The hot loops of the exploration (`ValidWrites`, `readLatest`, the DFS
//! baseline) re-check the *same* history after appending one event or
//! toggling one wr edge. `WeakIndex` therefore separates the check into
//! two parts:
//!
//! * **structural state** maintained across checks — the vertex table,
//!   per-session vertex lists, writers-per-var index, axiom instances
//!   (reads with a wr edge), the direct `so ∪ wr` matrix, its transitive
//!   closure (Causal Consistency only) and the base `so ∪ wr` graph. It
//!   syncs to a history by replaying the mutation deltas recorded since the
//!   last sync ([`History::deltas_since`]), paying O(delta) instead of
//!   O(events); reachability is updated under edge insertion by row-OR
//!   propagation from the new edge only. Inverse deltas (pops, unset wr
//!   edges) are undone by restoring the dirty closure rows saved when the
//!   matching forward delta was applied — mirroring the history's own
//!   checkpoint/undo journal — or, when the matching forward delta predates
//!   the last full rebuild, by recomputing just the affected relation. A
//!   delta stream the index cannot replay (an out-of-order wr insertion, a
//!   trimmed delta window, a different history) triggers a full rebuild.
//! * **per-check work** — collecting the forced commit-order edges from the
//!   axiom instances and testing acyclicity of `base ∪ forced` — which is
//!   bounded by the number of axiom instances, not by the history size.

use std::collections::VecDeque;

use crate::history::{DeltaEventInfo, History, HistoryDelta};
use crate::isolation::{IsolationLevel, LevelSpec};
use crate::relations::{BitMatrix, Digraph};
use crate::transaction::TxId;
use crate::value::Var;

/// Absent-vertex sentinel of the direct-indexed `TxId.0 ↦ vertex` table.
const NO_VERTEX: u32 = u32::MAX;

/// Checks Read Committed, Read Atomic or Causal Consistency.
///
/// # Panics
///
/// Panics if called with a level outside `{RC, RA, CC}`.
pub fn satisfies_weak(h: &History, level: IsolationLevel) -> bool {
    let mut idx = WeakIndex::new(level);
    idx.sync(h);
    idx.decide()
}

/// One axiom instance: a read of `var` in transaction (vertex) `reader`
/// reading from `writer`, with `prefix` wr-reads of the same transaction
/// preceding it in program order (the Read Committed premise set).
#[derive(Debug)]
struct ReadInfo {
    /// Identifier of the read event (for delta matching).
    read: u32,
    reader: u32,
    writer: u32,
    /// Number of entries of `wr_seqs[reader]` that po-precede this read.
    prefix: u32,
    var: Var,
}

/// Undo record for one applied delta, restored in LIFO order when the
/// history rolls the corresponding mutation back.
#[derive(Debug)]
enum UndoRec {
    /// A `Begin`: the transaction is the last vertex; `g_edge` is the base
    /// edge added from its session predecessor (or the init vertex).
    Begin { tx: u32, g_edge: (u32, u32) },
    /// An appended event.
    Append { event: u32, kind: AppliedAppend },
    /// A fresh wr edge. `rows` is the `(start, count, row width)` of the
    /// saved closure rows in the [`SavedRows`] arena.
    SetWr {
        read: u32,
        so_wr_was_set: bool,
        g_pushed: bool,
        rows: (u32, u32, u32),
    },
}

/// What applying an `Append` delta changed, by event kind.
#[derive(Debug)]
enum AppliedAppend {
    /// Reads and commits leave the index untouched (a read only matters
    /// once its wr edge arrives; commit status is irrelevant to the weak
    /// levels).
    Inert,
    /// A write: `new_var` records whether this was the vertex's first
    /// (visible) write to the variable, i.e. whether the writers index and
    /// the per-vertex written-variable list gained an entry.
    Write { var: Var, new_var: bool },
    /// An abort: the vertex's writes were removed from the writers index at
    /// the recorded positions.
    Abort { removed: Vec<(Var, u32)> },
}

/// Arena for closure rows saved before an incremental update dirties them,
/// so a matched inverse delta restores them without recomputation.
#[derive(Debug, Default)]
struct SavedRows {
    words: Vec<u64>,
    /// `(row index, word offset into `words`)`; the row width is recorded
    /// per [`UndoRec::SetWr`] (the stride can only grow between save and
    /// restore, and only by then-undone mutations, so a restore zero-fills
    /// any extra words — whose columns were cleared by those undos).
    entries: Vec<(u32, u32)>,
}

/// Reusable, incrementally synced state for the weak-level checks. One
/// instance is owned by each [`crate::check::engine::WeakEngine`].
#[derive(Debug)]
pub(crate) struct WeakIndex {
    /// Level assignment. For the uniform specs of [`satisfies_weak`] /
    /// `WeakEngine` every reader uses the same premise; a mixed spec makes
    /// each read contribute the forced edges of *its reader's* level
    /// (readers at `true`/SI/SER contribute none — the strong levels are
    /// handled by the commit-order search in [`crate::check::mixed`]).
    spec: LevelSpec,
    /// Whether the transitive closure `reach` is maintained (present iff
    /// the spec assigns Causal Consistency somewhere).
    want_reach: bool,
    /// Identity + generation of the history this index is synced to.
    uid: u64,
    gen: u64,
    synced: bool,
    /// Vertex table: vertex 0 is the init transaction.
    txs: Vec<TxId>,
    /// Direct-indexed `TxId.0 ↦ vertex` ([`NO_VERTEX`] = absent).
    index: Vec<u32>,
    /// Per-vertex session id / position within the session (unused for 0).
    vtx_session: Vec<u32>,
    vtx_sidx: Vec<u32>,
    vtx_aborted: Vec<bool>,
    /// Per-vertex isolation level resolved from `spec` (default for 0).
    vtx_level: Vec<IsolationLevel>,
    /// Per-session vertex sequences (session order).
    session_vtx: Vec<Vec<u32>>,
    /// Per-vertex `(var, write-event count)` pairs, first-write order.
    vtx_writes: Vec<Vec<(Var, u32)>>,
    /// Per-variable non-aborted writer vertices.
    writers: Vec<Vec<u32>>,
    /// Direct `so ∪ wr` membership (all session pairs, init row, wr edges).
    so_wr: BitMatrix,
    /// Transitive closure of `so_wr` (maintained when `want_reach`).
    reach: BitMatrix,
    /// Base graph: session chains + init edges + wr edges (no forced edges).
    graph: Digraph,
    /// Axiom instances: reads with a wr dependency.
    reads: Vec<ReadInfo>,
    /// Per-vertex wr-read writer vertices, in program order, plus the po
    /// positions of those reads (ascending).
    wr_seqs: Vec<Vec<u32>>,
    wr_read_pos: Vec<Vec<u32>>,
    /// Verdict of the last `decide` for the current sync point, reused
    /// verbatim while the history's generation is unchanged (covers
    /// re-checks whose memo entry was evicted).
    verdict: Option<bool>,
    /// LIFO undo journal mirroring the history's, plus the saved-row arena.
    undo: Vec<UndoRec>,
    saved: SavedRows,
    /// Statistics: how the last `sync` was served.
    pub(crate) incremental_hits: u64,
    pub(crate) full_rebuilds: u64,
    // Per-check scratch.
    forced: Vec<(u32, u32)>,
    forced_heads: Vec<u32>,
    forced_sorted: Vec<u32>,
    indeg: Vec<u32>,
    kahn: VecDeque<u32>,
    row_buf: Vec<u64>,
}

impl WeakIndex {
    /// Creates an empty index for one of `{RC, RA, CC}`.
    ///
    /// # Panics
    ///
    /// Panics if called with a level outside `{RC, RA, CC}`.
    pub fn new(level: IsolationLevel) -> Self {
        assert!(
            matches!(
                level,
                IsolationLevel::ReadCommitted
                    | IsolationLevel::ReadAtomic
                    | IsolationLevel::CausalConsistency
            ),
            "satisfies_weak only handles RC/RA/CC, got {level}"
        );
        Self::new_spec(LevelSpec::uniform(level))
    }

    /// Creates an empty index for an arbitrary level assignment. Readers at
    /// weak levels contribute their forced edges; readers at `true`, SI or
    /// SER contribute none (see [`crate::check::mixed`] for how the strong
    /// levels are decided on top of this index).
    pub(crate) fn new_spec(spec: LevelSpec) -> Self {
        WeakIndex {
            want_reach: spec.mentions(IsolationLevel::CausalConsistency),
            spec,
            uid: 0,
            gen: 0,
            synced: false,
            txs: Vec::new(),
            index: Vec::new(),
            vtx_session: Vec::new(),
            vtx_sidx: Vec::new(),
            vtx_aborted: Vec::new(),
            vtx_level: Vec::new(),
            session_vtx: Vec::new(),
            vtx_writes: Vec::new(),
            writers: Vec::new(),
            so_wr: BitMatrix::default(),
            reach: BitMatrix::default(),
            graph: Digraph::default(),
            reads: Vec::new(),
            wr_seqs: Vec::new(),
            wr_read_pos: Vec::new(),
            verdict: None,
            undo: Vec::new(),
            saved: SavedRows::default(),
            incremental_hits: 0,
            full_rebuilds: 0,
            forced: Vec::new(),
            forced_heads: Vec::new(),
            forced_sorted: Vec::new(),
            indeg: Vec::new(),
            kahn: VecDeque::new(),
            row_buf: Vec::new(),
        }
    }

    /// Brings the index in sync with `h`, replaying the recorded mutation
    /// deltas when possible and rebuilding from scratch otherwise.
    pub fn sync(&mut self, h: &History) {
        if self.synced && self.uid == h.uid() {
            if self.gen == h.generation() {
                self.incremental_hits += 1;
                return;
            }
            self.verdict = None;
            let replayed = match h.deltas_since(self.gen) {
                None => false,
                Some(deltas) => {
                    let mut ok = true;
                    for d in deltas {
                        if !self.apply(d) {
                            ok = false;
                            break;
                        }
                    }
                    ok
                }
            };
            if replayed {
                self.gen = h.generation();
                self.incremental_hits += 1;
                return;
            }
        }
        self.rebuild(h);
        self.full_rebuilds += 1;
    }

    /// Decides the isolation level for the currently synced history:
    /// collects the forced commit-order edges from the axiom instances and
    /// tests acyclicity of the base graph extended with them.
    pub fn decide(&mut self) -> bool {
        debug_assert!(self.synced, "decide on an unsynced index");
        self.collect_forced();
        self.forced_acyclic()
    }

    /// Cold evidence path of [`decide`](Self::decide): collects the forced
    /// edges and, when `so ∪ wr ∪ forced` is acyclic, returns a topological
    /// order of the transactions (init first) — a total commit order
    /// witnessing every weak reader's axioms, since the forced edges are
    /// exactly the constraints those axioms impose. Returns `None` on a
    /// cycle. Unlike the in-place Kahn of `forced_acyclic`, this allocates
    /// and is only meant for on-demand witness reconstruction.
    pub(crate) fn witness_order(&mut self) -> Option<Vec<TxId>> {
        debug_assert!(self.synced, "witness_order on an unsynced index");
        self.collect_forced();
        let n = self.txs.len();
        let mut indeg = vec![0usize; n];
        for v in 0..n {
            for &w in self.graph.successors(v) {
                indeg[w] += 1;
            }
        }
        for &(_, b) in &self.forced {
            indeg[b as usize] += 1;
        }
        let mut queue: VecDeque<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop_front() {
            order.push(self.txs[v as usize]);
            for &w in self.graph.successors(v as usize) {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push_back(w as u32);
                }
            }
            for &(a, b) in &self.forced {
                if a == v {
                    indeg[b as usize] -= 1;
                    if indeg[b as usize] == 0 {
                        queue.push_back(b);
                    }
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// A topological order of the base graph alone (`so ∪ wr`, forced edges
    /// ignored), init first — the witness commit order for the trivial
    /// level, which imposes no axioms beyond well-formedness. `None` only
    /// for a malformed (cyclic `so ∪ wr`) history.
    pub(crate) fn base_topological_order(&mut self) -> Option<Vec<TxId>> {
        debug_assert!(self.synced, "base_topological_order on an unsynced index");
        let n = self.txs.len();
        let mut indeg = vec![0usize; n];
        for v in 0..n {
            for &w in self.graph.successors(v) {
                indeg[w] += 1;
            }
        }
        let mut queue: VecDeque<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop_front() {
            order.push(self.txs[v as usize]);
            for &w in self.graph.successors(v as usize) {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push_back(w as u32);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Collects the commit-order edges forced by the axiom instances into
    /// `self.forced`, each read contributing under *its reader's* level
    /// (readers at `true`/SI/SER contribute nothing).
    fn collect_forced(&mut self) {
        let forced = &mut self.forced;
        forced.clear();
        for r in &self.reads {
            let (i3, i1) = (r.reader, r.writer);
            let level = self.vtx_level[i3 as usize];
            if !matches!(
                level,
                IsolationLevel::ReadCommitted
                    | IsolationLevel::ReadAtomic
                    | IsolationLevel::CausalConsistency
            ) {
                continue;
            }
            let var_writers = self
                .writers
                .get(r.var.0 as usize)
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            for i2 in std::iter::once(0).chain(var_writers.iter().copied()) {
                if i2 == i1 || i2 == i3 {
                    continue;
                }
                let premise = match level {
                    // ∃ read c of t3, po-before α, reading from t2.
                    IsolationLevel::ReadCommitted => {
                        self.wr_seqs[i3 as usize][..r.prefix as usize].contains(&i2)
                    }
                    IsolationLevel::ReadAtomic => self.so_wr.get(i2 as usize, i3 as usize),
                    IsolationLevel::CausalConsistency => self.reach.get(i2 as usize, i3 as usize),
                    _ => unreachable!(),
                };
                if premise {
                    forced.push((i2, i1));
                }
            }
        }
    }

    /// Collects the forced edges (see [`collect_forced`](Self::collect_forced))
    /// and hands them out as transaction-id pairs, for the mixed-level
    /// commit-order search which runs over transactions rather than this
    /// index's vertex numbering.
    pub(crate) fn collect_forced_tx(&mut self, out: &mut Vec<(TxId, TxId)>) {
        debug_assert!(self.synced, "collect_forced_tx on an unsynced index");
        self.collect_forced();
        out.clear();
        out.extend(
            self.forced
                .iter()
                .map(|&(a, b)| (self.txs[a as usize], self.txs[b as usize])),
        );
    }

    /// Tests acyclicity of the base graph extended with `self.forced`.
    fn forced_acyclic(&mut self) -> bool {
        let forced = &mut self.forced;
        // Kahn's algorithm over the base graph plus the forced edges
        // (forced edges may repeat base edges; multiplicity is harmless as
        // long as in-degrees count it symmetrically). Forced edges are
        // bucketed by source with a counting sort so relaxation touches
        // each edge once instead of scanning the list per vertex.
        let n = self.txs.len();
        self.forced_heads.clear();
        self.forced_heads.resize(n + 1, 0);
        for &(a, _) in forced.iter() {
            self.forced_heads[a as usize + 1] += 1;
        }
        for v in 0..n {
            self.forced_heads[v + 1] += self.forced_heads[v];
        }
        self.forced_sorted.clear();
        self.forced_sorted.resize(forced.len(), 0);
        {
            let mut cursor = std::mem::take(&mut self.indeg);
            cursor.clear();
            cursor.extend_from_slice(&self.forced_heads[..n]);
            for &(a, b) in forced.iter() {
                let c = &mut cursor[a as usize];
                self.forced_sorted[*c as usize] = b;
                *c += 1;
            }
            self.indeg = cursor;
        }
        self.indeg.clear();
        self.indeg.resize(n, 0);
        for v in 0..n {
            for &w in self.graph.successors(v) {
                self.indeg[w] += 1;
            }
        }
        for &(_, b) in forced.iter() {
            self.indeg[b as usize] += 1;
        }
        self.kahn.clear();
        for v in 0..n {
            if self.indeg[v] == 0 {
                self.kahn.push_back(v as u32);
            }
        }
        let mut seen = 0usize;
        while let Some(v) = self.kahn.pop_front() {
            seen += 1;
            for &w in self.graph.successors(v as usize) {
                self.indeg[w] -= 1;
                if self.indeg[w] == 0 {
                    self.kahn.push_back(w as u32);
                }
            }
            let bucket =
                self.forced_heads[v as usize] as usize..self.forced_heads[v as usize + 1] as usize;
            for k in bucket {
                let b = self.forced_sorted[k];
                self.indeg[b as usize] -= 1;
                if self.indeg[b as usize] == 0 {
                    self.kahn.push_back(b);
                }
            }
        }
        seen == n
    }

    // ------------------------------------------------------------------
    // Full rebuild
    // ------------------------------------------------------------------

    /// Rebuilds every structure from scratch with a single pass over the
    /// transaction logs, and re-anchors the sync point at `h`'s current
    /// generation.
    fn rebuild(&mut self, h: &History) {
        self.verdict = None;
        self.undo.clear();
        self.saved.words.clear();
        self.saved.entries.clear();
        self.txs.clear();
        self.txs.push(TxId::INIT);
        self.txs.extend(h.tx_ids());
        let n = self.txs.len();
        self.index.clear();
        self.index.resize(h.max_tx_id() as usize + 1, NO_VERTEX);
        for (i, t) in self.txs.iter().enumerate() {
            self.index[t.0 as usize] = i as u32;
        }
        self.vtx_session.clear();
        self.vtx_session.resize(n, u32::MAX);
        self.vtx_sidx.clear();
        self.vtx_sidx.resize(n, u32::MAX);
        self.vtx_aborted.clear();
        self.vtx_aborted.resize(n, false);
        self.vtx_level.clear();
        self.vtx_level.resize(n, self.spec.default_level());
        for s in &mut self.session_vtx {
            s.clear();
        }
        for w in &mut self.vtx_writes {
            w.clear();
        }
        self.vtx_writes.resize_with(n, Vec::new);
        for w in &mut self.writers {
            w.clear();
        }
        for seq in &mut self.wr_seqs {
            seq.clear();
        }
        self.wr_seqs.resize_with(n, Vec::new);
        for pos in &mut self.wr_read_pos {
            pos.clear();
        }
        self.wr_read_pos.resize_with(n, Vec::new);
        self.reads.clear();
        self.graph.reset(n);
        self.so_wr.reset(n);

        for j in 1..n {
            self.so_wr.set(0, j);
        }
        for (sid, session) in h.sessions() {
            if self.session_vtx.len() <= sid.0 as usize {
                self.session_vtx.resize_with(sid.0 as usize + 1, Vec::new);
            }
            for (k, a) in session.iter().enumerate() {
                let i = self.index[a.0 as usize] as usize;
                self.session_vtx[sid.0 as usize].push(i as u32);
                self.vtx_session[i] = sid.0;
                self.vtx_sidx[i] = k as u32;
                self.vtx_level[i] = self.spec.level_of(sid.0, k as u32);
                let pred = if k == 0 {
                    0
                } else {
                    self.index[session[k - 1].0 as usize] as usize
                };
                self.graph.add_edge(pred, i);
                for b in &session[k + 1..] {
                    self.so_wr.set(i, self.index[b.0 as usize] as usize);
                }
                let log = h.tx(*a);
                let aborted = log.is_aborted();
                self.vtx_aborted[i] = aborted;
                for (po, e) in log.events.iter().enumerate() {
                    match &e.kind {
                        crate::event::EventKind::Write(x, _) => {
                            self.note_write(i as u32, *x, aborted);
                        }
                        crate::event::EventKind::Read(x) => {
                            if let Some(w) = h.wr_of(e.id) {
                                let iw = self.index[w.0 as usize];
                                self.push_read(e.id.0, i as u32, iw, *x, po as u32);
                                if iw as usize != i {
                                    self.graph.add_edge(iw as usize, i);
                                    self.so_wr.set(iw as usize, i);
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }

        // Causal reachability (so ∪ wr)+ as one packed transitive closure.
        if self.want_reach {
            self.reach.clone_from(&self.so_wr);
            self.reach.transitive_close();
        }
        self.uid = h.uid();
        self.gen = h.generation();
        self.synced = true;
    }

    /// Records a write event of vertex `i` to `x`: bumps the per-vertex
    /// count and indexes the writer on its first write (skipping the
    /// writers index for aborted vertices). Returns whether a new
    /// `(vertex, var)` entry was created.
    fn note_write(&mut self, i: u32, x: Var, aborted: bool) -> bool {
        if let Some(entry) = self.vtx_writes[i as usize]
            .iter_mut()
            .find(|(y, _)| *y == x)
        {
            entry.1 += 1;
            return false;
        }
        self.vtx_writes[i as usize].push((x, 1));
        if self.writers.len() <= x.0 as usize {
            self.writers.resize_with(x.0 as usize + 1, Vec::new);
        }
        if !aborted {
            self.writers[x.0 as usize].push(i);
        }
        true
    }

    /// Appends an axiom instance for a wr read of vertex `i` at po position
    /// `po` reading from vertex `iw`.
    fn push_read(&mut self, read: u32, i: u32, iw: u32, x: Var, po: u32) {
        let prefix = self.wr_seqs[i as usize].len() as u32;
        self.reads.push(ReadInfo {
            read,
            reader: i,
            writer: iw,
            prefix,
            var: x,
        });
        self.wr_seqs[i as usize].push(iw);
        self.wr_read_pos[i as usize].push(po);
    }

    // ------------------------------------------------------------------
    // Incremental delta replay
    // ------------------------------------------------------------------

    /// Applies one observed mutation. Returns `false` when the delta cannot
    /// be replayed incrementally (the caller falls back to a rebuild; the
    /// index may be left half-updated and must not be used before then).
    fn apply(&mut self, d: &HistoryDelta) -> bool {
        match *d {
            HistoryDelta::Begin { session, tx } => {
                self.apply_begin(session.0, tx);
                true
            }
            HistoryDelta::UndoBegin { tx, .. } => match self.undo.last() {
                Some(UndoRec::Begin { tx: t, .. }) if *t == tx.0 => {
                    let Some(UndoRec::Begin { g_edge, .. }) = self.undo.pop() else {
                        unreachable!()
                    };
                    self.undo_begin(g_edge);
                    true
                }
                None if self.txs.last() == Some(&tx) => {
                    // The matching Begin predates the last rebuild: undoing
                    // a begin needs no saved state (the vertex is the last
                    // one and fully disconnected on the outgoing side).
                    let v = (self.txs.len() - 1) as u32;
                    let s = self.vtx_session[v as usize] as usize;
                    let pred = match self.session_vtx[s].len() {
                        0 | 1 => 0,
                        k => self.session_vtx[s][k - 2],
                    };
                    self.undo_begin((pred, v));
                    true
                }
                // A `retract_begin` of a transaction that is not the newest
                // vertex (or a mismatched stack top) would need vertex
                // renumbering: rebuild instead.
                _ => false,
            },
            HistoryDelta::Append {
                event, info, tx, ..
            } => {
                let Some(&v) = self.index.get(tx.0 as usize) else {
                    return false;
                };
                if v == NO_VERTEX {
                    return false;
                }
                let kind = match info {
                    DeltaEventInfo::Read(_) | DeltaEventInfo::Commit => AppliedAppend::Inert,
                    DeltaEventInfo::Write(x) => {
                        debug_assert!(!self.vtx_aborted[v as usize]);
                        let new_var = self.note_write(v, x, false);
                        AppliedAppend::Write { var: x, new_var }
                    }
                    DeltaEventInfo::Abort => {
                        self.vtx_aborted[v as usize] = true;
                        let mut removed = Vec::new();
                        for k in 0..self.vtx_writes[v as usize].len() {
                            let (x, _) = self.vtx_writes[v as usize][k];
                            let list = &mut self.writers[x.0 as usize];
                            let pos = list
                                .iter()
                                .position(|w| *w == v)
                                .expect("aborted writer was indexed");
                            list.remove(pos);
                            removed.push((x, pos as u32));
                        }
                        AppliedAppend::Abort { removed }
                    }
                };
                self.undo.push(UndoRec::Append {
                    event: event.0,
                    kind,
                });
                true
            }
            HistoryDelta::Pop {
                event, tx, info, ..
            } => match self.undo.last() {
                Some(UndoRec::Append { event: e, .. }) if *e == event.0 => {
                    let Some(UndoRec::Append { kind, .. }) = self.undo.pop() else {
                        unreachable!()
                    };
                    let v = self.index[tx.0 as usize];
                    self.undo_append(v, kind);
                    true
                }
                None => self.destructive_pop(tx, info),
                Some(_) => false,
            },
            HistoryDelta::SetWr {
                read,
                reader,
                writer,
                var,
                po,
            } => self.apply_set_wr(read.0, reader, writer, var, po),
            HistoryDelta::UnsetWr {
                read,
                reader,
                writer,
                po,
                ..
            } => match self.undo.last() {
                Some(UndoRec::SetWr { read: r, .. }) if *r == read.0 => {
                    let Some(UndoRec::SetWr {
                        so_wr_was_set,
                        g_pushed,
                        rows,
                        ..
                    }) = self.undo.pop()
                    else {
                        unreachable!()
                    };
                    self.undo_set_wr(reader, writer, so_wr_was_set, g_pushed, rows);
                    true
                }
                None => self.destructive_unset_wr(read.0, reader, writer, po),
                Some(_) => false,
            },
        }
    }

    fn apply_begin(&mut self, session: u32, tx: TxId) {
        let v = self.txs.len() as u32;
        self.txs.push(tx);
        if self.index.len() <= tx.0 as usize {
            self.index.resize(tx.0 as usize + 1, NO_VERTEX);
        }
        debug_assert_eq!(self.index[tx.0 as usize], NO_VERTEX);
        self.index[tx.0 as usize] = v;
        if self.session_vtx.len() <= session as usize {
            self.session_vtx.resize_with(session as usize + 1, Vec::new);
        }
        let sidx = self.session_vtx[session as usize].len() as u32;
        let pred = self.session_vtx[session as usize]
            .last()
            .copied()
            .unwrap_or(0);
        self.vtx_session.push(session);
        self.vtx_sidx.push(sidx);
        self.vtx_aborted.push(false);
        self.vtx_level.push(self.spec.level_of(session, sidx));
        self.vtx_writes.push(Vec::new());
        self.wr_seqs.push(Vec::new());
        self.wr_read_pos.push(Vec::new());
        let n = v as usize + 1;
        self.so_wr.grow(n);
        self.so_wr.set(0, v as usize);
        for k in 0..sidx {
            let p = self.session_vtx[session as usize][k as usize] as usize;
            self.so_wr.set(p, v as usize);
        }
        self.graph.add_vertex();
        let added = self.graph.try_add_edge(pred as usize, v as usize);
        debug_assert!(added, "fresh vertex cannot have the base edge already");
        if self.want_reach {
            // The new vertex is a sink: its ancestors are the init vertex,
            // its session predecessor and everything reaching it.
            self.reach.grow(n);
            for w in 0..v as usize {
                if w == 0 || w == pred as usize || self.reach.get(w, pred as usize) {
                    self.reach.set(w, v as usize);
                }
            }
        }
        self.session_vtx[session as usize].push(v);
        self.undo.push(UndoRec::Begin {
            tx: tx.0,
            g_edge: (pred, v),
        });
    }

    /// Removes the last vertex (a begin-only transaction: no writes, no wr
    /// reads in either direction, by journal LIFO ordering).
    fn undo_begin(&mut self, g_edge: (u32, u32)) {
        let v = self.txs.len() - 1;
        debug_assert_eq!(g_edge.1 as usize, v);
        debug_assert!(self.vtx_writes[v].is_empty(), "begin undone with writes");
        debug_assert!(self.wr_seqs[v].is_empty(), "begin undone with wr reads");
        let tx = self.txs.pop().expect("vertex to pop");
        self.index[tx.0 as usize] = NO_VERTEX;
        let s = self.vtx_session.pop().expect("vertex session") as usize;
        self.vtx_sidx.pop();
        self.vtx_aborted.pop();
        self.vtx_level.pop();
        self.vtx_writes.pop();
        self.wr_seqs.pop();
        self.wr_read_pos.pop();
        let popped = self.session_vtx[s].pop();
        debug_assert_eq!(popped, Some(v as u32));
        self.graph.remove_edge(g_edge.0 as usize, v);
        self.graph.pop_vertex();
        self.so_wr.shrink(v);
        if self.want_reach {
            self.reach.shrink(v);
        }
    }

    fn undo_append(&mut self, v: u32, kind: AppliedAppend) {
        match kind {
            AppliedAppend::Inert => {}
            AppliedAppend::Write { var, new_var } => {
                let entry = self.vtx_writes[v as usize]
                    .iter_mut()
                    .rev()
                    .find(|(y, _)| *y == var)
                    .expect("undone write was recorded");
                entry.1 -= 1;
                if entry.1 == 0 {
                    debug_assert!(new_var, "count reached zero for a repeated write");
                    let (x, _) = self.vtx_writes[v as usize].pop().expect("write entry");
                    debug_assert_eq!(x, var, "write entries are undone in LIFO order");
                    if !self.vtx_aborted[v as usize] {
                        let popped = self.writers[var.0 as usize].pop();
                        debug_assert_eq!(popped, Some(v));
                    }
                }
            }
            AppliedAppend::Abort { removed } => {
                self.vtx_aborted[v as usize] = false;
                for (x, pos) in removed.into_iter().rev() {
                    self.writers[x.0 as usize].insert(pos as usize, v);
                }
            }
        }
    }

    /// Handles a `Pop` whose matching `Append` predates the last rebuild:
    /// the effects are recomputed from the per-vertex write counts instead
    /// of an undo record.
    fn destructive_pop(&mut self, tx: TxId, info: DeltaEventInfo) -> bool {
        let v = self.index[tx.0 as usize];
        match info {
            DeltaEventInfo::Read(_) | DeltaEventInfo::Commit => {}
            DeltaEventInfo::Write(x) => {
                let Some(k) = self.vtx_writes[v as usize]
                    .iter()
                    .position(|(y, _)| *y == x)
                else {
                    return false;
                };
                self.vtx_writes[v as usize][k].1 -= 1;
                if self.vtx_writes[v as usize][k].1 == 0 {
                    self.vtx_writes[v as usize].remove(k);
                    if !self.vtx_aborted[v as usize] {
                        let list = &mut self.writers[x.0 as usize];
                        let pos = list.iter().position(|w| *w == v).expect("writer indexed");
                        list.remove(pos);
                    }
                }
            }
            DeltaEventInfo::Abort => {
                self.vtx_aborted[v as usize] = false;
                for k in 0..self.vtx_writes[v as usize].len() {
                    let (x, _) = self.vtx_writes[v as usize][k];
                    self.writers[x.0 as usize].push(v);
                }
            }
        }
        true
    }

    fn apply_set_wr(&mut self, read: u32, reader: TxId, writer: TxId, var: Var, po: u32) -> bool {
        let (Some(&i), Some(&iw)) = (
            self.index.get(reader.0 as usize),
            self.index.get(writer.0 as usize),
        ) else {
            return false;
        };
        if i == NO_VERTEX || iw == NO_VERTEX {
            return false;
        }
        // Only po-in-order insertions keep the prefix fields of later
        // axiom instances valid; out-of-order churn forces a rebuild.
        if self.wr_read_pos[i as usize]
            .last()
            .is_some_and(|l| *l >= po)
        {
            return false;
        }
        self.push_read(read, i, iw, var, po);
        let (mut so_wr_was_set, mut g_pushed) = (true, false);
        let mut rows = (
            self.saved.entries.len() as u32,
            0u32,
            self.reach.words_per_row() as u32,
        );
        if iw != i {
            so_wr_was_set = self.so_wr.get(iw as usize, i as usize);
            if !so_wr_was_set {
                self.so_wr.set(iw as usize, i as usize);
            }
            g_pushed = self.graph.try_add_edge(iw as usize, i as usize);
            if self.want_reach {
                self.reach_insert_saving(iw as usize, i as usize);
                rows.1 = self.saved.entries.len() as u32 - rows.0;
            }
        }
        self.undo.push(UndoRec::SetWr {
            read,
            so_wr_was_set,
            g_pushed,
            rows,
        });
        true
    }

    /// Inserts edge `(u, v)` into the closure `reach`, saving every dirtied
    /// row in the arena: rows of `u` and of every vertex reaching `u` gain
    /// `v`'s successor set plus `v` itself.
    fn reach_insert_saving(&mut self, u: usize, v: usize) {
        if self.reach.get(u, v) {
            return;
        }
        let n = self.txs.len();
        self.row_buf.clear();
        self.row_buf.extend_from_slice(self.reach.row(v));
        for w in 0..n {
            if (w == u || self.reach.get(w, u)) && !self.reach.get(w, v) {
                let offset = self.saved.words.len() as u32;
                self.saved.words.extend_from_slice(self.reach.row(w));
                self.saved.entries.push((w as u32, offset));
                let buf = std::mem::take(&mut self.row_buf);
                self.reach.or_into_row_with_bit(w, &buf, v);
                self.row_buf = buf;
            }
        }
    }

    fn undo_set_wr(
        &mut self,
        reader: TxId,
        writer: TxId,
        so_wr_was_set: bool,
        g_pushed: bool,
        rows: (u32, u32, u32),
    ) {
        let i = self.index[reader.0 as usize];
        let iw = self.index[writer.0 as usize];
        let r = self.reads.pop().expect("read instance to undo");
        debug_assert_eq!((r.reader, r.writer), (i, iw));
        self.wr_seqs[i as usize].pop();
        self.wr_read_pos[i as usize].pop();
        if iw != i {
            if !so_wr_was_set {
                self.so_wr.clear_bit(iw as usize, i as usize);
            }
            if g_pushed {
                self.graph.remove_edge(iw as usize, i as usize);
            }
            if self.want_reach {
                let (start, len, width) = (rows.0 as usize, rows.1 as usize, rows.2 as usize);
                for k in (start..start + len).rev() {
                    let (row, offset) = self.saved.entries[k];
                    let words = &self.saved.words[offset as usize..offset as usize + width];
                    self.reach.restore_row(row as usize, words);
                }
                if len > 0 {
                    self.saved
                        .words
                        .truncate(self.saved.entries[start].1 as usize);
                }
                self.saved.entries.truncate(start);
            }
        }
    }

    /// Handles an `UnsetWr` whose matching `SetWr` predates the last
    /// rebuild: indexes are fixed up in place and (for Causal Consistency)
    /// the closure is recomputed from the direct relation — cheaper than a
    /// rebuild, which would also rescan every transaction log.
    fn destructive_unset_wr(&mut self, read: u32, reader: TxId, writer: TxId, po: u32) -> bool {
        let i = self.index[reader.0 as usize];
        let iw = self.index[writer.0 as usize];
        let Some(pos) = self.reads.iter().position(|r| r.read == read) else {
            return false;
        };
        self.reads.swap_remove(pos);
        let Ok(k) = self.wr_read_pos[i as usize].binary_search(&po) else {
            return false;
        };
        self.wr_seqs[i as usize].remove(k);
        self.wr_read_pos[i as usize].remove(k);
        for r in &mut self.reads {
            if r.reader == i && r.prefix > k as u32 {
                r.prefix -= 1;
            }
        }
        if iw != i {
            let still_wr = self.reads.iter().any(|r| r.reader == i && r.writer == iw);
            if !still_wr {
                let same_session =
                    iw != 0 && self.vtx_session[iw as usize] == self.vtx_session[i as usize];
                let so_pair = iw == 0
                    || (same_session && self.vtx_sidx[iw as usize] < self.vtx_sidx[i as usize]);
                if !so_pair {
                    self.so_wr.clear_bit(iw as usize, i as usize);
                }
                let chain_edge = if iw == 0 {
                    self.vtx_sidx[i as usize] == 0
                } else {
                    same_session && self.vtx_sidx[iw as usize] + 1 == self.vtx_sidx[i as usize]
                };
                if !chain_edge {
                    self.graph.remove_edge(iw as usize, i as usize);
                }
                if self.want_reach {
                    self.reach.clone_from(&self.so_wr);
                    self.reach.transitive_close();
                }
            }
        }
        true
    }
}

/// Like [`satisfies_weak`], reusing a caller-owned index (the engines'
/// entry point).
pub(crate) fn satisfies_weak_with(h: &History, idx: &mut WeakIndex) -> bool {
    idx.sync(h);
    if let Some(v) = idx.verdict {
        return v;
    }
    let v = idx.decide();
    idx.verdict = Some(v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventId, EventKind};
    use crate::transaction::SessionId;
    use crate::value::{Value, Var};

    struct Builder {
        h: History,
        next_event: u32,
        next_tx: u32,
    }

    impl Builder {
        fn new() -> Self {
            Builder {
                h: History::new([]),
                next_event: 0,
                next_tx: 0,
            }
        }
        fn fresh(&mut self) -> EventId {
            self.next_event += 1;
            EventId(self.next_event)
        }
        fn begin(&mut self, s: u32) -> TxId {
            self.next_tx += 1;
            let id = TxId(self.next_tx);
            let idx = self.h.session_txs(SessionId(s)).len();
            let e = Event::new(self.fresh(), EventKind::Begin);
            self.h.begin_transaction(SessionId(s), id, idx, e);
            id
        }
        fn write(&mut self, s: u32, x: Var, v: i64) {
            let e = Event::new(self.fresh(), EventKind::Write(x, Value::Int(v)));
            self.h.append_event(SessionId(s), e);
        }
        fn read(&mut self, s: u32, x: Var, from: TxId) {
            let e = Event::new(self.fresh(), EventKind::Read(x));
            let id = e.id;
            self.h.append_event(SessionId(s), e);
            self.h.set_wr(id, from);
        }
        fn commit(&mut self, s: u32) {
            let e = Event::new(self.fresh(), EventKind::Commit);
            self.h.append_event(SessionId(s), e);
        }
    }

    /// Fig. 3: CC violation, RA/RC consistent.
    fn fig3() -> History {
        let (x, y) = (Var(0), Var(1));
        let mut b = Builder::new();
        let t1 = b.begin(0);
        b.write(0, x, 1);
        b.commit(0);
        let t2 = b.begin(1);
        b.read(1, x, t1);
        b.write(1, x, 2);
        b.commit(1);
        let t4 = b.begin(2);
        b.read(2, x, t2);
        b.write(2, y, 1);
        b.commit(2);
        b.begin(3);
        b.read(3, x, t1);
        b.read(3, y, t4);
        b.commit(3);
        b.h
    }

    #[test]
    fn fig3_violates_cc_only() {
        let h = fig3();
        assert!(!satisfies_weak(&h, IsolationLevel::CausalConsistency));
        assert!(satisfies_weak(&h, IsolationLevel::ReadAtomic));
        assert!(satisfies_weak(&h, IsolationLevel::ReadCommitted));
    }

    /// Fig. 9d under CC: read of y from init while reading x from a later
    /// transaction in the same session is a Read Atomic violation too.
    #[test]
    fn fractured_read_violates_ra_but_not_rc() {
        // t1 (session 0): write x 1, write y 1
        // t2 (session 1): read y <- t1 ; read x <- init
        let (x, y) = (Var(0), Var(1));
        let mut b = Builder::new();
        let t1 = b.begin(0);
        b.write(0, x, 1);
        b.write(0, y, 1);
        b.commit(0);
        b.begin(1);
        b.read(1, y, t1);
        b.read(1, x, TxId::INIT);
        b.commit(1);
        let h = b.h;
        assert!(!satisfies_weak(&h, IsolationLevel::ReadAtomic));
        assert!(!satisfies_weak(&h, IsolationLevel::CausalConsistency));
        // RC: the read of x from init is preceded (po) by a read from t1,
        // so t1 must precede init in co: violation of RC as well.
        assert!(!satisfies_weak(&h, IsolationLevel::ReadCommitted));
        // Swapping the order of the two reads removes the RC violation.
        let mut b = Builder::new();
        let t1 = b.begin(0);
        b.write(0, x, 1);
        b.write(0, y, 1);
        b.commit(0);
        b.begin(1);
        b.read(1, x, TxId::INIT);
        b.read(1, y, t1);
        b.commit(1);
        let h = b.h;
        assert!(satisfies_weak(&h, IsolationLevel::ReadCommitted));
        assert!(!satisfies_weak(&h, IsolationLevel::ReadAtomic));
    }

    #[test]
    fn causal_violation_through_session_order() {
        // Session 0: t1 writes x=1 ; t2 writes x=2.
        // Session 1: t3 reads x from t1 — stale w.r.t. so: CC forbids
        // nothing here (t2 not causally before t3), so consistent.
        let x = Var(0);
        let mut b = Builder::new();
        let t1 = b.begin(0);
        b.write(0, x, 1);
        b.commit(0);
        b.begin(0);
        b.write(0, x, 2);
        b.commit(0);
        b.begin(1);
        b.read(1, x, t1);
        b.commit(1);
        assert!(satisfies_weak(&b.h, IsolationLevel::CausalConsistency));

        // But if t3 first reads x from t2 then reads x again from t1 the
        // second read is internal-free and CC (even RC) is violated.
        let mut b = Builder::new();
        let t1 = b.begin(0);
        b.write(0, x, 1);
        b.commit(0);
        let t2 = b.begin(0);
        b.write(0, x, 2);
        b.commit(0);
        b.begin(1);
        b.read(1, x, t2);
        b.read(1, x, t1);
        b.commit(1);
        assert!(!satisfies_weak(&b.h, IsolationLevel::ReadCommitted));
        assert!(!satisfies_weak(&b.h, IsolationLevel::CausalConsistency));
    }

    #[test]
    fn reading_own_session_past_is_consistent() {
        let x = Var(0);
        let mut b = Builder::new();
        let t1 = b.begin(0);
        b.write(0, x, 1);
        b.commit(0);
        b.begin(0);
        b.read(0, x, t1);
        b.commit(0);
        for level in [
            IsolationLevel::ReadCommitted,
            IsolationLevel::ReadAtomic,
            IsolationLevel::CausalConsistency,
        ] {
            assert!(satisfies_weak(&b.h, level));
        }
    }

    #[test]
    fn empty_history_is_consistent() {
        let h = History::default();
        for level in [
            IsolationLevel::ReadCommitted,
            IsolationLevel::ReadAtomic,
            IsolationLevel::CausalConsistency,
        ] {
            assert!(satisfies_weak(&h, level));
        }
    }

    #[test]
    #[should_panic(expected = "only handles RC/RA/CC")]
    fn rejects_strong_levels() {
        satisfies_weak(&History::default(), IsolationLevel::Serializability);
    }

    /// The incremental fast path: a candidate loop (set → check → unset)
    /// over one index must answer exactly like fresh indexes, and end up
    /// synced incrementally rather than via rebuilds.
    #[test]
    fn incremental_candidate_loop_matches_fresh_checks() {
        let x = Var(0);
        let mut b = Builder::new();
        let t1 = b.begin(0);
        b.write(0, x, 1);
        b.commit(0);
        let t2 = b.begin(1);
        b.write(1, x, 2);
        b.commit(1);
        b.begin(2);
        let mut h = b.h;
        let read = EventId(100);
        let mark = h.checkpoint();
        h.append_event(SessionId(2), Event::new(read, EventKind::Read(x)));

        let mut idx = WeakIndex::new(IsolationLevel::CausalConsistency);
        idx.sync(&h); // first sync: one rebuild
        assert_eq!(idx.full_rebuilds, 1);
        for writer in [TxId::INIT, t1, t2] {
            h.set_wr(read, writer);
            let inc = satisfies_weak_with(&h, &mut idx);
            let fresh = satisfies_weak(&h, IsolationLevel::CausalConsistency);
            assert_eq!(inc, fresh, "incremental disagrees for writer {writer}");
            h.unset_wr(read);
            assert_eq!(
                satisfies_weak_with(&h, &mut idx),
                satisfies_weak(&h, IsolationLevel::CausalConsistency)
            );
        }
        h.rollback(mark);
        assert!(satisfies_weak_with(&h, &mut idx));
        assert_eq!(idx.full_rebuilds, 1, "candidate loop forced a rebuild");
        assert!(idx.incremental_hits >= 6);
    }
}
