//! Stateful consistency-checking engines.
//!
//! The exploration algorithms of the paper decide `h ∈ I` for a huge number
//! of *closely related* candidate histories: `ValidWrites` retries the same
//! trial history with every candidate writer, `Optimality` re-checks pruned
//! prefixes, and a swap only changes a suffix of the previous candidate.
//! The free functions in [`crate::check`] recompute everything from scratch
//! on every call; the engines here make the hot path incremental:
//!
//! * every engine owns an **incrementally synced index** over the history
//!   it last saw (transaction vertex tables, writers-per-variable lists,
//!   axiom instances, word-packed reachability, the SER/SI per-transaction
//!   view), kept current through the history's mutation-observer API — see
//!   *Syncing from the delta log* below — so a check after one appended
//!   event or one toggled wr edge pays delta cost, not a rebuild;
//! * every engine owns a **result memo keyed by the rolling structural
//!   hash** ([`History::live_hash`]): the flat-arena history maintains the
//!   128-bit key incrementally on every push/pop/set-wr, so a memo lookup
//!   is a load instead of a walk of the history. Re-deciding a history
//!   that is structurally equal to one seen before (e.g. the unchanged
//!   prefix re-reached after a rollback or a swap) is a single hash
//!   lookup.
//!
//! # Syncing from the delta log
//!
//! Each [`History`] exposes an identity ([`History::uid`], fresh per
//! `new`/`clone`), a per-mutation generation counter
//! ([`History::generation`]) and a bounded chronological log of
//! self-contained mutation records ([`History::deltas_since`], entries of
//! type [`crate::history::HistoryDelta`]); rollbacks emit the *inverse*
//! deltas of the operations they undo. An engine remembers the
//! `(uid, generation)` it is synced to and, on the next memo miss, replays
//! the missing window: forward deltas update the index and push an undo
//! record (dirtied reachability rows are saved first), inverse deltas pop
//! and restore those records in LIFO order — mirroring the history's own
//! checkpoint/undo journal — or, when the matching forward delta predates
//! the engine's last rebuild, are applied destructively. Anything the
//! engine cannot replay (another history's uid, a trimmed window, an
//! out-of-po-order wr insertion, a non-LIFO inverse) falls back to a full
//! rebuild; [`EngineStats::incremental_hits`] / [`EngineStats::full_rebuilds`]
//! expose the split, and [`EngineStats::check_nanos`] the time spent
//! deciding misses.
//!
//! # Incrementality contract
//!
//! The memo assumes that consistency depends only on the structure the
//! rolling hash covers: per-session event sequences (`po`), session order,
//! written values and the `wr` relation by `(session, index)` writer
//! coordinates. This holds because the axioms of §2.2.2 only mention `po`,
//! `so`, `wr` and the existence of a commit order — never raw identifiers.
//! Unlike the canonical [`History::fingerprint_hash`], the rolling hash is
//! not invariant under *variable renaming* — irrelevant within one engine,
//! whose exploration interns variables consistently; renamed twins miss
//! the memo and simply recompute the same verdict.
//! Keys are hash-compacted to 128 bits (as classically done for
//! visited-state sets in stateless model checking), so a collision —
//! astronomically unlikely — could misclassify one history. The memo is a
//! direct-mapped table of 16-byte slots (the verdict is packed into one
//! key bit) that grows geometrically up to [`MEMO_CAPACITY`] slots;
//! colliding keys simply evict, so memory stays hard-bounded no matter how
//! long the exploration runs. Scratch buffers (the one-pass saturation
//! index of the weak engine, the failed-state tables of SER/SI) likewise
//! survive arbitrarily many checkpoint/rollback cycles of the histories
//! they are fed.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use crate::check::evidence::{self, Verdict};
use crate::check::frontier::FrontierIndex;
use crate::check::shared::SharedMemo;
use crate::check::{mixed, pc, ser, si, weak};
use crate::history::History;
use crate::isolation::{IsolationLevel, LevelSpec};

/// Maximum number of slots of an engine's direct-mapped result memo
/// (16 bytes per slot: a hard 1 MiB ceiling per engine). The table starts
/// at `MEMO_INITIAL_SLOTS` and doubles while more than half full.
pub const MEMO_CAPACITY: usize = 1 << 16;

/// Initial slot count of the direct-mapped result memo.
const MEMO_INITIAL_SLOTS: usize = 1 << 10;

/// Counters exposed by every engine, for reporting and tests.
///
/// `check_nanos` is per-thread time: summed across parallel workers (via
/// [`EngineStats::absorb`]) it is CPU time, not wall time — see the field
/// documentation.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Total number of `check` calls served.
    pub checks: u64,
    /// Number of calls answered from the fingerprint memo.
    pub memo_hits: u64,
    /// Number of calls that missed the memo (and ran the decision
    /// procedure). `checks = memo_hits + memo_misses` for memoised engines.
    pub memo_misses: u64,
    /// Number of memo insertions that overwrote a live entry with a
    /// different key (the direct-mapped table is lossy by design).
    pub memo_evictions: u64,
    /// Live entries of the memo table at observation time.
    pub memo_occupied: u64,
    /// Capacity (slots) of the memo table at observation time.
    pub memo_slots: u64,
    /// Memo misses served by an incremental index sync (delta replay, no
    /// rebuild). Zero for engines without incremental state (`Trivial`).
    pub incremental_hits: u64,
    /// Memo misses that fell back to rebuilding the engine's index from
    /// scratch.
    pub full_rebuilds: u64,
    /// Memo hits served by the cross-worker [`SharedMemo`] (a subset of
    /// `memo_hits`): verdicts another worker published first. Zero for
    /// serial runs and engines without an attached shared memo.
    pub shared_memo_hits: u64,
    /// Total nanoseconds spent deciding memo misses (sync + decision
    /// procedure), measured on the thread running the engine. Memo hits
    /// are a single table probe and are not timed — an `Instant` pair per
    /// hit would dominate the hit itself.
    ///
    /// This is per-engine *CPU-side* time: [`absorb`](EngineStats::absorb)
    /// sums it across engines and workers, so on a parallel run the total
    /// is aggregate CPU time, not wall time — with 4 workers it can exceed
    /// the run's wall clock several-fold. Consumers that want wall time
    /// must measure it around the run (as the bench harness does), never
    /// derive it from this field.
    pub check_nanos: u64,
}

impl EngineStats {
    /// Folds another engine's counters into this one (summing counts;
    /// occupancy and capacity add up across engines).
    pub fn absorb(&mut self, other: &EngineStats) {
        self.checks += other.checks;
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
        self.memo_evictions += other.memo_evictions;
        self.memo_occupied += other.memo_occupied;
        self.memo_slots += other.memo_slots;
        self.incremental_hits += other.incremental_hits;
        self.full_rebuilds += other.full_rebuilds;
        self.shared_memo_hits += other.shared_memo_hits;
        // Summing per-thread nanoseconds yields aggregate CPU time (see
        // the field documentation) — callers wanting wall time must time
        // the run itself.
        self.check_nanos += other.check_nanos;
    }
}

/// A stateful decision procedure for `h ∈ I` at a fixed level
/// specification — one isolation level for every transaction (the paper's
/// setting), or a per-transaction [`LevelSpec`] assignment for mixed
/// workloads.
///
/// Engines are the unit of reuse of the checking layer: the exploration
/// algorithms create one engine per (spec, worker) and funnel every
/// consistency query of that worker through it, so scratch buffers and the
/// fingerprint memo amortise across the whole exploration. The stateless
/// entry points ([`crate::check::satisfies`],
/// [`IsolationLevel::satisfies`], [`LevelSpec::satisfies`]) remain as thin
/// wrappers over a fresh engine.
pub trait ConsistencyChecker: Send {
    /// The level specification this engine decides. Uniform for the
    /// per-level engines; the mixed engine carries its full assignment.
    fn spec(&self) -> LevelSpec;

    /// The single isolation level this engine decides.
    ///
    /// # Panics
    ///
    /// Panics for a genuinely mixed engine, which has no single level —
    /// use [`spec`](ConsistencyChecker::spec) there.
    fn level(&self) -> IsolationLevel {
        self.spec()
            .as_uniform()
            .expect("a mixed-level engine has no single isolation level")
    }

    /// Whether the history satisfies the engine's level specification
    /// (Definition 2.2, per-transaction for mixed specs).
    fn check(&mut self, h: &History) -> bool;

    /// Evidence-producing variant of [`check`](ConsistencyChecker::check):
    /// a [`Verdict`] carrying a replay-verifiable witness commit order on
    /// success, or a minimal cycle of `so`/`wr`/forced edges (with the
    /// axiom instances that forced them) on failure — see
    /// [`crate::check::evidence`].
    ///
    /// The boolean verdict still comes from the memoised fast path (this
    /// call counts as a regular [`check`](ConsistencyChecker::check) in
    /// [`stats`](ConsistencyChecker::stats)); the evidence is then
    /// reconstructed on demand over fresh, engine-independent indexes, so
    /// the 16-byte memo slots and the incremental state stay exactly as a
    /// boolean check would leave them.
    fn check_witnessed(&mut self, h: &History) -> Verdict {
        let consistent = self.check(h);
        evidence::reconstruct(h, &self.spec(), consistent)
    }

    /// Attaches a cross-worker [`SharedMemo`]: the engine consults it
    /// before its private memo and publishes every fresh verdict to it,
    /// keyed by `live_hash ⊕ spec_hash` so verdicts decided under one spec
    /// are never served for another. The default is a no-op — engines
    /// without a memo (or with memoisation disabled) simply ignore it.
    fn attach_shared_memo(&mut self, _memo: Arc<SharedMemo>) {}

    /// Counters accumulated since creation (or the last [`reset`]).
    ///
    /// [`reset`]: ConsistencyChecker::reset
    fn stats(&self) -> EngineStats;

    /// Drops all memoised results and counters. Scratch allocations are
    /// kept.
    fn reset(&mut self);
}

/// Creates the engine for an isolation level, with result memoisation
/// enabled.
pub fn engine_for(level: IsolationLevel) -> Box<dyn ConsistencyChecker> {
    engine_for_with(level, true)
}

/// Creates the engine for an isolation level, choosing whether results are
/// memoised by fingerprint. Disabling memoisation reproduces the cost model
/// of the stateless free functions (used by the `no-memo` benchmark
/// configurations); scratch-buffer reuse stays on either way.
pub fn engine_for_with(level: IsolationLevel, memoize: bool) -> Box<dyn ConsistencyChecker> {
    match level {
        IsolationLevel::Trivial => Box::new(TrivialEngine::default()),
        IsolationLevel::ReadCommitted
        | IsolationLevel::ReadAtomic
        | IsolationLevel::CausalConsistency => Box::new(WeakEngine::new(level, memoize)),
        IsolationLevel::Serializability => Box::new(SerEngine::new(memoize)),
        IsolationLevel::SnapshotIsolation => Box::new(SiEngine::new(memoize)),
        IsolationLevel::PrefixConsistency => Box::new(PcEngine::new(memoize)),
    }
}

/// Creates the engine for a level specification, with result memoisation
/// enabled.
pub fn engine_for_spec(spec: &LevelSpec) -> Box<dyn ConsistencyChecker> {
    engine_for_spec_with(spec, true)
}

/// Creates the engine for a level specification. A *uniform* spec routes to
/// the corresponding per-level engine ([`engine_for_with`]) so verdicts,
/// counters and performance are bit-identical to the pre-spec stack; only
/// genuinely mixed assignments pay for the [`MixedEngine`].
pub fn engine_for_spec_with(spec: &LevelSpec, memoize: bool) -> Box<dyn ConsistencyChecker> {
    match spec.as_uniform() {
        Some(level) => engine_for_with(level, memoize),
        None => Box::new(MixedEngine::new(spec.clone(), memoize)),
    }
}

/// The shared result memo: a direct-mapped cache over 128-bit keys.
///
/// Keys are the [`History::live_hash`] — the rolling structural hash the
/// flat-arena history maintains incrementally, so a lookup costs a load
/// and one table probe, no walk and no allocation (hash compaction, as
/// classically used for visited-state sets in stateless model checking;
/// the collision probability is negligible at 127 bits — the lowest key
/// bit carries the memoised verdict). Slots hold `(key.0, key.1 | verdict)`
/// with `(0, 0)` as the empty sentinel; a colliding key overwrites the
/// previous occupant (lossy, never incorrect: verdicts are only trusted on
/// exact key matches). The table starts small and doubles while more than
/// half full, up to [`MEMO_CAPACITY`] slots — 16 bytes each, so an
/// engine's memo peaks at 1 MiB instead of the multi-megabyte id-keyed
/// map it replaces.
#[derive(Debug, Default)]
struct Memo {
    slots: Vec<(u64, u64)>,
    occupied: usize,
    enabled: bool,
    /// Cross-worker verdict table consulted before the private slots (and
    /// published to on every insert), keyed by `live_hash ⊕ spec_hash` —
    /// `shared_salt` folds the engine's spec hash into keys that do not
    /// already carry it. `None` outside parallel exploration.
    shared: Option<Arc<SharedMemo>>,
    shared_salt: u64,
    stats: EngineStats,
}

impl Memo {
    fn new(enabled: bool) -> Self {
        Memo {
            slots: Vec::new(),
            occupied: 0,
            enabled,
            shared: None,
            shared_salt: 0,
            stats: EngineStats::default(),
        }
    }

    /// Attaches a cross-worker shared memo. `salt` is XOR-folded into the
    /// first key word before every shared lookup/publish; engines whose
    /// private keys already fold their spec hash pass 0, the per-level
    /// engines pass their uniform spec's hash, so shared keys are
    /// uniformly `live_hash ⊕ spec_hash` across all engine kinds.
    fn attach_shared(&mut self, memo: Arc<SharedMemo>, salt: u64) {
        self.shared = Some(memo);
        self.shared_salt = salt;
    }

    /// Looks up a key (normally the history's [`History::live_hash`],
    /// optionally folded with a spec hash), returning either the memoised
    /// verdict or the key to insert the freshly computed verdict under
    /// (`None` when memoisation is disabled). The shared cross-worker
    /// table, when attached, is consulted before the private slots — a
    /// sibling worker may have decided this history already.
    fn lookup(&mut self, key: (u64, u64)) -> Result<bool, Option<(u64, u64)>> {
        self.stats.checks += 1;
        if !self.enabled {
            self.stats.memo_misses += 1;
            return Err(None);
        }
        if let Some(shared) = &self.shared {
            if let Some(v) = shared.lookup((key.0 ^ self.shared_salt, key.1)) {
                self.stats.memo_hits += 1;
                self.stats.shared_memo_hits += 1;
                return Ok(v);
            }
        }
        if !self.slots.is_empty() {
            let (k0, k1v) = self.slots[key.0 as usize & (self.slots.len() - 1)];
            if k0 == key.0 && k1v & !1 == key.1 & !1 {
                self.stats.memo_hits += 1;
                return Ok(k1v & 1 == 1);
            }
        }
        self.stats.memo_misses += 1;
        Err(Some(key))
    }

    fn insert(&mut self, key: Option<(u64, u64)>, verdict: bool) {
        let Some(key) = key else { return };
        if let Some(shared) = &self.shared {
            shared.publish((key.0 ^ self.shared_salt, key.1), verdict);
        }
        if self.slots.is_empty() {
            self.slots.resize(MEMO_INITIAL_SLOTS, (0, 0));
        } else if self.occupied * 2 >= self.slots.len() && self.slots.len() < MEMO_CAPACITY {
            // Double and re-home the live entries (each slot is
            // self-contained, so growth is a reinsertion pass).
            let doubled = self.slots.len() * 2;
            let old = std::mem::replace(&mut self.slots, vec![(0, 0); doubled]);
            self.occupied = 0;
            for (k0, k1v) in old {
                if (k0, k1v) != (0, 0) {
                    let slot = k0 as usize & (self.slots.len() - 1);
                    if self.slots[slot] == (0, 0) {
                        self.occupied += 1;
                    }
                    self.slots[slot] = (k0, k1v);
                }
            }
        }
        let slot = key.0 as usize & (self.slots.len() - 1);
        let prev = self.slots[slot];
        if prev == (0, 0) {
            self.occupied += 1;
        } else if prev.0 != key.0 || prev.1 & !1 != key.1 & !1 {
            self.stats.memo_evictions += 1;
        }
        self.slots[slot] = (key.0, (key.1 & !1) | verdict as u64);
    }

    /// Snapshot of the memo's counters plus its current occupancy.
    fn stats(&self) -> EngineStats {
        let mut s = self.stats;
        s.memo_occupied = self.occupied as u64;
        s.memo_slots = self.slots.len() as u64;
        s
    }

    fn reset(&mut self) {
        self.slots.clear();
        self.slots.shrink_to_fit();
        self.occupied = 0;
        self.stats = EngineStats::default();
    }
}

/// Engine for the trivial level `true`: every history is consistent.
#[derive(Debug, Default)]
pub struct TrivialEngine {
    stats: EngineStats,
}

impl ConsistencyChecker for TrivialEngine {
    fn spec(&self) -> LevelSpec {
        LevelSpec::uniform(IsolationLevel::Trivial)
    }

    fn level(&self) -> IsolationLevel {
        IsolationLevel::Trivial
    }

    fn check(&mut self, _h: &History) -> bool {
        self.stats.checks += 1;
        true
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn reset(&mut self) {
        self.stats = EngineStats::default();
    }
}

/// Engine for the polynomial-time levels (Read Committed, Read Atomic,
/// Causal Consistency): saturation of the forced commit-order edges with a
/// word-packed causal-reachability matrix, plus the fingerprint memo.
#[derive(Debug)]
pub struct WeakEngine {
    level: IsolationLevel,
    memo: Memo,
    idx: weak::WeakIndex,
    nanos: u64,
}

impl WeakEngine {
    /// Creates an engine for one of `{RC, RA, CC}`.
    ///
    /// # Panics
    ///
    /// Panics if called with a level outside `{RC, RA, CC}`.
    pub fn new(level: IsolationLevel, memoize: bool) -> Self {
        assert!(
            matches!(
                level,
                IsolationLevel::ReadCommitted
                    | IsolationLevel::ReadAtomic
                    | IsolationLevel::CausalConsistency
            ),
            "WeakEngine only handles RC/RA/CC, got {level}"
        );
        WeakEngine {
            level,
            memo: Memo::new(memoize),
            idx: weak::WeakIndex::new(level),
            nanos: 0,
        }
    }
}

impl ConsistencyChecker for WeakEngine {
    fn spec(&self) -> LevelSpec {
        LevelSpec::uniform(self.level)
    }

    fn level(&self) -> IsolationLevel {
        self.level
    }

    fn check(&mut self, h: &History) -> bool {
        match self.memo.lookup(h.live_hash()) {
            Ok(v) => v,
            Err(key) => {
                // Only misses are timed: a hit is a single table probe,
                // and an `Instant` pair per hit would dominate it.
                let start = Instant::now();
                let v = weak::satisfies_weak_with(h, &mut self.idx);
                self.memo.insert(key, v);
                self.nanos += start.elapsed().as_nanos() as u64;
                v
            }
        }
    }

    fn attach_shared_memo(&mut self, memo: Arc<SharedMemo>) {
        let salt = self.spec().spec_hash();
        self.memo.attach_shared(memo, salt);
    }

    fn stats(&self) -> EngineStats {
        let mut s = self.memo.stats();
        s.incremental_hits = self.idx.incremental_hits;
        s.full_rebuilds = self.idx.full_rebuilds;
        s.check_nanos = self.nanos;
        s
    }

    fn reset(&mut self) {
        self.memo.reset();
        self.idx.incremental_hits = 0;
        self.idx.full_rebuilds = 0;
        self.nanos = 0;
    }
}

/// Engine for Serializability: memoised commit-prefix search with a
/// reusable failed-state table, plus the fingerprint memo.
#[derive(Debug)]
pub struct SerEngine {
    memo: Memo,
    idx: FrontierIndex,
    states: HashSet<ser::StateKey>,
    nanos: u64,
}

impl SerEngine {
    /// Creates a Serializability engine.
    pub fn new(memoize: bool) -> Self {
        SerEngine {
            memo: Memo::new(memoize),
            idx: FrontierIndex::default(),
            states: HashSet::new(),
            nanos: 0,
        }
    }
}

impl ConsistencyChecker for SerEngine {
    fn spec(&self) -> LevelSpec {
        LevelSpec::uniform(IsolationLevel::Serializability)
    }

    fn level(&self) -> IsolationLevel {
        IsolationLevel::Serializability
    }

    fn check(&mut self, h: &History) -> bool {
        match self.memo.lookup(h.live_hash()) {
            Ok(v) => v,
            Err(key) => {
                // Only misses are timed: a hit is a single table probe,
                // and an `Instant` pair per hit would dominate it.
                let start = Instant::now();
                let v = ser::satisfies_ser_with(h, &mut self.idx, &mut self.states);
                self.memo.insert(key, v);
                self.nanos += start.elapsed().as_nanos() as u64;
                v
            }
        }
    }

    fn attach_shared_memo(&mut self, memo: Arc<SharedMemo>) {
        let salt = self.spec().spec_hash();
        self.memo.attach_shared(memo, salt);
    }

    fn stats(&self) -> EngineStats {
        let mut s = self.memo.stats();
        s.incremental_hits = self.idx.incremental_hits;
        s.full_rebuilds = self.idx.full_rebuilds;
        s.check_nanos = self.nanos;
        s
    }

    fn reset(&mut self) {
        self.memo.reset();
        self.states.clear();
        self.idx.incremental_hits = 0;
        self.idx.full_rebuilds = 0;
        self.nanos = 0;
    }
}

/// Engine for Snapshot Isolation: memoised start/commit interval search
/// with a reusable failed-state table, plus the fingerprint memo.
#[derive(Debug)]
pub struct SiEngine {
    memo: Memo,
    idx: FrontierIndex,
    states: HashSet<si::StateKey>,
    nanos: u64,
}

impl SiEngine {
    /// Creates a Snapshot Isolation engine.
    pub fn new(memoize: bool) -> Self {
        SiEngine {
            memo: Memo::new(memoize),
            idx: FrontierIndex::default(),
            states: HashSet::new(),
            nanos: 0,
        }
    }
}

impl ConsistencyChecker for SiEngine {
    fn spec(&self) -> LevelSpec {
        LevelSpec::uniform(IsolationLevel::SnapshotIsolation)
    }

    fn level(&self) -> IsolationLevel {
        IsolationLevel::SnapshotIsolation
    }

    fn check(&mut self, h: &History) -> bool {
        match self.memo.lookup(h.live_hash()) {
            Ok(v) => v,
            Err(key) => {
                // Only misses are timed: a hit is a single table probe,
                // and an `Instant` pair per hit would dominate it.
                let start = Instant::now();
                let v = si::satisfies_si_with(h, &mut self.idx, &mut self.states);
                self.memo.insert(key, v);
                self.nanos += start.elapsed().as_nanos() as u64;
                v
            }
        }
    }

    fn attach_shared_memo(&mut self, memo: Arc<SharedMemo>) {
        let salt = self.spec().spec_hash();
        self.memo.attach_shared(memo, salt);
    }

    fn stats(&self) -> EngineStats {
        let mut s = self.memo.stats();
        s.incremental_hits = self.idx.incremental_hits;
        s.full_rebuilds = self.idx.full_rebuilds;
        s.check_nanos = self.nanos;
        s
    }

    fn reset(&mut self) {
        self.memo.reset();
        self.states.clear();
        self.idx.incremental_hits = 0;
        self.idx.full_rebuilds = 0;
        self.nanos = 0;
    }
}

/// Engine for Prefix Consistency: the polynomial Causal Consistency
/// prerequisite (an incrementally synced `weak::WeakIndex` — Prefix
/// implies Causal since the commit order extends `so ∪ wr`) followed by
/// the prefix-constrained start/commit interval search over the shared
/// `FrontierIndex` (see [`pc`]), plus the fingerprint memo.
#[derive(Debug)]
pub struct PcEngine {
    memo: Memo,
    weak: weak::WeakIndex,
    idx: FrontierIndex,
    states: HashSet<pc::StateKey>,
    nanos: u64,
}

impl PcEngine {
    /// Creates a Prefix Consistency engine.
    pub fn new(memoize: bool) -> Self {
        PcEngine {
            memo: Memo::new(memoize),
            weak: weak::WeakIndex::new(IsolationLevel::CausalConsistency),
            idx: FrontierIndex::default(),
            states: HashSet::new(),
            nanos: 0,
        }
    }
}

impl ConsistencyChecker for PcEngine {
    fn spec(&self) -> LevelSpec {
        LevelSpec::uniform(IsolationLevel::PrefixConsistency)
    }

    fn level(&self) -> IsolationLevel {
        IsolationLevel::PrefixConsistency
    }

    fn check(&mut self, h: &History) -> bool {
        match self.memo.lookup(h.live_hash()) {
            Ok(v) => v,
            Err(key) => {
                // Only misses are timed: a hit is a single table probe,
                // and an `Instant` pair per hit would dominate it.
                let start = Instant::now();
                let v = weak::satisfies_weak_with(h, &mut self.weak)
                    && pc::satisfies_pc_with(h, &mut self.idx, &mut self.states);
                self.memo.insert(key, v);
                self.nanos += start.elapsed().as_nanos() as u64;
                v
            }
        }
    }

    fn attach_shared_memo(&mut self, memo: Arc<SharedMemo>) {
        let salt = self.spec().spec_hash();
        self.memo.attach_shared(memo, salt);
    }

    fn stats(&self) -> EngineStats {
        let mut s = self.memo.stats();
        // Both indexes sync in lockstep from the same delta log (the
        // frontier index only when the causal prerequisite holds);
        // counting the max keeps the split per *check*, comparable with
        // the single-index engines.
        s.incremental_hits = self.weak.incremental_hits.max(self.idx.incremental_hits);
        s.full_rebuilds = self.weak.full_rebuilds.max(self.idx.full_rebuilds);
        s.check_nanos = self.nanos;
        s
    }

    fn reset(&mut self) {
        self.memo.reset();
        self.states.clear();
        self.weak.incremental_hits = 0;
        self.weak.full_rebuilds = 0;
        self.idx.incremental_hits = 0;
        self.idx.full_rebuilds = 0;
        self.nanos = 0;
    }
}

/// Engine for mixed per-transaction level specifications: forced edges
/// from the weak readers (incrementally synced `weak::WeakIndex` built
/// with the spec) combined with the SER/SI commit-order search over the
/// shared `FrontierIndex` (see [`mixed`]), plus the fingerprint memo.
///
/// The memo key folds [`LevelSpec::spec_hash`] into the history's rolling
/// hash, so a verdict memoised under one spec can never be served for
/// another — engines are per-spec, but the fold keeps the invariant even
/// if memo state ever outlives a spec change.
#[derive(Debug)]
pub struct MixedEngine {
    spec: LevelSpec,
    spec_hash: u64,
    memo: Memo,
    weak: weak::WeakIndex,
    frontier: FrontierIndex,
    scratch: mixed::MixedScratch,
    /// Same-generation verdict cache `(uid, generation, verdict)`, serving
    /// re-checks whose memo entry was evicted without re-deciding.
    last: Option<(u64, u64, bool)>,
    nanos: u64,
}

impl MixedEngine {
    /// Creates an engine for an arbitrary level specification. Uniform
    /// specs are legal (the verdict matches the per-level engine exactly —
    /// pinned by the cross-validation suites) but served more cheaply by
    /// [`engine_for_spec_with`], which routes them to the per-level
    /// engines.
    pub fn new(spec: LevelSpec, memoize: bool) -> Self {
        MixedEngine {
            spec_hash: spec.spec_hash(),
            weak: weak::WeakIndex::new_spec(spec.clone()),
            spec,
            memo: Memo::new(memoize),
            frontier: FrontierIndex::default(),
            scratch: mixed::MixedScratch::default(),
            last: None,
            nanos: 0,
        }
    }
}

impl ConsistencyChecker for MixedEngine {
    fn spec(&self) -> LevelSpec {
        self.spec.clone()
    }

    fn check(&mut self, h: &History) -> bool {
        let lh = h.live_hash();
        match self.memo.lookup((lh.0 ^ self.spec_hash, lh.1)) {
            Ok(v) => v,
            Err(key) => {
                // Only misses are timed: a hit is a single table probe,
                // and an `Instant` pair per hit would dominate it.
                let start = Instant::now();
                let v = match self.last {
                    // Unchanged since the previous decision (memo entry
                    // evicted): reuse the verdict without re-deciding.
                    Some((uid, gen, v)) if uid == h.uid() && gen == h.generation() => v,
                    _ => {
                        self.weak.sync(h);
                        if self.spec.has_strong() {
                            self.frontier.sync(h);
                        }
                        let v = mixed::decide_mixed(
                            &self.spec,
                            &mut self.weak,
                            &mut self.frontier,
                            &mut self.scratch,
                        );
                        self.last = Some((h.uid(), h.generation(), v));
                        v
                    }
                };
                self.memo.insert(key, v);
                self.nanos += start.elapsed().as_nanos() as u64;
                v
            }
        }
    }

    fn attach_shared_memo(&mut self, memo: Arc<SharedMemo>) {
        // The private key already folds `spec_hash` (see `check`), so the
        // shared key needs no extra salt to be `live_hash ⊕ spec_hash`.
        self.memo.attach_shared(memo, 0);
    }

    fn stats(&self) -> EngineStats {
        let mut s = self.memo.stats();
        // Both indexes sync in lockstep from the same delta log (the
        // frontier index only for strong specs); counting the max keeps
        // the incremental/full-rebuild split per *check*, comparable with
        // the single-index engines, instead of double-counting one sync.
        s.incremental_hits = self
            .weak
            .incremental_hits
            .max(self.frontier.incremental_hits);
        s.full_rebuilds = self.weak.full_rebuilds.max(self.frontier.full_rebuilds);
        s.check_nanos = self.nanos;
        s
    }

    fn reset(&mut self) {
        self.memo.reset();
        self.weak.incremental_hits = 0;
        self.weak.full_rebuilds = 0;
        self.frontier.incremental_hits = 0;
        self.frontier.full_rebuilds = 0;
        self.last = None;
        self.nanos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventId, EventKind};
    use crate::transaction::{SessionId, TxId};
    use crate::value::{Value, Var};

    fn lost_update() -> History {
        let x = Var(0);
        let mut h = History::new([]);
        let mut id = 0u32;
        let mut fresh = || {
            id += 1;
            EventId(id)
        };
        for s in 0..2u32 {
            h.begin_transaction(
                SessionId(s),
                TxId(s + 1),
                0,
                Event::new(fresh(), EventKind::Begin),
            );
            let r = fresh();
            h.append_event(SessionId(s), Event::new(r, EventKind::Read(x)));
            h.set_wr(r, TxId::INIT);
            h.append_event(
                SessionId(s),
                Event::new(fresh(), EventKind::Write(x, Value::Int(s as i64 + 1))),
            );
            h.append_event(SessionId(s), Event::new(fresh(), EventKind::Commit));
        }
        h
    }

    #[test]
    fn engines_agree_with_free_functions() {
        let h = lost_update();
        for level in IsolationLevel::ALL {
            let mut engine = engine_for(level);
            assert_eq!(engine.level(), level);
            assert_eq!(
                engine.check(&h),
                crate::check::satisfies(&h, level),
                "engine disagrees with free function at {level}"
            );
        }
    }

    #[test]
    fn memo_hits_on_repeat_checks() {
        let h = lost_update();
        let mut engine = engine_for(IsolationLevel::CausalConsistency);
        let first = engine.check(&h);
        let second = engine.check(&h);
        assert_eq!(first, second);
        let stats = engine.stats();
        assert_eq!(stats.checks, 2);
        assert_eq!(stats.memo_hits, 1);
        engine.reset();
        assert_eq!(engine.stats(), EngineStats::default());
        assert_eq!(engine.check(&h), first);
        assert_eq!(engine.stats().memo_hits, 0);
    }

    #[test]
    fn unmemoized_engines_never_hit() {
        let h = lost_update();
        for level in IsolationLevel::ALL {
            let mut engine = engine_for_with(level, false);
            let a = engine.check(&h);
            let b = engine.check(&h);
            assert_eq!(a, b);
            assert_eq!(engine.stats().memo_hits, 0, "{level} hit a disabled memo");
        }
    }

    #[test]
    fn memo_distinguishes_different_histories() {
        // The lost-update history is CC-consistent but a variant where the
        // second read observes the first writer is also consistent while
        // having a different fingerprint — the memo must not conflate them.
        let h1 = lost_update();
        let mut h2 = lost_update();
        let (_, read, _, _) = h2
            .reads_from()
            .into_iter()
            .find(|(reader, _, _, _)| *reader == TxId(2))
            .unwrap();
        h2.set_wr(read, TxId(1));
        assert_ne!(h1.fingerprint(), h2.fingerprint());
        let mut engine = engine_for(IsolationLevel::Serializability);
        assert!(!engine.check(&h1), "lost update is not serializable");
        assert!(engine.check(&h2), "serial observation is serializable");
        assert_eq!(engine.stats().memo_hits, 0);
    }

    #[test]
    #[should_panic(expected = "only handles RC/RA/CC")]
    fn weak_engine_rejects_strong_levels() {
        WeakEngine::new(IsolationLevel::Serializability, true);
    }

    #[test]
    fn mixed_engine_with_uniform_spec_matches_per_level_engines() {
        // Forcing the mixed path with a uniform spec must reproduce the
        // per-level engines' verdicts bit-for-bit.
        let h = lost_update();
        for level in IsolationLevel::ALL {
            let mut forced = MixedEngine::new(LevelSpec::uniform(level), true);
            assert_eq!(forced.spec(), LevelSpec::uniform(level));
            assert_eq!(forced.level(), level);
            assert_eq!(
                forced.check(&h),
                crate::check::satisfies(&h, level),
                "forced mixed path disagrees with {level}"
            );
            assert!(forced.check(&History::default()));
        }
    }

    #[test]
    fn engine_for_spec_routes_uniform_specs_to_per_level_engines() {
        let uniform = engine_for_spec(&LevelSpec::uniform(IsolationLevel::CausalConsistency));
        assert_eq!(uniform.level(), IsolationLevel::CausalConsistency);
        let spec = LevelSpec::uniform(IsolationLevel::CausalConsistency).with_override(
            0,
            0,
            IsolationLevel::Serializability,
        );
        let mixed = engine_for_spec(&spec);
        assert_eq!(mixed.spec(), spec);
    }

    #[test]
    #[should_panic(expected = "no single isolation level")]
    fn mixed_engine_has_no_single_level() {
        let spec = LevelSpec::uniform(IsolationLevel::CausalConsistency).with_override(
            0,
            0,
            IsolationLevel::Serializability,
        );
        engine_for_spec(&spec).level();
    }

    #[test]
    fn mixed_engine_memoises_and_resets() {
        let h = lost_update();
        let spec = LevelSpec::uniform(IsolationLevel::CausalConsistency).with_override(
            1,
            0,
            IsolationLevel::Serializability,
        );
        let mut engine = engine_for_spec(&spec);
        let first = engine.check(&h);
        // The SER increment reads x stale while the CC one overwrites it:
        // exactly one serialisation order remains and it satisfies the
        // spec (the CC read carries no last-writer obligation).
        assert!(first, "one weak increment makes the lost update admissible");
        assert_eq!(engine.check(&h), first);
        let stats = engine.stats();
        assert_eq!(stats.checks, 2);
        assert_eq!(stats.memo_hits, 1);
        engine.reset();
        assert_eq!(engine.stats(), EngineStats::default());
        assert_eq!(engine.check(&h), first);
        assert_eq!(engine.stats().memo_hits, 0);
    }

    #[test]
    fn spec_hash_separates_memo_keys_of_different_specs() {
        // Same history, two different specs: each engine decides under its
        // own spec; the folded spec hash keeps the keys distinct even
        // though the histories' rolling hashes are identical.
        let h = lost_update();
        let ser = LevelSpec::uniform(IsolationLevel::Serializability);
        let one_weak = ser
            .clone()
            .with_override(0, 0, IsolationLevel::ReadCommitted);
        let mut strict = MixedEngine::new(ser.clone(), true);
        let mut lenient = MixedEngine::new(one_weak, true);
        assert!(!strict.check(&h));
        assert!(lenient.check(&h));
        assert!(!strict.check(&h));
    }

    #[test]
    fn shared_memo_serves_cross_engine_hits() {
        // Worker A decides a history; worker B's fresh engine (cold
        // private memo) gets the verdict from the shared table.
        let h = lost_update();
        let shared = Arc::new(SharedMemo::new(2));
        for level in IsolationLevel::ALL {
            let mut a = engine_for(level);
            let mut b = engine_for(level);
            a.attach_shared_memo(Arc::clone(&shared));
            b.attach_shared_memo(Arc::clone(&shared));
            let verdict = a.check(&h);
            assert_eq!(a.stats().shared_memo_hits, 0, "{level}: A decided fresh");
            assert_eq!(b.check(&h), verdict);
            let sb = b.stats();
            if level == IsolationLevel::Trivial {
                continue; // no memo at all
            }
            assert_eq!(sb.memo_hits, 1, "{level}: B should hit");
            assert_eq!(sb.shared_memo_hits, 1, "{level}: B's hit came from A");
            assert_eq!(sb.memo_misses, 0);
        }
    }

    #[test]
    fn shared_memo_keys_are_spec_disjoint() {
        // Same history, same shared table, different levels/specs: the
        // folded spec hash must keep every verdict on its own key. SER
        // rejects the lost update while RC accepts it, so a key collision
        // would flip one of the answers.
        let h = lost_update();
        let shared = Arc::new(SharedMemo::new(2));
        let mut ser = engine_for(IsolationLevel::Serializability);
        let mut rc = engine_for(IsolationLevel::ReadCommitted);
        ser.attach_shared_memo(Arc::clone(&shared));
        rc.attach_shared_memo(Arc::clone(&shared));
        assert!(!ser.check(&h));
        assert!(rc.check(&h));
        assert_eq!(rc.stats().shared_memo_hits, 0, "RC must not see SER's key");
        // A mixed engine with the uniform SER spec shares SER's key shape
        // (`live_hash ⊕ spec_hash`), so it *does* hit SER's entry.
        let mut forced =
            MixedEngine::new(LevelSpec::uniform(IsolationLevel::Serializability), true);
        forced.attach_shared_memo(Arc::clone(&shared));
        assert!(!forced.check(&h));
        assert_eq!(
            forced.stats().shared_memo_hits,
            1,
            "uniform mixed engine shares the per-level key"
        );
    }

    #[test]
    fn disabled_memo_skips_the_shared_table() {
        // The `no-memo` ablation must reproduce the stateless cost model:
        // nothing read from or published to the shared table.
        let h = lost_update();
        let shared = Arc::new(SharedMemo::new(2));
        let mut off = engine_for_with(IsolationLevel::CausalConsistency, false);
        off.attach_shared_memo(Arc::clone(&shared));
        let verdict = off.check(&h);
        assert_eq!(off.stats().shared_memo_hits, 0);
        // Nothing was published: a memoised engine still decides fresh.
        let mut on = engine_for(IsolationLevel::CausalConsistency);
        on.attach_shared_memo(shared);
        assert_eq!(on.check(&h), verdict);
        assert_eq!(on.stats().shared_memo_hits, 0, "no-memo engine published");
    }

    #[test]
    fn absorb_sums_shared_hits_and_cpu_nanos() {
        let mut total = EngineStats::default();
        let a = EngineStats {
            shared_memo_hits: 3,
            check_nanos: 100,
            ..EngineStats::default()
        };
        let b = EngineStats {
            shared_memo_hits: 4,
            check_nanos: 50,
            ..EngineStats::default()
        };
        total.absorb(&a);
        total.absorb(&b);
        // Summed across workers: aggregate CPU time (7 hits, 150 ns of
        // per-thread deciding time), NOT wall time.
        assert_eq!(total.shared_memo_hits, 7);
        assert_eq!(total.check_nanos, 150);
    }

    #[test]
    fn empty_history_is_consistent_on_a_warm_engine() {
        // Regression: the direct-mapped memo's empty-slot sentinel must not
        // alias the empty history's key — a warm engine once answered
        // `false` for `History::default()` straight from an untouched slot.
        for level in IsolationLevel::ALL {
            let mut engine = engine_for(level);
            engine.check(&lost_update()); // initialise the memo table
            assert!(
                engine.check(&History::default()),
                "warm {level} engine rejected the empty history"
            );
        }
    }
}
