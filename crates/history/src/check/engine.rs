//! Stateful consistency-checking engines.
//!
//! The exploration algorithms of the paper decide `h ∈ I` for a huge number
//! of *closely related* candidate histories: `ValidWrites` retries the same
//! trial history with every candidate writer, `Optimality` re-checks pruned
//! prefixes, and a swap only changes a suffix of the previous candidate.
//! The free functions in [`crate::check`] recompute everything from scratch
//! on every call; the engines here make the hot path incremental:
//!
//! * every engine owns its **scratch buffers** (transaction indices,
//!   word-packed reachability matrices, failed-state memo tables), so a
//!   check allocates close to nothing after warm-up;
//! * every engine owns a **result memo keyed by the canonical
//!   fingerprint** (its streamed 128-bit hash,
//!   [`History::fingerprint_hash`]): re-deciding a history that is
//!   read-from equivalent to one seen before is a single hash lookup.
//!   Because a swap shares its prefix with the history it was derived
//!   from, the memo turns the re-saturation after a swap into cache hits
//!   for the unchanged prefix and real work only for the affected suffix.
//!
//! # Incrementality contract
//!
//! The memo assumes that consistency is invariant under read-from
//! equivalence: two histories with equal fingerprints (same
//! per-session event structure, same `po`, `so` and `wr` up to renaming of
//! transaction and variable identifiers) satisfy exactly the same isolation
//! levels. This holds because the axioms of §2.2.2 only mention `po`, `so`,
//! `wr` and the existence of a commit order — never raw identifiers.
//! Keys are hash-compacted to 128 bits (as classically done for
//! visited-state sets in stateless model checking), so a collision —
//! astronomically unlikely — could misclassify one history. The memo is
//! bounded ([`MEMO_CAPACITY`] entries) and is cleared wholesale when
//! full, so engines are safe to keep alive for arbitrarily long
//! explorations.

use std::collections::{HashMap, HashSet};

use crate::check::{ser, si, weak};
use crate::history::History;
use crate::isolation::IsolationLevel;

/// Maximum number of memoised results an engine retains before the memo is
/// cleared wholesale (a simple epoch eviction that bounds memory without
/// bookkeeping on the hot path).
pub const MEMO_CAPACITY: usize = 1 << 17;

/// Counters exposed by every engine, for reporting and tests.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Total number of `check` calls served.
    pub checks: u64,
    /// Number of calls answered from the fingerprint memo.
    pub memo_hits: u64,
}

/// A stateful decision procedure for `h ∈ I` at a fixed isolation level.
///
/// Engines are the unit of reuse of the checking layer: the exploration
/// algorithms create one engine per (level, worker) and funnel every
/// consistency query of that worker through it, so scratch buffers and the
/// fingerprint memo amortise across the whole exploration. The stateless
/// entry points ([`crate::check::satisfies`],
/// [`IsolationLevel::satisfies`]) remain as thin wrappers over a fresh
/// engine.
pub trait ConsistencyChecker: Send {
    /// The isolation level this engine decides.
    fn level(&self) -> IsolationLevel;

    /// Whether the history satisfies the engine's isolation level
    /// (Definition 2.2).
    fn check(&mut self, h: &History) -> bool;

    /// Counters accumulated since creation (or the last [`reset`]).
    ///
    /// [`reset`]: ConsistencyChecker::reset
    fn stats(&self) -> EngineStats;

    /// Drops all memoised results and counters. Scratch allocations are
    /// kept.
    fn reset(&mut self);
}

/// Creates the engine for an isolation level, with result memoisation
/// enabled.
pub fn engine_for(level: IsolationLevel) -> Box<dyn ConsistencyChecker> {
    engine_for_with(level, true)
}

/// Creates the engine for an isolation level, choosing whether results are
/// memoised by fingerprint. Disabling memoisation reproduces the cost model
/// of the stateless free functions (used by the `no-memo` benchmark
/// configurations); scratch-buffer reuse stays on either way.
pub fn engine_for_with(level: IsolationLevel, memoize: bool) -> Box<dyn ConsistencyChecker> {
    match level {
        IsolationLevel::Trivial => Box::new(TrivialEngine::default()),
        IsolationLevel::ReadCommitted
        | IsolationLevel::ReadAtomic
        | IsolationLevel::CausalConsistency => Box::new(WeakEngine::new(level, memoize)),
        IsolationLevel::Serializability => Box::new(SerEngine::new(memoize)),
        IsolationLevel::SnapshotIsolation => Box::new(SiEngine::new(memoize)),
    }
}

/// The shared fingerprint-keyed result memo.
///
/// Keys are the 128-bit [`History::fingerprint_hash`] — the canonical
/// fingerprint run through two independent hashers instead of materialised
/// as nested vectors, so a lookup costs one walk of the history and no
/// allocation (hash compaction, as classically used for visited-state sets
/// in stateless model checking; the collision probability is negligible at
/// 128 bits).
#[derive(Debug, Default)]
struct Memo {
    map: HashMap<(u64, u64), bool>,
    enabled: bool,
    stats: EngineStats,
}

impl Memo {
    fn new(enabled: bool) -> Self {
        Memo {
            map: HashMap::new(),
            enabled,
            stats: EngineStats::default(),
        }
    }

    /// Looks up the history, returning either the memoised verdict or the
    /// key to insert the freshly computed verdict under (`None` when
    /// memoisation is disabled).
    fn lookup(&mut self, h: &History) -> Result<bool, Option<(u64, u64)>> {
        self.stats.checks += 1;
        if !self.enabled {
            return Err(None);
        }
        let key = h.fingerprint_hash();
        match self.map.get(&key) {
            Some(&v) => {
                self.stats.memo_hits += 1;
                Ok(v)
            }
            None => Err(Some(key)),
        }
    }

    fn insert(&mut self, key: Option<(u64, u64)>, verdict: bool) {
        if let Some(key) = key {
            if self.map.len() >= MEMO_CAPACITY {
                self.map.clear();
            }
            self.map.insert(key, verdict);
        }
    }

    fn reset(&mut self) {
        self.map.clear();
        self.stats = EngineStats::default();
    }
}

/// Engine for the trivial level `true`: every history is consistent.
#[derive(Debug, Default)]
pub struct TrivialEngine {
    stats: EngineStats,
}

impl ConsistencyChecker for TrivialEngine {
    fn level(&self) -> IsolationLevel {
        IsolationLevel::Trivial
    }

    fn check(&mut self, _h: &History) -> bool {
        self.stats.checks += 1;
        true
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn reset(&mut self) {
        self.stats = EngineStats::default();
    }
}

/// Engine for the polynomial-time levels (Read Committed, Read Atomic,
/// Causal Consistency): saturation of the forced commit-order edges with a
/// word-packed causal-reachability matrix, plus the fingerprint memo.
#[derive(Debug)]
pub struct WeakEngine {
    level: IsolationLevel,
    memo: Memo,
    scratch: weak::WeakScratch,
}

impl WeakEngine {
    /// Creates an engine for one of `{RC, RA, CC}`.
    ///
    /// # Panics
    ///
    /// Panics if called with a level outside `{RC, RA, CC}`.
    pub fn new(level: IsolationLevel, memoize: bool) -> Self {
        assert!(
            matches!(
                level,
                IsolationLevel::ReadCommitted
                    | IsolationLevel::ReadAtomic
                    | IsolationLevel::CausalConsistency
            ),
            "WeakEngine only handles RC/RA/CC, got {level}"
        );
        WeakEngine {
            level,
            memo: Memo::new(memoize),
            scratch: weak::WeakScratch::default(),
        }
    }
}

impl ConsistencyChecker for WeakEngine {
    fn level(&self) -> IsolationLevel {
        self.level
    }

    fn check(&mut self, h: &History) -> bool {
        match self.memo.lookup(h) {
            Ok(v) => v,
            Err(key) => {
                let v = weak::satisfies_weak_with(h, self.level, &mut self.scratch);
                self.memo.insert(key, v);
                v
            }
        }
    }

    fn stats(&self) -> EngineStats {
        self.memo.stats
    }

    fn reset(&mut self) {
        self.memo.reset();
    }
}

/// Engine for Serializability: memoised commit-prefix search with a
/// reusable failed-state table, plus the fingerprint memo.
#[derive(Debug)]
pub struct SerEngine {
    memo: Memo,
    states: HashSet<ser::StateKey>,
}

impl SerEngine {
    /// Creates a Serializability engine.
    pub fn new(memoize: bool) -> Self {
        SerEngine {
            memo: Memo::new(memoize),
            states: HashSet::new(),
        }
    }
}

impl ConsistencyChecker for SerEngine {
    fn level(&self) -> IsolationLevel {
        IsolationLevel::Serializability
    }

    fn check(&mut self, h: &History) -> bool {
        match self.memo.lookup(h) {
            Ok(v) => v,
            Err(key) => {
                let v = ser::satisfies_ser_with(h, &mut self.states);
                self.memo.insert(key, v);
                v
            }
        }
    }

    fn stats(&self) -> EngineStats {
        self.memo.stats
    }

    fn reset(&mut self) {
        self.memo.reset();
        self.states.clear();
    }
}

/// Engine for Snapshot Isolation: memoised start/commit interval search
/// with a reusable failed-state table, plus the fingerprint memo.
#[derive(Debug)]
pub struct SiEngine {
    memo: Memo,
    states: HashSet<si::StateKey>,
}

impl SiEngine {
    /// Creates a Snapshot Isolation engine.
    pub fn new(memoize: bool) -> Self {
        SiEngine {
            memo: Memo::new(memoize),
            states: HashSet::new(),
        }
    }
}

impl ConsistencyChecker for SiEngine {
    fn level(&self) -> IsolationLevel {
        IsolationLevel::SnapshotIsolation
    }

    fn check(&mut self, h: &History) -> bool {
        match self.memo.lookup(h) {
            Ok(v) => v,
            Err(key) => {
                let v = si::satisfies_si_with(h, &mut self.states);
                self.memo.insert(key, v);
                v
            }
        }
    }

    fn stats(&self) -> EngineStats {
        self.memo.stats
    }

    fn reset(&mut self) {
        self.memo.reset();
        self.states.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventId, EventKind};
    use crate::transaction::{SessionId, TxId};
    use crate::value::{Value, Var};

    fn lost_update() -> History {
        let x = Var(0);
        let mut h = History::new([]);
        let mut id = 0u32;
        let mut fresh = || {
            id += 1;
            EventId(id)
        };
        for s in 0..2u32 {
            h.begin_transaction(
                SessionId(s),
                TxId(s + 1),
                0,
                Event::new(fresh(), EventKind::Begin),
            );
            let r = fresh();
            h.append_event(SessionId(s), Event::new(r, EventKind::Read(x)));
            h.set_wr(r, TxId::INIT);
            h.append_event(
                SessionId(s),
                Event::new(fresh(), EventKind::Write(x, Value::Int(s as i64 + 1))),
            );
            h.append_event(SessionId(s), Event::new(fresh(), EventKind::Commit));
        }
        h
    }

    #[test]
    fn engines_agree_with_free_functions() {
        let h = lost_update();
        for level in IsolationLevel::ALL {
            let mut engine = engine_for(level);
            assert_eq!(engine.level(), level);
            assert_eq!(
                engine.check(&h),
                crate::check::satisfies(&h, level),
                "engine disagrees with free function at {level}"
            );
        }
    }

    #[test]
    fn memo_hits_on_repeat_checks() {
        let h = lost_update();
        let mut engine = engine_for(IsolationLevel::CausalConsistency);
        let first = engine.check(&h);
        let second = engine.check(&h);
        assert_eq!(first, second);
        let stats = engine.stats();
        assert_eq!(stats.checks, 2);
        assert_eq!(stats.memo_hits, 1);
        engine.reset();
        assert_eq!(engine.stats(), EngineStats::default());
        assert_eq!(engine.check(&h), first);
        assert_eq!(engine.stats().memo_hits, 0);
    }

    #[test]
    fn unmemoized_engines_never_hit() {
        let h = lost_update();
        for level in IsolationLevel::ALL {
            let mut engine = engine_for_with(level, false);
            let a = engine.check(&h);
            let b = engine.check(&h);
            assert_eq!(a, b);
            assert_eq!(engine.stats().memo_hits, 0, "{level} hit a disabled memo");
        }
    }

    #[test]
    fn memo_distinguishes_different_histories() {
        // The lost-update history is CC-consistent but a variant where the
        // second read observes the first writer is also consistent while
        // having a different fingerprint — the memo must not conflate them.
        let h1 = lost_update();
        let mut h2 = lost_update();
        let (_, read, _, _) = h2
            .reads_from()
            .into_iter()
            .find(|(reader, _, _, _)| *reader == TxId(2))
            .unwrap();
        h2.set_wr(read, TxId(1));
        assert_ne!(h1.fingerprint(), h2.fingerprint());
        let mut engine = engine_for(IsolationLevel::Serializability);
        assert!(!engine.check(&h1), "lost update is not serializable");
        assert!(engine.check(&h2), "serial observation is serializable");
        assert_eq!(engine.stats().memo_hits, 0);
    }

    #[test]
    #[should_panic(expected = "only handles RC/RA/CC")]
    fn weak_engine_rejects_strong_levels() {
        WeakEngine::new(IsolationLevel::Serializability, true);
    }
}
