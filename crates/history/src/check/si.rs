//! Snapshot Isolation checking via the start/commit interval semantics.
//!
//! The Prefix and Conflict axioms (Fig. 2b, 2c) are equivalent to the
//! classical operational definition of Snapshot Isolation (Cerone, Bernardi
//! & Gotsman 2015; Biswas & Enea 2019): every transaction `t` is assigned a
//! start point `s_t` and a commit point `c_t` with `s_t < c_t` such that
//!
//! * if `(t, t') ∈ so ∪ wr` then `c_t < s_t'`,
//! * every external read of `x` in `t'` reads from the transaction with the
//!   last commit point before `s_t'` among the writers of `x`, and
//! * two distinct transactions writing a common variable have disjoint
//!   `[s, c]` intervals (write-conflict freedom).
//!
//! The checker searches over interleavings of start/commit steps with
//! memoisation of failed states; this equivalence is cross-validated
//! against the axiom-level oracle by randomised tests in [`crate::check`].

use std::collections::{BTreeMap, HashSet};

use crate::check::frontier::FrontierIndex;
use crate::history::History;
use crate::transaction::TxId;
use crate::value::Var;

/// Whether the history satisfies Snapshot Isolation.
pub fn satisfies_si(h: &History) -> bool {
    satisfies_si_with(h, &mut FrontierIndex::default(), &mut HashSet::new())
}

/// Like [`satisfies_si`], reusing a caller-owned per-transaction index
/// (incrementally synced to `h`, see [`FrontierIndex`]) and memo table for
/// the failed-state set. The memo is cleared on entry: its entries are only
/// meaningful within one history.
pub(crate) fn satisfies_si_with(
    h: &History,
    idx: &mut FrontierIndex,
    memo: &mut HashSet<StateKey>,
) -> bool {
    memo.clear();
    idx.sync(h);
    let mut state = SiState {
        frontier: vec![0; idx.sessions.len()],
        started: vec![false; idx.sessions.len()],
        last_committed: BTreeMap::new(),
    };
    search(idx, &mut state, memo)
}

struct SiState {
    /// Index of the next transaction of each session (started or not).
    frontier: Vec<usize>,
    /// Whether the current transaction of each session has started but not
    /// yet committed.
    started: Vec<bool>,
    /// Last committed writer of each variable (absent = init).
    last_committed: BTreeMap<Var, TxId>,
}

pub(crate) type StateKey = (Vec<(usize, bool)>, Vec<(u32, u32)>);

fn state_key(state: &SiState) -> StateKey {
    (
        state
            .frontier
            .iter()
            .copied()
            .zip(state.started.iter().copied())
            .collect(),
        state
            .last_committed
            .iter()
            .map(|(v, t)| (v.0, t.0))
            .collect(),
    )
}

fn search(idx: &FrontierIndex, state: &mut SiState, memo: &mut HashSet<StateKey>) -> bool {
    let done = state
        .frontier
        .iter()
        .zip(&idx.sessions)
        .all(|(f, s)| *f == s.len());
    if done {
        return true;
    }
    let key = state_key(state);
    if memo.contains(&key) {
        return false;
    }
    for s in 0..idx.sessions.len() {
        if state.frontier[s] >= idx.sessions[s].len() {
            continue;
        }
        let (t, slot) = idx.sessions[s][state.frontier[s]];
        if !state.started[s] {
            // Try to start t: snapshot reads + write-conflict freedom.
            let snapshot_ok = idx.reads[slot as usize]
                .iter()
                .all(|(x, w)| state.last_committed.get(x).copied().unwrap_or(TxId::INIT) == *w);
            if !snapshot_ok {
                continue;
            }
            let conflict_free = idx.visible_writes(slot as usize).all(|x| {
                (0..idx.sessions.len()).all(|s2| {
                    if s2 == s || !state.started[s2] {
                        return true;
                    }
                    let (_, slot2) = idx.sessions[s2][state.frontier[s2]];
                    !idx.writes_var(slot2 as usize, x)
                })
            });
            if !conflict_free {
                continue;
            }
            state.started[s] = true;
            if search(idx, state, memo) {
                return true;
            }
            state.started[s] = false;
        } else {
            // Commit t.
            state.started[s] = false;
            state.frontier[s] += 1;
            let mut saved: Vec<(Var, Option<TxId>)> = Vec::new();
            for x in idx.visible_writes(slot as usize) {
                saved.push((x, state.last_committed.insert(x, t)));
            }
            let found = search(idx, state, memo);
            for (x, old) in saved.into_iter().rev() {
                match old {
                    Some(w) => {
                        state.last_committed.insert(x, w);
                    }
                    None => {
                        state.last_committed.remove(&x);
                    }
                }
            }
            state.frontier[s] -= 1;
            state.started[s] = true;
            if found {
                return true;
            }
        }
    }
    memo.insert(key);
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventId, EventKind};
    use crate::transaction::SessionId;
    use crate::value::Value;

    struct Builder {
        h: History,
        next_event: u32,
        next_tx: u32,
    }

    impl Builder {
        fn new() -> Self {
            Builder {
                h: History::new([]),
                next_event: 0,
                next_tx: 0,
            }
        }
        fn fresh(&mut self) -> EventId {
            self.next_event += 1;
            EventId(self.next_event)
        }
        fn begin(&mut self, s: u32) -> TxId {
            self.next_tx += 1;
            let id = TxId(self.next_tx);
            let idx = self.h.session_txs(SessionId(s)).len();
            let e = Event::new(self.fresh(), EventKind::Begin);
            self.h.begin_transaction(SessionId(s), id, idx, e);
            id
        }
        fn write(&mut self, s: u32, x: Var, v: i64) {
            let e = Event::new(self.fresh(), EventKind::Write(x, Value::Int(v)));
            self.h.append_event(SessionId(s), e);
        }
        fn read(&mut self, s: u32, x: Var, from: TxId) {
            let e = Event::new(self.fresh(), EventKind::Read(x));
            let id = e.id;
            self.h.append_event(SessionId(s), e);
            self.h.set_wr(id, from);
        }
        fn commit(&mut self, s: u32) {
            let e = Event::new(self.fresh(), EventKind::Commit);
            self.h.append_event(SessionId(s), e);
        }
    }

    #[test]
    fn empty_history_satisfies_si() {
        assert!(satisfies_si(&History::default()));
    }

    #[test]
    fn lost_update_violates_si() {
        let x = Var(0);
        let mut b = Builder::new();
        b.begin(0);
        b.read(0, x, TxId::INIT);
        b.write(0, x, 1);
        b.commit(0);
        b.begin(1);
        b.read(1, x, TxId::INIT);
        b.write(1, x, 2);
        b.commit(1);
        assert!(!satisfies_si(&b.h));
    }

    #[test]
    fn write_skew_satisfies_si() {
        let (x, y) = (Var(0), Var(1));
        let mut b = Builder::new();
        b.begin(0);
        b.read(0, x, TxId::INIT);
        b.write(0, y, 1);
        b.commit(0);
        b.begin(1);
        b.read(1, y, TxId::INIT);
        b.write(1, x, 1);
        b.commit(1);
        assert!(satisfies_si(&b.h));
    }

    #[test]
    fn long_fork_violates_si() {
        let (x, y) = (Var(0), Var(1));
        let mut b = Builder::new();
        let t1 = b.begin(0);
        b.write(0, x, 1);
        b.commit(0);
        let t2 = b.begin(1);
        b.write(1, y, 1);
        b.commit(1);
        b.begin(2);
        b.read(2, x, t1);
        b.read(2, y, TxId::INIT);
        b.commit(2);
        b.begin(3);
        b.read(3, y, t2);
        b.read(3, x, TxId::INIT);
        b.commit(3);
        assert!(!satisfies_si(&b.h));
    }

    #[test]
    fn fig6_counterexample_to_causal_extensibility() {
        // Fig. 6: session 0: write z=1, read x (from init), write y=1;
        //         session 1: write z=2, read y (from init), write x=2.
        // Both write z, both read the other's written variable from init:
        // write-conflict on z forces disjoint intervals while the stale
        // reads force overlapping ones — inconsistent with SI (and SER).
        let (x, y, z) = (Var(0), Var(1), Var(2));
        let mut b = Builder::new();
        b.begin(0);
        b.write(0, z, 1);
        b.read(0, x, TxId::INIT);
        b.write(0, y, 1);
        b.commit(0);
        b.begin(1);
        b.write(1, z, 2);
        b.read(1, y, TxId::INIT);
        b.write(1, x, 2);
        b.commit(1);
        assert!(!satisfies_si(&b.h));
        assert!(!super::super::ser::satisfies_ser(&b.h));
        // Without the write(x,2) (the blue event in Fig. 6) it satisfies SI.
        let mut b = Builder::new();
        b.begin(0);
        b.write(0, z, 1);
        b.read(0, x, TxId::INIT);
        b.write(0, y, 1);
        b.commit(0);
        b.begin(1);
        b.write(1, z, 2);
        b.read(1, y, TxId::INIT);
        b.commit(1);
        assert!(satisfies_si(&b.h));
    }

    #[test]
    fn session_order_respected() {
        // A later transaction of the same session must observe the earlier one.
        let x = Var(0);
        let mut b = Builder::new();
        b.begin(0);
        b.write(0, x, 1);
        b.commit(0);
        b.begin(0);
        b.read(0, x, TxId::INIT); // stale read of own session's past
        b.commit(0);
        assert!(!satisfies_si(&b.h));
    }

    #[test]
    fn serializable_history_satisfies_si() {
        let x = Var(0);
        let mut b = Builder::new();
        let t1 = b.begin(0);
        b.write(0, x, 1);
        b.commit(0);
        b.begin(1);
        b.read(1, x, t1);
        b.write(1, x, 2);
        b.commit(1);
        assert!(satisfies_si(&b.h));
    }
}
