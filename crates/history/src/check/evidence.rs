//! Evidence-producing verdicts: replayable witnesses and minimal violation
//! cores.
//!
//! The boolean checkers in [`crate::check`] answer *whether* a history
//! satisfies a spec; this module reconstructs *why*, on demand and off the
//! memoised hot path (following the witness/error model of dbcop and the
//! practical-explanations argument of *Making Transaction Isolation
//! Checking Practical*):
//!
//! * On success, a [`Witness`]: a total commit order over all transactions
//!   (init first) that extends `so ∪ wr` and satisfies every reader's
//!   axioms. It is independently replay-verifiable with
//!   [`crate::axioms::check_with_order_spec`] — see [`Witness::replays`].
//!   Witness orders are extracted from the same machinery as the boolean
//!   verdicts: the Kahn order of `so ∪ wr ∪ forced` for weak levels
//!   (`WeakIndex::witness_order`), and
//!   order-recording runs of the SER/SI/PC/mixed frontier searches.
//! * On failure, a [`Violation`]: a cycle of `so`/`wr`/forced-`co` edges,
//!   each forced edge annotated with the [`AxiomInstance`] that forced it.
//!   The cycle is *simple* (every vertex is entered and left exactly once),
//!   so it is minimal in the sense that dropping any edge breaks it.
//!
//! Violation cores are found by **saturation**: starting from the
//! `so ∪ wr` edges, commit-order edges that must hold in *every* total
//! commit order are derived from the axiom instances until either the edge
//! set becomes cyclic (the core) or a fixpoint is reached. For the weak
//! levels this is exactly the forced-edge computation of the uniform
//! checkers and therefore complete. For SER/SI/PC the premises mention
//! `co`, so two sound derivation rules are used per instance
//! `⟨t1, α⟩ ∈ wr_x ∧ t2 writes x ∧ φ(t2, α) ⇒ ⟨t2, t1⟩ ∈ co`:
//!
//! * **direct**: if `φ(t2, α)` already holds under the derived partial
//!   order, force `t2 < t1`;
//! * **contrapositive**: if `t1 < t2` is already derived, then `¬φ(t2, α)`
//!   must hold, and by totality of the commit order the negated premise
//!   forces edges of its own (e.g. for Serializability, the reader `t3`
//!   must precede `t2` — the classical anti-dependency edge).
//!
//! In the rare case where the saturation fixpoint is still acyclic although
//! the history is inconsistent, the reconstruction case-splits on an
//! unordered transaction pair ([`EdgeReason::Hypothesis`]); every
//! randomised corpus in the test suite is covered without hypotheses.

use std::collections::BTreeMap;
use std::fmt;

use crate::axioms::{axioms_for, check_with_order_spec, Axiom};
use crate::check::weak::WeakIndex;
use crate::check::{mixed, pc, ser, si};
use crate::event::EventId;
use crate::history::History;
use crate::isolation::{IsolationLevel, LevelSpec};
use crate::transaction::TxId;
use crate::value::Var;

/// The outcome of an evidence-producing check
/// ([`check_witnessed`](crate::check::ConsistencyChecker::check_witnessed)).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The history satisfies the spec; the witness proves it.
    Consistent(Witness),
    /// The history violates the spec; the violation core shows why.
    Inconsistent(Violation),
}

impl Verdict {
    /// Whether this is a [`Verdict::Consistent`] verdict.
    pub fn is_consistent(&self) -> bool {
        matches!(self, Verdict::Consistent(_))
    }

    /// The witness of a consistent verdict, if any.
    pub fn witness(&self) -> Option<&Witness> {
        match self {
            Verdict::Consistent(w) => Some(w),
            Verdict::Inconsistent(_) => None,
        }
    }

    /// The violation core of an inconsistent verdict, if any.
    pub fn violation(&self) -> Option<&Violation> {
        match self {
            Verdict::Consistent(_) => None,
            Verdict::Inconsistent(v) => Some(v),
        }
    }
}

/// A consistency witness: a strict total commit order over all transactions
/// of the history (init first) that extends `so ∪ wr` and satisfies the
/// axioms of every reader's assigned level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness {
    /// The commit order, smallest (init) first.
    pub commit_order: Vec<TxId>,
}

impl Witness {
    /// Replays the witness against the axioms: whether `commit_order` is a
    /// permutation of all transactions of `h` extending `so ∪ wr` whose
    /// induced total order satisfies `spec`
    /// ([`crate::axioms::check_with_order_spec`]).
    pub fn replays(&self, h: &History, spec: &LevelSpec) -> bool {
        check_with_order_spec(h, spec, &self.commit_order)
    }
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.commit_order.iter().enumerate() {
            if i > 0 {
                f.write_str(" < ")?;
            }
            fmt_tx(f, *t)?;
        }
        Ok(())
    }
}

/// A violation core: a simple cycle of commit-order edges no strict total
/// order can satisfy. Each edge either exists in the history (`so`, `wr`)
/// or is forced by an axiom instance of the violated spec; dropping any
/// edge breaks the cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The cycle edges, in order: `cycle[k].to == cycle[k + 1].from` and
    /// the last edge closes back to `cycle[0].from`.
    pub cycle: Vec<ViolationEdge>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.cycle.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            fmt_tx(f, e.from)?;
            write!(f, " -{}->", e.reason)?;
            if i + 1 == self.cycle.len() {
                f.write_str(" ")?;
                fmt_tx(f, e.to)?;
            }
        }
        Ok(())
    }
}

/// One edge of a [`Violation`] cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViolationEdge {
    /// Source transaction: committed before `to` in every candidate order.
    pub from: TxId,
    /// Target transaction.
    pub to: TxId,
    /// Why the edge must hold.
    pub reason: EdgeReason,
}

/// Why a [`ViolationEdge`] must hold in every total commit order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EdgeReason {
    /// The edge is in the history's session order.
    SessionOrder,
    /// The edge is in the history's write-read (reads-from) relation.
    WriteRead,
    /// The edge is forced by an axiom instance of the spec.
    Forced(AxiomInstance),
    /// Case-split assumption: the saturation fixpoint was acyclic, the
    /// reconstruction branched on an unordered pair, and *every*
    /// orientation leads to a cycle; this edge is the orientation of the
    /// displayed branch. Does not occur on the test corpora.
    Hypothesis,
}

impl fmt::Display for EdgeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeReason::SessionOrder => f.write_str("so"),
            EdgeReason::WriteRead => f.write_str("wr"),
            EdgeReason::Forced(i) => write!(f, "co[{i}]"),
            EdgeReason::Hypothesis => f.write_str("co[hyp]"),
        }
    }
}

/// The axiom instance forcing a commit-order edge: the reader `reader`
/// reads `var` from `source`, `writer` also writes `var`, and the axiom's
/// premise `φ(writer, α)` (or, for `contrapositive` edges, its totality
/// consequence given `source < writer`) forces the edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AxiomInstance {
    /// The violated axiom of the reader's level.
    pub axiom: Axiom,
    /// The transaction whose external read instantiates the axiom.
    pub reader: TxId,
    /// The variable the read observes.
    pub var: Var,
    /// The transaction the read observes (`tr(α)` — `t1` in the axiom).
    pub source: TxId,
    /// The conflicting writer of `var` (`t2` in the axiom).
    pub writer: TxId,
    /// Whether the edge comes from the contrapositive rule (negated
    /// premise under `source < writer`) rather than the direct one.
    pub contrapositive: bool,
}

impl fmt::Display for AxiomInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.axiom)?;
        if self.contrapositive {
            f.write_str("'")?;
        }
        f.write_str(" ")?;
        fmt_tx(f, self.reader)?;
        write!(f, ":x{}<-", self.var.0)?;
        fmt_tx(f, self.source)?;
        f.write_str(" vs ")?;
        fmt_tx(f, self.writer)
    }
}

fn fmt_tx(f: &mut fmt::Formatter<'_>, t: TxId) -> fmt::Result {
    if t.is_init() {
        f.write_str("init")
    } else {
        write!(f, "t{}", t.0)
    }
}

/// Reconstructs the evidence for a verdict the boolean fast path already
/// decided. Called by
/// [`ConsistencyChecker::check_witnessed`](crate::check::ConsistencyChecker::check_witnessed);
/// builds fresh (non-memoised) indexes, so it never touches engine memo
/// slots.
pub(crate) fn reconstruct(h: &History, spec: &LevelSpec, consistent: bool) -> Verdict {
    if consistent {
        match witness_order(h, spec) {
            Some(order) => Verdict::Consistent(Witness {
                commit_order: order,
            }),
            None => Verdict::Inconsistent(
                violation_core(h, spec)
                    .expect("fast path said consistent but no witness or core exists"),
            ),
        }
    } else {
        match violation_core(h, spec) {
            Some(core) => Verdict::Inconsistent(core),
            None => Verdict::Consistent(Witness {
                commit_order: witness_order(h, spec)
                    .expect("fast path said inconsistent but no core or witness exists"),
            }),
        }
    }
}

/// A commit order witnessing that `h` satisfies `spec`, threaded through
/// the same engines as the boolean verdicts: the weak Kahn order, or an
/// order-recording run of the SER/SI/PC/mixed frontier searches.
fn witness_order(h: &History, spec: &LevelSpec) -> Option<Vec<TxId>> {
    let Some(level) = spec.as_uniform() else {
        return mixed::witness_spec(h, spec);
    };
    match level {
        // `true` imposes no axioms; any topological order of `so ∪ wr`
        // (which is acyclic for well-formed histories) is a witness.
        IsolationLevel::Trivial => {
            let mut weak = WeakIndex::new(IsolationLevel::ReadCommitted);
            weak.sync(h);
            weak.base_topological_order()
        }
        IsolationLevel::ReadCommitted
        | IsolationLevel::ReadAtomic
        | IsolationLevel::CausalConsistency => {
            let mut weak = WeakIndex::new(level);
            weak.sync(h);
            weak.witness_order()
        }
        IsolationLevel::PrefixConsistency => pc::witness_pc(h),
        IsolationLevel::SnapshotIsolation => si::witness_si(h),
        IsolationLevel::Serializability => ser::witness_ser(h),
    }
}

/// A minimal violation core, or `None` when `h` actually satisfies `spec`
/// (every saturation branch reaches a consistent total order).
fn violation_core(h: &History, spec: &LevelSpec) -> Option<Violation> {
    if spec.as_uniform() == Some(IsolationLevel::Trivial) {
        // The trivial level rejects nothing: no core can exist.
        return None;
    }
    let mut sat = Saturation::new(h, spec);
    sat.find_cycle().map(|cycle| Violation { cycle })
}

/// The saturation state: the transactions of the history, the annotated
/// derived edge set, and its transitive closure.
struct Saturation<'h> {
    h: &'h History,
    /// All transactions, init first.
    txs: Vec<TxId>,
    /// `TxId ↦` vertex index in `txs`.
    index: BTreeMap<TxId, usize>,
    /// External reads: `(reader, read event, var, source)`, with the
    /// reader's axioms resolved through the spec.
    reads: Vec<(TxId, EventId, Var, TxId, &'static [Axiom])>,
    /// Annotated adjacency: `edges[a]` lists `(b, reason)` with the first
    /// derivation of each edge kept.
    edges: Vec<Vec<(usize, EdgeReason)>>,
    /// Edge-presence matrix (row-major `a * n + b`).
    present: Vec<bool>,
    /// Transitive closure of `present` (paths of length ≥ 1).
    closure: Vec<bool>,
}

impl<'h> Saturation<'h> {
    fn new(h: &'h History, spec: &'h LevelSpec) -> Self {
        let txs: Vec<TxId> = std::iter::once(TxId::INIT).chain(h.tx_ids()).collect();
        let index: BTreeMap<TxId, usize> = txs.iter().enumerate().map(|(i, t)| (*t, i)).collect();
        let n = txs.len();
        let mut sat = Saturation {
            h,
            txs,
            index,
            reads: Vec::new(),
            edges: vec![Vec::new(); n],
            present: vec![false; n * n],
            closure: vec![false; n * n],
        };
        for (t3, alpha, x, t1) in h.reads_from() {
            let axioms = axioms_for(spec.level_of_tx(h, t3));
            if !axioms.is_empty() {
                sat.reads.push((t3, alpha, x, t1, axioms));
            }
        }
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let (ta, tb) = (sat.txs[a], sat.txs[b]);
                if h.so_before(ta, tb) {
                    sat.add_edge(a, b, EdgeReason::SessionOrder);
                } else if h.wr_tx_edge(ta, tb) {
                    sat.add_edge(a, b, EdgeReason::WriteRead);
                }
            }
        }
        sat.close();
        sat
    }

    fn n(&self) -> usize {
        self.txs.len()
    }

    /// Records `a → b` unless already present. Returns whether it was new.
    fn add_edge(&mut self, a: usize, b: usize, reason: EdgeReason) -> bool {
        debug_assert_ne!(a, b);
        if self.present[a * self.n() + b] {
            return false;
        }
        let n = self.n();
        self.present[a * n + b] = true;
        self.edges[a].push((b, reason));
        true
    }

    /// Recomputes the transitive closure (Floyd–Warshall; the histories
    /// the evidence path sees are tiny).
    fn close(&mut self) {
        let n = self.n();
        self.closure.copy_from_slice(&self.present);
        for k in 0..n {
            for a in 0..n {
                if !self.closure[a * n + k] {
                    continue;
                }
                for b in 0..n {
                    if self.closure[k * n + b] {
                        self.closure[a * n + b] = true;
                    }
                }
            }
        }
    }

    fn before(&self, a: usize, b: usize) -> bool {
        self.closure[a * self.n() + b]
    }

    fn before_eq(&self, a: usize, b: usize) -> bool {
        a == b || self.before(a, b)
    }

    /// Whether `φ_axiom(t2, α)` *necessarily* holds: it is true under
    /// every total order extending the currently derived partial order.
    /// Sound but (for the co-dependent premises) not complete.
    fn premise_necessary(&self, axiom: Axiom, t3: TxId, alpha: EventId, t2: TxId) -> bool {
        let h = self.h;
        let (i2, i3) = (self.index[&t2], self.index[&t3]);
        match axiom {
            Axiom::ReadCommitted => {
                let Some(log) = h.get_tx(t3) else {
                    return false;
                };
                log.read_events()
                    .filter(|c| log.po_before(c.id, alpha))
                    .any(|c| h.wr_of(c.id) == Some(t2))
            }
            Axiom::ReadAtomic => h.so_or_wr(t2, t3),
            Axiom::Causal => h.causally_before(t2, t3),
            Axiom::Serializability => self.before(i2, i3),
            Axiom::Prefix => {
                (0..self.n()).any(|i4| self.before_eq(i2, i4) && h.so_or_wr(self.txs[i4], t3))
            }
            Axiom::Conflict => {
                let Some(log3) = h.get_tx(t3) else {
                    return false;
                };
                let written: Vec<Var> = log3.visible_writes().keys().copied().collect();
                if written.is_empty() {
                    return false;
                }
                (0..self.n()).any(|i4| {
                    self.before_eq(i2, i4)
                        && self.before(i4, i3)
                        && written.iter().any(|y| h.writes_var(self.txs[i4], *y))
                })
            }
        }
    }

    /// One saturation pass: derives every new edge the direct and
    /// contrapositive rules justify under the current closure. Returns
    /// whether anything was added.
    fn saturate_pass(&mut self) -> bool {
        let mut added = false;
        let mut pending: Vec<(usize, usize, EdgeReason)> = Vec::new();
        for k in 0..self.reads.len() {
            let (t3, alpha, x, t1, axioms) = self.reads[k];
            let (i1, i3) = (self.index[&t1], self.index[&t3]);
            for t2 in self.h.writers_of(x) {
                if t2 == t1 {
                    continue;
                }
                let i2 = self.index[&t2];
                for &axiom in axioms {
                    let instance = |contrapositive: bool| {
                        EdgeReason::Forced(AxiomInstance {
                            axiom,
                            reader: t3,
                            var: x,
                            source: t1,
                            writer: t2,
                            contrapositive,
                        })
                    };
                    // Direct: premise necessarily holds ⇒ t2 < t1.
                    if i2 != i1
                        && !self.present[i2 * self.n() + i1]
                        && self.premise_necessary(axiom, t3, alpha, t2)
                    {
                        pending.push((i2, i1, instance(false)));
                    }
                    // Contrapositive: t1 < t2 derived ⇒ ¬φ(t2, α), and by
                    // totality the negated premise forces edges.
                    if !self.before(i1, i2) {
                        continue;
                    }
                    match axiom {
                        // ¬(t2 < t3) ⇒ t3 < t2 (anti-dependency).
                        Axiom::Serializability if i3 != i2 && !self.present[i3 * self.n() + i2] => {
                            pending.push((i3, i2, instance(true)));
                        }
                        Axiom::Serializability => {}
                        Axiom::Prefix => {
                            // ∀t4 with ⟨t4,t3⟩ ∈ so ∪ wr: ¬(t2 ≤ t4)
                            // ⇒ t4 < t2.
                            for i4 in 0..self.n() {
                                if i4 != i2
                                    && !self.present[i4 * self.n() + i2]
                                    && self.h.so_or_wr(self.txs[i4], t3)
                                {
                                    pending.push((i4, i2, instance(true)));
                                }
                            }
                        }
                        Axiom::Conflict => {
                            // ∀t4 writing a common variable with t3:
                            // t2 ≤ t4 ⇒ ¬(t4 < t3) ⇒ t3 < t4.
                            let Some(log3) = self.h.get_tx(t3) else {
                                continue;
                            };
                            let written: Vec<Var> = log3.visible_writes().keys().copied().collect();
                            for i4 in 0..self.n() {
                                if i4 == i3
                                    || !self.before_eq(i2, i4)
                                    || self.present[i3 * self.n() + i4]
                                {
                                    continue;
                                }
                                if written.iter().any(|y| self.h.writes_var(self.txs[i4], *y)) {
                                    pending.push((i3, i4, instance(true)));
                                }
                            }
                        }
                        // Weak premises never mention co: the direct rule
                        // is already exact.
                        _ => {}
                    }
                }
            }
        }
        for (a, b, reason) in pending {
            if self.add_edge(a, b, reason) {
                added = true;
            }
        }
        if added {
            self.close();
        }
        added
    }

    /// Shortest simple cycle in the annotated edge set, if any.
    fn shortest_cycle(&self) -> Option<Vec<ViolationEdge>> {
        let n = self.n();
        let mut best: Option<Vec<usize>> = None; // vertex sequence v0..vk, v0 = vk target
        for v in 0..n {
            if !self.before(v, v) {
                continue;
            }
            // BFS from v back to v over the annotated edges.
            let mut parent: Vec<Option<usize>> = vec![None; n];
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(v);
            let mut found = false;
            'bfs: while let Some(a) = queue.pop_front() {
                for &(b, _) in &self.edges[a] {
                    if b == v {
                        parent[v] = Some(a);
                        found = true;
                        break 'bfs;
                    }
                    if parent[b].is_none() && b != v {
                        parent[b] = Some(a);
                        queue.push_back(b);
                    }
                }
            }
            if !found {
                continue;
            }
            let mut path = vec![v];
            let mut cur = parent[v].unwrap();
            while cur != v {
                path.push(cur);
                cur = parent[cur].unwrap();
            }
            path.push(v);
            path.reverse(); // v, ..., v
            if best.as_ref().map_or(true, |b| path.len() < b.len()) {
                best = Some(path);
            }
        }
        let path = best?;
        let mut cycle = Vec::with_capacity(path.len() - 1);
        for w in path.windows(2) {
            let (a, b) = (w[0], w[1]);
            let reason = self.edges[a]
                .iter()
                .find(|(to, _)| *to == b)
                .map(|(_, r)| r.clone())
                .expect("cycle edge must be annotated");
            cycle.push(ViolationEdge {
                from: self.txs[a],
                to: self.txs[b],
                reason,
            });
        }
        Some(cycle)
    }

    /// Saturates to fixpoint; on an acyclic fixpoint, case-splits on the
    /// first unordered pair. Returns a cycle iff every completion of the
    /// derived partial order violates some axiom instance.
    fn find_cycle(&mut self) -> Option<Vec<ViolationEdge>> {
        while self.saturate_pass() {
            if let Some(cycle) = self.shortest_cycle() {
                return Some(cycle);
            }
        }
        if let Some(cycle) = self.shortest_cycle() {
            return Some(cycle);
        }
        // Acyclic fixpoint: the derived order may still have no consistent
        // completion. Branch on the first unordered pair; the history is
        // inconsistent iff both orientations cycle.
        let n = self.n();
        for a in 0..n {
            for b in a + 1..n {
                if self.before(a, b) || self.before(b, a) {
                    continue;
                }
                let mut forward = self.fork();
                forward.add_edge(a, b, EdgeReason::Hypothesis);
                forward.close();
                let fwd = forward.find_cycle()?;
                let mut backward = self.fork();
                backward.add_edge(b, a, EdgeReason::Hypothesis);
                backward.close();
                let bwd = backward.find_cycle()?;
                return Some(if fwd.len() <= bwd.len() { fwd } else { bwd });
            }
        }
        // Total and acyclic at fixpoint: the unique completion satisfies
        // every axiom instance, so the history is consistent.
        None
    }

    /// A clone of the saturation state for a case-split branch.
    fn fork(&self) -> Saturation<'h> {
        Saturation {
            h: self.h,
            txs: self.txs.clone(),
            index: self.index.clone(),
            reads: self.reads.clone(),
            edges: self.edges.clone(),
            present: self.present.clone(),
            closure: self.closure.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};
    use crate::transaction::SessionId;
    use crate::value::Value;

    struct Builder {
        h: History,
        next_event: u32,
        next_tx: u32,
    }

    impl Builder {
        fn new() -> Self {
            Builder {
                h: History::new([]),
                next_event: 0,
                next_tx: 0,
            }
        }
        fn fresh(&mut self) -> EventId {
            self.next_event += 1;
            EventId(self.next_event)
        }
        fn begin(&mut self, s: u32) -> TxId {
            self.next_tx += 1;
            let id = TxId(self.next_tx);
            let idx = self.h.session_txs(SessionId(s)).len();
            let e = Event::new(self.fresh(), EventKind::Begin);
            self.h.begin_transaction(SessionId(s), id, idx, e);
            id
        }
        fn write(&mut self, s: u32, x: Var, v: i64) {
            let e = Event::new(self.fresh(), EventKind::Write(x, Value::Int(v)));
            self.h.append_event(SessionId(s), e);
        }
        fn read(&mut self, s: u32, x: Var, from: TxId) {
            let e = Event::new(self.fresh(), EventKind::Read(x));
            let id = e.id;
            self.h.append_event(SessionId(s), e);
            self.h.set_wr(id, from);
        }
        fn commit(&mut self, s: u32) {
            let e = Event::new(self.fresh(), EventKind::Commit);
            self.h.append_event(SessionId(s), e);
        }
    }

    /// Lost update: both transactions read x from init and write it.
    fn lost_update() -> History {
        let x = Var(0);
        let mut b = Builder::new();
        b.begin(0);
        b.read(0, x, TxId::INIT);
        b.write(0, x, 1);
        b.commit(0);
        b.begin(1);
        b.read(1, x, TxId::INIT);
        b.write(1, x, 2);
        b.commit(1);
        b.h
    }

    /// Write skew: t1 reads x, writes y; t2 reads y, writes x; both from
    /// init.
    fn write_skew() -> History {
        let (x, y) = (Var(0), Var(1));
        let mut b = Builder::new();
        b.begin(0);
        b.read(0, x, TxId::INIT);
        b.write(0, y, 1);
        b.commit(0);
        b.begin(1);
        b.read(1, y, TxId::INIT);
        b.write(1, x, 1);
        b.commit(1);
        b.h
    }

    fn assert_simple_cycle(v: &Violation) {
        assert!(!v.cycle.is_empty(), "empty cycle");
        for (k, e) in v.cycle.iter().enumerate() {
            let next = &v.cycle[(k + 1) % v.cycle.len()];
            assert_eq!(e.to, next.from, "cycle must be closed: {v}");
        }
        let mut seen = std::collections::BTreeSet::new();
        for e in &v.cycle {
            assert!(seen.insert(e.from), "cycle must be simple: {v}");
        }
    }

    #[test]
    fn lost_update_core_under_si_uses_the_conflict_axiom() {
        let h = lost_update();
        let spec = LevelSpec::uniform(IsolationLevel::SnapshotIsolation);
        let core = violation_core(&h, &spec).expect("lost update violates SI");
        assert_simple_cycle(&Violation {
            cycle: core.cycle.clone(),
        });
        assert!(
            core.cycle
                .iter()
                .any(|e| matches!(&e.reason, EdgeReason::Forced(i) if i.axiom == Axiom::Conflict)),
            "{core}"
        );
    }

    #[test]
    fn write_skew_core_under_ser_is_the_antidependency_cycle() {
        let h = write_skew();
        let spec = LevelSpec::uniform(IsolationLevel::Serializability);
        let core = violation_core(&h, &spec).expect("write skew violates SER");
        assert_simple_cycle(&core);
        // Both edges are contrapositive SER instances: each reader must
        // precede the writer that overwrote its snapshot.
        assert_eq!(core.cycle.len(), 2, "{core}");
        for e in &core.cycle {
            assert!(
                matches!(&e.reason, EdgeReason::Forced(i)
                    if i.axiom == Axiom::Serializability && i.contrapositive),
                "{core}"
            );
        }
    }

    #[test]
    fn consistent_histories_have_no_core() {
        let h = write_skew();
        for level in [
            IsolationLevel::SnapshotIsolation,
            IsolationLevel::PrefixConsistency,
            IsolationLevel::CausalConsistency,
        ] {
            assert_eq!(violation_core(&h, &LevelSpec::uniform(level)), None);
        }
    }

    #[test]
    fn reconstructed_witnesses_replay() {
        let h = lost_update();
        for level in [
            IsolationLevel::Trivial,
            IsolationLevel::ReadCommitted,
            IsolationLevel::CausalConsistency,
            IsolationLevel::PrefixConsistency,
        ] {
            let spec = LevelSpec::uniform(level);
            let v = reconstruct(&h, &spec, true);
            let w = v.witness().expect("lost update is consistent here");
            assert!(w.replays(&h, &spec), "{level}: {w}");
        }
    }
}
