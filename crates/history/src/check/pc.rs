//! Prefix Consistency checking via a prefix-constrained commit-order
//! search.
//!
//! The Prefix axiom alone (Fig. 2b) is equivalent to the operational
//! snapshot semantics of Snapshot Isolation *without* write-conflict
//! freedom (Cerone, Bernardi & Gotsman 2015): every transaction `t` is
//! assigned a start point `s_t` and a commit point `c_t` with `s_t < c_t`
//! such that
//!
//! * if `(t, t') ∈ so ∪ wr` then `c_t < s_t'`, and
//! * every external read of `x` in `t'` reads from the transaction with the
//!   last commit point before `s_t'` among the writers of `x`
//!
//! — i.e. each transaction reads from a snapshot that is a *prefix* of the
//! commit order, but concurrent transactions may write the same variable.
//! The search mirrors [`crate::check::si`] minus the conflict rule, reuses
//! the shared `FrontierIndex`, and memoises failed states. Because the
//! Prefix axiom implies the Causal axiom (the commit order extends
//! `so ∪ wr`), the [`PcEngine`](crate::check::engine) runs the polynomial
//! Causal Consistency check as a prerequisite before this search; the
//! equivalence is cross-validated against the axiom-level oracle by
//! randomised tests in [`crate::check`].

use std::collections::{BTreeMap, HashSet};

use crate::check::frontier::FrontierIndex;
use crate::check::weak;
use crate::history::History;
use crate::isolation::IsolationLevel;
use crate::transaction::TxId;
use crate::value::Var;

/// Whether the history satisfies Prefix Consistency.
pub fn satisfies_pc(h: &History) -> bool {
    // Causal prerequisite: Prefix implies Causal, and the polynomial weak
    // check prunes most inconsistent histories before the search.
    weak::satisfies_weak(h, IsolationLevel::CausalConsistency)
        && satisfies_pc_with(h, &mut FrontierIndex::default(), &mut HashSet::new())
}

/// The prefix-constrained commit-order search, reusing a caller-owned
/// per-transaction index (incrementally synced to `h`, see
/// `FrontierIndex`) and memo table for the failed-state set. The memo is
/// cleared on entry: its entries are only meaningful within one history.
/// Callers wanting the causal prerequisite must run it themselves (see
/// [`satisfies_pc`]).
pub(crate) fn satisfies_pc_with(
    h: &History,
    idx: &mut FrontierIndex,
    memo: &mut HashSet<StateKey>,
) -> bool {
    memo.clear();
    idx.sync(h);
    let mut state = PcState {
        frontier: vec![0; idx.sessions.len()],
        started: vec![false; idx.sessions.len()],
        last_committed: BTreeMap::new(),
    };
    search(idx, &mut state, memo, &mut None)
}

/// Like [`satisfies_pc_with`], additionally returning the commit order the
/// successful search found (init first), for witness reconstruction.
pub(crate) fn witness_pc(h: &History) -> Option<Vec<TxId>> {
    let idx = &mut FrontierIndex::default();
    let memo = &mut HashSet::new();
    idx.sync(h);
    let mut state = PcState {
        frontier: vec![0; idx.sessions.len()],
        started: vec![false; idx.sessions.len()],
        last_committed: BTreeMap::new(),
    };
    let mut order = Some(vec![TxId::INIT]);
    search(idx, &mut state, memo, &mut order).then(|| order.unwrap())
}

struct PcState {
    /// Index of the next transaction of each session (started or not).
    frontier: Vec<usize>,
    /// Whether the current transaction of each session has started but not
    /// yet committed.
    started: Vec<bool>,
    /// Last committed writer of each variable (absent = init).
    last_committed: BTreeMap<Var, TxId>,
}

pub(crate) type StateKey = (Vec<(usize, bool)>, Vec<(u32, u32)>);

fn state_key(state: &PcState) -> StateKey {
    (
        state
            .frontier
            .iter()
            .copied()
            .zip(state.started.iter().copied())
            .collect(),
        state
            .last_committed
            .iter()
            .map(|(v, t)| (v.0, t.0))
            .collect(),
    )
}

fn search(
    idx: &FrontierIndex,
    state: &mut PcState,
    memo: &mut HashSet<StateKey>,
    order: &mut Option<Vec<TxId>>,
) -> bool {
    let done = state
        .frontier
        .iter()
        .zip(&idx.sessions)
        .all(|(f, s)| *f == s.len());
    if done {
        return true;
    }
    let key = state_key(state);
    if memo.contains(&key) {
        return false;
    }
    for s in 0..idx.sessions.len() {
        if state.frontier[s] >= idx.sessions[s].len() {
            continue;
        }
        let (t, slot) = idx.sessions[s][state.frontier[s]];
        if !state.started[s] {
            // Try to start t: snapshot reads only — unlike SI there is no
            // write-conflict-freedom requirement.
            let snapshot_ok = idx.reads[slot as usize]
                .iter()
                .all(|(x, w)| state.last_committed.get(x).copied().unwrap_or(TxId::INIT) == *w);
            if !snapshot_ok {
                continue;
            }
            state.started[s] = true;
            if search(idx, state, memo, order) {
                return true;
            }
            state.started[s] = false;
        } else {
            // Commit t.
            state.started[s] = false;
            state.frontier[s] += 1;
            let mut saved: Vec<(Var, Option<TxId>)> = Vec::new();
            for x in idx.visible_writes(slot as usize) {
                saved.push((x, state.last_committed.insert(x, t)));
            }
            if let Some(order) = order.as_mut() {
                order.push(t);
            }
            let found = search(idx, state, memo, order);
            if !found {
                if let Some(order) = order.as_mut() {
                    order.pop();
                }
            }
            for (x, old) in saved.into_iter().rev() {
                match old {
                    Some(w) => {
                        state.last_committed.insert(x, w);
                    }
                    None => {
                        state.last_committed.remove(&x);
                    }
                }
            }
            state.frontier[s] -= 1;
            state.started[s] = true;
            if found {
                return true;
            }
        }
    }
    memo.insert(key);
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventId, EventKind};
    use crate::transaction::SessionId;
    use crate::value::Value;

    struct Builder {
        h: History,
        next_event: u32,
        next_tx: u32,
    }

    impl Builder {
        fn new() -> Self {
            Builder {
                h: History::new([]),
                next_event: 0,
                next_tx: 0,
            }
        }
        fn fresh(&mut self) -> EventId {
            self.next_event += 1;
            EventId(self.next_event)
        }
        fn begin(&mut self, s: u32) -> TxId {
            self.next_tx += 1;
            let id = TxId(self.next_tx);
            let idx = self.h.session_txs(SessionId(s)).len();
            let e = Event::new(self.fresh(), EventKind::Begin);
            self.h.begin_transaction(SessionId(s), id, idx, e);
            id
        }
        fn write(&mut self, s: u32, x: Var, v: i64) {
            let e = Event::new(self.fresh(), EventKind::Write(x, Value::Int(v)));
            self.h.append_event(SessionId(s), e);
        }
        fn read(&mut self, s: u32, x: Var, from: TxId) {
            let e = Event::new(self.fresh(), EventKind::Read(x));
            let id = e.id;
            self.h.append_event(SessionId(s), e);
            self.h.set_wr(id, from);
        }
        fn commit(&mut self, s: u32) {
            let e = Event::new(self.fresh(), EventKind::Commit);
            self.h.append_event(SessionId(s), e);
        }
    }

    #[test]
    fn empty_history_satisfies_pc() {
        assert!(satisfies_pc(&History::default()));
    }

    #[test]
    fn lost_update_satisfies_pc_but_not_si() {
        // Both transactions read x from init and write it: the Conflict
        // axiom rejects this under SI, but PC has no conflict rule.
        let x = Var(0);
        let mut b = Builder::new();
        b.begin(0);
        b.read(0, x, TxId::INIT);
        b.write(0, x, 1);
        b.commit(0);
        b.begin(1);
        b.read(1, x, TxId::INIT);
        b.write(1, x, 2);
        b.commit(1);
        assert!(satisfies_pc(&b.h));
        assert!(!super::super::si::satisfies_si(&b.h));
    }

    #[test]
    fn long_fork_violates_pc_but_not_cc() {
        // t1 writes x; t2 writes y; t3 reads x (new) and y (init); t4 reads
        // y (new) and x (init). The two readers need prefixes ordering t1
        // and t2 oppositely, so no snapshot assignment exists — yet there
        // is no causal relation between t1 and t2, so CC accepts.
        let (x, y) = (Var(0), Var(1));
        let mut b = Builder::new();
        let t1 = b.begin(0);
        b.write(0, x, 1);
        b.commit(0);
        let t2 = b.begin(1);
        b.write(1, y, 1);
        b.commit(1);
        b.begin(2);
        b.read(2, x, t1);
        b.read(2, y, TxId::INIT);
        b.commit(2);
        b.begin(3);
        b.read(3, y, t2);
        b.read(3, x, TxId::INIT);
        b.commit(3);
        assert!(!satisfies_pc(&b.h));
        assert!(super::super::weak::satisfies_weak(
            &b.h,
            IsolationLevel::CausalConsistency
        ));
    }

    #[test]
    fn write_skew_satisfies_pc() {
        let (x, y) = (Var(0), Var(1));
        let mut b = Builder::new();
        b.begin(0);
        b.read(0, x, TxId::INIT);
        b.write(0, y, 1);
        b.commit(0);
        b.begin(1);
        b.read(1, y, TxId::INIT);
        b.write(1, x, 1);
        b.commit(1);
        assert!(satisfies_pc(&b.h));
    }

    #[test]
    fn session_order_respected() {
        // A later transaction of the same session must observe the earlier one.
        let x = Var(0);
        let mut b = Builder::new();
        b.begin(0);
        b.write(0, x, 1);
        b.commit(0);
        b.begin(0);
        b.read(0, x, TxId::INIT); // stale read of own session's past
        b.commit(0);
        assert!(!satisfies_pc(&b.h));
    }

    #[test]
    fn witness_order_is_a_replayable_commit_order() {
        let x = Var(0);
        let mut b = Builder::new();
        b.begin(0);
        b.read(0, x, TxId::INIT);
        b.write(0, x, 1);
        b.commit(0);
        b.begin(1);
        b.read(1, x, TxId::INIT);
        b.write(1, x, 2);
        b.commit(1);
        let order = witness_pc(&b.h).expect("lost update is PC-consistent");
        assert!(crate::axioms::check_with_order(
            &b.h,
            IsolationLevel::PrefixConsistency,
            &order
        ));
    }
}
