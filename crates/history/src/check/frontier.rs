//! Shared per-transaction index for the frontier-search checkers
//! (Serializability and Snapshot Isolation), maintained incrementally from
//! the history's mutation deltas.
//!
//! Both searches consume the same view of a history: the transactions of
//! each session in session order, and per transaction its external reads
//! (variable + writer) and visible writes. [`FrontierIndex`] keeps that
//! view synced to a history the same way [`crate::check::weak::WeakIndex`]
//! does, replaying [`History::deltas_since`]. Unlike the weak index it
//! needs no undo journal: every delta (and every inverse delta emitted by a
//! rollback) is directly invertible from the per-transaction write counts,
//! so the sync never falls back to a rebuild for replayable windows. The
//! *search* itself still runs per check — only the index construction is
//! amortised.

use crate::history::{DeltaEventInfo, History, HistoryDelta};
use crate::transaction::TxId;
use crate::value::Var;

/// One write entry of a transaction: variable, number of live write events
/// to it, and the program-order position of the first one (used to decide
/// whether a read is internal).
#[derive(Copy, Clone, Debug)]
struct WriteEntry {
    var: Var,
    count: u32,
    first_po: u32,
}

/// Incrementally synced per-transaction view for the SER/SI searches.
#[derive(Debug, Default)]
pub(crate) struct FrontierIndex {
    uid: u64,
    gen: u64,
    synced: bool,
    /// `session id ↦` its transactions as `(id, slot)` in session order
    /// (gaps between session ids stay empty).
    pub(crate) sessions: Vec<Vec<(TxId, u32)>>,
    /// `slot ↦` external reads `(var, writer)` of the transaction.
    pub(crate) reads: Vec<Vec<(Var, TxId)>>,
    /// `slot ↦` write entries of the transaction.
    writes: Vec<Vec<WriteEntry>>,
    /// `slot ↦` whether the transaction aborted (its writes are invisible).
    aborted: Vec<bool>,
    /// Direct-indexed `TxId.0 ↦ slot` (`u32::MAX` = absent).
    index: Vec<u32>,
    /// Statistics: how syncs were served.
    pub(crate) incremental_hits: u64,
    pub(crate) full_rebuilds: u64,
}

impl FrontierIndex {
    /// Number of indexed transactions.
    pub(crate) fn len(&self) -> usize {
        self.reads.len()
    }

    /// The slot of a transaction, `None` for unknown ids (including init).
    pub(crate) fn slot_of(&self, t: TxId) -> Option<u32> {
        match self.index.get(t.0 as usize) {
            Some(&slot) if slot != u32::MAX => Some(slot),
            _ => None,
        }
    }

    /// The *visible* writes of a slot (empty for aborted transactions).
    pub(crate) fn visible_writes(&self, slot: usize) -> impl Iterator<Item = Var> + '_ {
        let entries = if self.aborted[slot] {
            &[] as &[WriteEntry]
        } else {
            &self.writes[slot]
        };
        entries.iter().map(|e| e.var)
    }

    /// Whether the slot's transaction visibly writes `x`.
    pub(crate) fn writes_var(&self, slot: usize, x: Var) -> bool {
        !self.aborted[slot] && self.writes[slot].iter().any(|e| e.var == x)
    }

    /// Brings the index in sync with `h`, replaying recorded deltas when
    /// possible and rebuilding otherwise.
    pub(crate) fn sync(&mut self, h: &History) {
        if self.synced && self.uid == h.uid() {
            if self.gen == h.generation() {
                self.incremental_hits += 1;
                return;
            }
            let replayed = match h.deltas_since(self.gen) {
                None => false,
                Some(deltas) => {
                    let mut ok = true;
                    for d in deltas {
                        if !self.apply(d) {
                            ok = false;
                            break;
                        }
                    }
                    ok
                }
            };
            if replayed {
                self.gen = h.generation();
                self.incremental_hits += 1;
                return;
            }
        }
        self.rebuild(h);
        self.full_rebuilds += 1;
    }

    fn rebuild(&mut self, h: &History) {
        for s in &mut self.sessions {
            s.clear();
        }
        self.reads.clear();
        self.writes.clear();
        self.aborted.clear();
        self.index.clear();
        self.index.resize(h.max_tx_id() as usize + 1, u32::MAX);
        let n = h.num_transactions();
        self.reads.resize_with(n, Vec::new);
        self.writes.resize_with(n, Vec::new);
        self.aborted.resize(n, false);
        for (slot, t) in h.transactions().enumerate() {
            self.index[t.id.0 as usize] = slot as u32;
        }
        for (sid, txs) in h.sessions() {
            if self.sessions.len() <= sid.0 as usize {
                self.sessions.resize_with(sid.0 as usize + 1, Vec::new);
            }
            for t in txs {
                let slot = self.index[t.0 as usize];
                self.sessions[sid.0 as usize].push((*t, slot));
                let log = h.tx(*t);
                self.aborted[slot as usize] = log.is_aborted();
                for (po, e) in log.events.iter().enumerate() {
                    match &e.kind {
                        crate::event::EventKind::Write(x, _) => {
                            self.note_write(slot, *x, po as u32);
                        }
                        crate::event::EventKind::Read(x) => {
                            if let Some(w) = h.wr_of(e.id) {
                                if !self.is_internal(slot, *x, po as u32) {
                                    self.reads[slot as usize].push((*x, w));
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        self.uid = h.uid();
        self.gen = h.generation();
        self.synced = true;
    }

    fn note_write(&mut self, slot: u32, x: Var, po: u32) {
        match self.writes[slot as usize].iter_mut().find(|e| e.var == x) {
            Some(e) => e.count += 1,
            None => self.writes[slot as usize].push(WriteEntry {
                var: x,
                count: 1,
                first_po: po,
            }),
        }
    }

    /// Whether a read of `x` at po position `po` is internal (po-preceded
    /// by a write to `x` in the same transaction).
    fn is_internal(&self, slot: u32, x: Var, po: u32) -> bool {
        self.writes[slot as usize]
            .iter()
            .any(|e| e.var == x && e.first_po < po)
    }

    fn apply(&mut self, d: &HistoryDelta) -> bool {
        match *d {
            HistoryDelta::Begin { session, tx } => {
                let slot = self.reads.len() as u32;
                if self.index.len() <= tx.0 as usize {
                    self.index.resize(tx.0 as usize + 1, u32::MAX);
                }
                self.index[tx.0 as usize] = slot;
                if self.sessions.len() <= session.0 as usize {
                    self.sessions.resize_with(session.0 as usize + 1, Vec::new);
                }
                self.sessions[session.0 as usize].push((tx, slot));
                self.reads.push(Vec::new());
                self.writes.push(Vec::new());
                self.aborted.push(false);
                true
            }
            HistoryDelta::UndoBegin { session, tx } => {
                // By journal LIFO ordering the transaction is the last slot
                // and its log is begin-only (all reads/writes popped).
                if self.sessions[session.0 as usize].pop() != Some((tx, self.len() as u32 - 1)) {
                    return false;
                }
                let reads = self.reads.pop().expect("slot to pop");
                let writes = self.writes.pop().expect("slot to pop");
                self.aborted.pop();
                self.index[tx.0 as usize] = u32::MAX;
                reads.is_empty() && writes.is_empty()
            }
            HistoryDelta::Append { tx, info, po, .. } => {
                let slot = self.index[tx.0 as usize];
                match info {
                    DeltaEventInfo::Read(_) | DeltaEventInfo::Commit => {}
                    DeltaEventInfo::Write(x) => self.note_write(slot, x, po),
                    DeltaEventInfo::Abort => self.aborted[slot as usize] = true,
                }
                true
            }
            HistoryDelta::Pop { tx, info, .. } => {
                let slot = self.index[tx.0 as usize];
                match info {
                    DeltaEventInfo::Read(_) | DeltaEventInfo::Commit => {}
                    DeltaEventInfo::Write(x) => {
                        let Some(k) = self.writes[slot as usize].iter().position(|e| e.var == x)
                        else {
                            return false;
                        };
                        self.writes[slot as usize][k].count -= 1;
                        if self.writes[slot as usize][k].count == 0 {
                            self.writes[slot as usize].remove(k);
                        }
                    }
                    DeltaEventInfo::Abort => self.aborted[slot as usize] = false,
                }
                true
            }
            HistoryDelta::SetWr {
                reader,
                writer,
                var,
                po,
                ..
            } => {
                let slot = self.index[reader.0 as usize];
                if !self.is_internal(slot, var, po) {
                    self.reads[slot as usize].push((var, writer));
                }
                true
            }
            HistoryDelta::UnsetWr {
                reader,
                writer,
                var,
                po,
                ..
            } => {
                let slot = self.index[reader.0 as usize];
                if self.is_internal(slot, var, po) {
                    return true;
                }
                match self.reads[slot as usize]
                    .iter()
                    .rposition(|r| *r == (var, writer))
                {
                    Some(k) => {
                        self.reads[slot as usize].remove(k);
                        true
                    }
                    None => false,
                }
            }
        }
    }
}
