//! Process-wide counters for [`crate::History`] clones.
//!
//! Wall-clock alone is a noisy perf signal; the benchmark harness also
//! records *how many times* the exploration duplicated a history and
//! roughly how many heap bytes those copies moved, so that future perf
//! work has a machine-independent trajectory. The counters are relaxed
//! atomics: negligible next to the cost of the clone they measure, and
//! correct across the parallel exploration workers.

use std::sync::atomic::{AtomicU64, Ordering};

static CLONES: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// Records one history clone of approximately `bytes` heap bytes
/// (called by `History::clone`).
#[inline]
pub(crate) fn record_clone(bytes: usize) {
    CLONES.fetch_add(1, Ordering::Relaxed);
    BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
}

/// `(clones, approximate bytes copied)` since process start or the last
/// [`reset_clone_stats`].
pub fn clone_stats() -> (u64, u64) {
    (
        CLONES.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

/// Resets both clone counters to zero.
pub fn reset_clone_stats() {
    CLONES.store(0, Ordering::Relaxed);
    BYTES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::History;

    #[test]
    fn clone_counters_advance() {
        // Other tests clone concurrently, so only monotonicity is checked.
        let (c0, b0) = clone_stats();
        let h = History::default();
        let _c = h.clone();
        let (c1, b1) = clone_stats();
        assert!(c1 > c0);
        assert!(b1 >= b0);
    }
}
