//! Deterministic test support: random well-formed histories and a
//! structural validator for evidence verdicts.
//!
//! These helpers back the cross-validation suites of this crate and the
//! decomposition property tests of `txdpor-analysis`; they are compiled
//! into the library (std-only, no test-only dependencies) so downstream
//! crates can reuse exactly the same corpus generators.

use crate::axioms;
use crate::check::{EdgeReason, Verdict};
use crate::event::{Event, EventId, EventKind};
use crate::history::History;
use crate::isolation::{IsolationLevel, LevelSpec};
use crate::transaction::{SessionId, TxId};
use crate::value::{Value, Var};

/// A tiny deterministic pseudo-random generator (xorshift), so corpus
/// generation does not need external crates.
#[derive(Clone, Debug)]
pub struct XorShift(pub u64);

impl XorShift {
    /// The next raw 64-bit state.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// A value uniform-ish in `0..n`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Generates a small random history: `n_sessions` sessions, up to
/// `max_tx` transactions each, over `n_vars` variables. Reads pick an
/// arbitrary committed-so-far writer of the variable (or init), so the
/// result is always a well-formed history though not necessarily
/// consistent with any particular level.
pub fn random_history(seed: u64, n_sessions: u32, max_tx: u32, n_vars: u32) -> History {
    let mut rng = XorShift(seed.wrapping_mul(2654435761).wrapping_add(1));
    let mut h = History::new([]);
    let mut next_event = 0u32;
    let mut next_tx = 0u32;
    let mut committed_writers: Vec<(Var, TxId)> = Vec::new();
    let fresh = |next_event: &mut u32| {
        *next_event += 1;
        EventId(*next_event)
    };
    for s in 0..n_sessions {
        let n_tx = 1 + rng.below(max_tx as u64) as u32;
        for idx in 0..n_tx {
            next_tx += 1;
            let tx = TxId(next_tx);
            h.begin_transaction(
                SessionId(s),
                tx,
                idx as usize,
                Event::new(fresh(&mut next_event), EventKind::Begin),
            );
            let n_ops = 1 + rng.below(3);
            let mut wrote: Vec<Var> = Vec::new();
            for _ in 0..n_ops {
                let x = Var(rng.below(n_vars as u64) as u32);
                if rng.below(2) == 0 {
                    // write
                    let v = rng.below(5) as i64;
                    h.append_event(
                        SessionId(s),
                        Event::new(fresh(&mut next_event), EventKind::Write(x, Value::Int(v))),
                    );
                    wrote.push(x);
                } else {
                    // read; external only if not written before in this tx
                    let e = Event::new(fresh(&mut next_event), EventKind::Read(x));
                    let id = e.id;
                    h.append_event(SessionId(s), e);
                    if !wrote.contains(&x) {
                        let candidates: Vec<TxId> = std::iter::once(TxId::INIT)
                            .chain(
                                committed_writers
                                    .iter()
                                    .filter(|(y, _)| *y == x)
                                    .map(|(_, t)| *t),
                            )
                            .collect();
                        let pick = candidates[rng.below(candidates.len() as u64) as usize];
                        h.set_wr(id, pick);
                    }
                }
            }
            h.append_event(
                SessionId(s),
                Event::new(fresh(&mut next_event), EventKind::Commit),
            );
            for x in wrote {
                committed_writers.push((x, tx));
            }
        }
    }
    h
}

/// Draws a random per-transaction level assignment for the history: a
/// random default with roughly half the positions overridden, all seven
/// levels (PC, SI and `true` included) in the pool.
pub fn random_spec(seed: u64, h: &History) -> LevelSpec {
    let mut rng = XorShift(seed.wrapping_mul(0x9e3779b9).wrapping_add(0xabcdef));
    let n = IsolationLevel::ALL.len() as u64;
    let default = IsolationLevel::ALL[rng.below(n) as usize];
    let mut spec = LevelSpec::uniform(default);
    for (sid, txs) in h.sessions() {
        for k in 0..txs.len() {
            if rng.below(2) == 0 {
                let l = IsolationLevel::ALL[rng.below(n) as usize];
                spec = spec.with_override(sid.0, k as u32, l);
            }
        }
    }
    spec
}

/// Validates an evidence verdict against the history it was produced
/// for: the witness must replay through the axiom-level oracle, the
/// violation cycle must be closed, simple, built from edges that
/// really exist (or axiom instances that really apply), and minimal —
/// dropping any single edge leaves the remaining edge set acyclic.
///
/// # Panics
///
/// Panics (with `ctx` in the message) on any structural defect.
pub fn assert_verdict_valid(
    h: &History,
    spec: &LevelSpec,
    verdict: &Verdict,
    expected: bool,
    ctx: &str,
) {
    match verdict {
        Verdict::Consistent(w) => {
            assert!(expected, "witness produced for an inconsistent {ctx}");
            assert!(
                w.replays(h, spec),
                "witness fails to replay for {ctx}: {w}\n{h}"
            );
        }
        Verdict::Inconsistent(v) => {
            assert!(!expected, "violation produced for a consistent {ctx}");
            assert!(!v.cycle.is_empty(), "empty violation cycle for {ctx}");
            let mut seen = std::collections::BTreeSet::new();
            for (k, e) in v.cycle.iter().enumerate() {
                let next = &v.cycle[(k + 1) % v.cycle.len()];
                assert_eq!(e.to, next.from, "cycle not closed for {ctx}: {v}");
                assert!(seen.insert(e.from), "cycle not simple for {ctx}: {v}");
                match &e.reason {
                    EdgeReason::SessionOrder => {
                        assert!(h.so_before(e.from, e.to), "bogus so edge for {ctx}: {v}");
                    }
                    EdgeReason::WriteRead => {
                        assert!(h.wr_tx_edge(e.from, e.to), "bogus wr edge for {ctx}: {v}");
                    }
                    EdgeReason::Forced(i) => {
                        assert!(
                            h.reads_from().iter().any(|(t3, _, x, t1)| *t3 == i.reader
                                && *x == i.var
                                && *t1 == i.source),
                            "axiom instance cites a non-existent read for {ctx}: {v}"
                        );
                        assert!(
                            h.writes_var(i.writer, i.var),
                            "axiom instance cites a non-writer for {ctx}: {v}"
                        );
                        assert!(
                            axioms::axioms_for(spec.level_of_tx(h, i.reader)).contains(&i.axiom),
                            "axiom instance outside the reader's level for {ctx}: {v}"
                        );
                    }
                    EdgeReason::Hypothesis => {
                        panic!("hypothesis edge on the committed corpus for {ctx}: {v}")
                    }
                }
            }
            // Minimality: dropping any one edge leaves an edge set with
            // no cycle at all (no vertex reaches itself).
            for drop in 0..v.cycle.len() {
                let rest: Vec<(TxId, TxId)> = v
                    .cycle
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| *k != drop)
                    .map(|(_, e)| (e.from, e.to))
                    .collect();
                for &(start, _) in &rest {
                    let mut frontier: Vec<TxId> = vec![start];
                    let mut reached = std::collections::BTreeSet::new();
                    while let Some(t) = frontier.pop() {
                        for &(a, b) in &rest {
                            if a == t && reached.insert(b) {
                                frontier.push(b);
                                assert_ne!(
                                    b, start,
                                    "cycle not minimal for {ctx}: \
                                     dropping edge {drop} leaves a cycle: {v}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
