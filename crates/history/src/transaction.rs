//! Transaction logs: sequences of events issued by one transaction.
//!
//! A transaction log `⟨t, E, po_t⟩` is an identifier together with a finite
//! set of events and a strict total order on them, the *program order*
//! (§2.2.1). We represent the program order implicitly by the order of the
//! `events` vector.

use std::collections::BTreeMap;
use std::fmt;

use crate::event::{Event, EventId, EventKind};
use crate::value::{Value, Var};

/// Identifier of a transaction log.
///
/// [`TxId::INIT`] is reserved for the distinguished transaction writing the
/// initial values of all global variables.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId(pub u32);

impl TxId {
    /// The distinguished initial transaction, `so`-before every other
    /// transaction and writing the initial value of every global variable.
    pub const INIT: TxId = TxId(0);

    /// Whether this is the initial transaction.
    pub fn is_init(self) -> bool {
        self == TxId::INIT
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_init() {
            write!(f, "init")
        } else {
            write!(f, "t{}", self.0)
        }
    }
}

/// Identifier of a session (a sequential connection to the store).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u32);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Completion status of a transaction log.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum TxStatus {
    /// Neither a commit nor an abort event is present.
    Pending,
    /// The log ends with a commit event.
    Committed,
    /// The log ends with an abort event.
    Aborted,
}

/// A transaction log: its identifier, owning session, position of the
/// transaction within the program text of its session, and the events it
/// has issued so far (in program order).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TransactionLog {
    /// Identifier of the transaction.
    pub id: TxId,
    /// Session that issued the transaction.
    pub session: SessionId,
    /// Index of this transaction within its session's program text. Used to
    /// define the oracle order of the exploration algorithm.
    pub program_index: usize,
    /// Events issued by the transaction, in program order.
    pub events: Vec<Event>,
}

impl TransactionLog {
    /// Creates an empty transaction log.
    pub fn new(id: TxId, session: SessionId, program_index: usize) -> Self {
        TransactionLog {
            id,
            session,
            program_index,
            events: Vec::new(),
        }
    }

    /// Appends an event as the maximal element of the program order.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the log is already complete.
    pub fn push(&mut self, event: Event) {
        debug_assert!(
            self.status() == TxStatus::Pending,
            "cannot extend a complete transaction log"
        );
        self.events.push(event);
    }

    /// Completion status of the log.
    pub fn status(&self) -> TxStatus {
        match self.events.last().map(|e| &e.kind) {
            Some(EventKind::Commit) => TxStatus::Committed,
            Some(EventKind::Abort) => TxStatus::Aborted,
            _ => TxStatus::Pending,
        }
    }

    /// Whether the log is pending (no commit/abort yet).
    pub fn is_pending(&self) -> bool {
        self.status() == TxStatus::Pending
    }

    /// Whether the log is committed.
    pub fn is_committed(&self) -> bool {
        self.status() == TxStatus::Committed
    }

    /// Whether the log is aborted.
    pub fn is_aborted(&self) -> bool {
        self.status() == TxStatus::Aborted
    }

    /// Whether the log is complete (committed or aborted).
    pub fn is_complete(&self) -> bool {
        !self.is_pending()
    }

    /// The *external* reads of the transaction: `read(x)` events that are
    /// not preceded by a write to `x` in program order (`reads(t)` in §2.2.1).
    pub fn external_reads(&self) -> Vec<&Event> {
        let mut written: Vec<Var> = Vec::new();
        let mut out = Vec::new();
        for e in &self.events {
            match &e.kind {
                EventKind::Read(x) if !written.contains(x) => out.push(e),
                EventKind::Write(x, _) if !written.contains(x) => written.push(*x),
                _ => {}
            }
        }
        out
    }

    /// Whether the given read event of this transaction is *internal*, i.e.
    /// preceded in program order by a write to the same variable.
    pub fn is_internal_read(&self, read: EventId) -> bool {
        let mut written: Vec<Var> = Vec::new();
        for e in &self.events {
            match &e.kind {
                EventKind::Read(x) if e.id == read => return written.contains(x),
                EventKind::Write(x, _) if !written.contains(x) => written.push(*x),
                _ => {}
            }
        }
        false
    }

    /// The *visible* writes of the transaction (`writes(t)` in §2.2.1): for
    /// each variable, the last write in program order, unless the transaction
    /// aborted, in which case the set is empty.
    pub fn visible_writes(&self) -> BTreeMap<Var, &Event> {
        if self.is_aborted() {
            return BTreeMap::new();
        }
        let mut map = BTreeMap::new();
        for e in &self.events {
            if let EventKind::Write(x, _) = &e.kind {
                map.insert(*x, e);
            }
        }
        map
    }

    /// Whether the transaction *writes* `x`: its visible-write set contains a
    /// write to `x`.
    pub fn writes_var(&self, x: Var) -> bool {
        if self.is_aborted() {
            return false;
        }
        self.events
            .iter()
            .any(|e| matches!(&e.kind, EventKind::Write(y, _) if *y == x))
    }

    /// The value of the transaction's visible write to `x`, if any.
    pub fn visible_write_value(&self, x: Var) -> Option<&Value> {
        if self.is_aborted() {
            return None;
        }
        self.events.iter().rev().find_map(|e| match &e.kind {
            EventKind::Write(y, v) if *y == x => Some(v),
            _ => None,
        })
    }

    /// The value written by the last write to `x` strictly before `before`
    /// in program order (used to resolve internal reads).
    pub fn last_write_before(&self, x: Var, before: EventId) -> Option<&Value> {
        let mut last = None;
        for e in &self.events {
            if e.id == before {
                break;
            }
            if let EventKind::Write(y, v) = &e.kind {
                if *y == x {
                    last = Some(v);
                }
            }
        }
        last
    }

    /// Whether the log contains the given event.
    pub fn contains_event(&self, id: EventId) -> bool {
        self.events.iter().any(|e| e.id == id)
    }

    /// Returns the event with the given identifier, if present.
    pub fn event(&self, id: EventId) -> Option<&Event> {
        self.events.iter().find(|e| e.id == id)
    }

    /// Position of an event in the program order of this log.
    pub fn po_position(&self, id: EventId) -> Option<usize> {
        self.events.iter().position(|e| e.id == id)
    }

    /// Whether `a` is strictly before `b` in the program order of this log.
    pub fn po_before(&self, a: EventId, b: EventId) -> bool {
        match (self.po_position(a), self.po_position(b)) {
            (Some(i), Some(j)) => i < j,
            _ => false,
        }
    }

    /// Read events of the log (internal and external).
    pub fn read_events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(|e| e.kind.is_read())
    }

    /// Write events of the log.
    pub fn write_events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(|e| e.kind.is_write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u32, kind: EventKind) -> Event {
        Event::new(EventId(id), kind)
    }

    fn sample_log() -> TransactionLog {
        let mut t = TransactionLog::new(TxId(1), SessionId(0), 0);
        t.push(ev(0, EventKind::Begin));
        t.push(ev(1, EventKind::Read(Var(0))));
        t.push(ev(2, EventKind::Write(Var(0), Value::Int(1))));
        t.push(ev(3, EventKind::Read(Var(0))));
        t.push(ev(4, EventKind::Write(Var(1), Value::Int(2))));
        t.push(ev(5, EventKind::Write(Var(1), Value::Int(3))));
        t
    }

    #[test]
    fn status_transitions() {
        let mut t = sample_log();
        assert!(t.is_pending());
        t.push(ev(6, EventKind::Commit));
        assert!(t.is_committed());
        assert!(t.is_complete());
        assert!(!t.is_aborted());
    }

    #[test]
    fn external_reads_ignore_internal() {
        let t = sample_log();
        let ext: Vec<EventId> = t.external_reads().iter().map(|e| e.id).collect();
        // The read at e3 follows a write to x0 in po and is internal.
        assert_eq!(ext, vec![EventId(1)]);
        assert!(t.is_internal_read(EventId(3)));
        assert!(!t.is_internal_read(EventId(1)));
    }

    #[test]
    fn visible_writes_keep_last_per_var() {
        let mut t = sample_log();
        t.push(ev(6, EventKind::Commit));
        let w = t.visible_writes();
        assert_eq!(w.len(), 2);
        assert_eq!(w[&Var(0)].id, EventId(2));
        assert_eq!(w[&Var(1)].id, EventId(5));
        assert_eq!(t.visible_write_value(Var(1)), Some(&Value::Int(3)));
        assert!(t.writes_var(Var(0)));
        assert!(!t.writes_var(Var(7)));
    }

    #[test]
    fn aborted_transaction_has_no_visible_writes() {
        let mut t = sample_log();
        t.push(ev(6, EventKind::Abort));
        assert!(t.is_aborted());
        assert!(t.visible_writes().is_empty());
        assert!(!t.writes_var(Var(0)));
        assert_eq!(t.visible_write_value(Var(0)), None);
    }

    #[test]
    fn last_write_before_resolves_internal_reads() {
        let t = sample_log();
        assert_eq!(
            t.last_write_before(Var(0), EventId(3)),
            Some(&Value::Int(1))
        );
        assert_eq!(t.last_write_before(Var(0), EventId(1)), None);
        assert_eq!(t.last_write_before(Var(1), EventId(3)), None);
    }

    #[test]
    fn po_ordering_queries() {
        let t = sample_log();
        assert!(t.po_before(EventId(1), EventId(3)));
        assert!(!t.po_before(EventId(3), EventId(1)));
        assert!(!t.po_before(EventId(1), EventId(99)));
        assert_eq!(t.po_position(EventId(4)), Some(4));
        assert!(t.contains_event(EventId(5)));
        assert!(!t.contains_event(EventId(50)));
        assert_eq!(
            t.event(EventId(2)).unwrap().kind,
            EventKind::Write(Var(0), Value::Int(1))
        );
    }

    #[test]
    fn init_txid_display() {
        assert_eq!(TxId::INIT.to_string(), "init");
        assert_eq!(TxId(3).to_string(), "t3");
        assert_eq!(SessionId(2).to_string(), "s2");
        assert!(TxId::INIT.is_init());
        assert!(!TxId(1).is_init());
    }

    #[test]
    fn iterators_over_events() {
        let t = sample_log();
        assert_eq!(t.read_events().count(), 2);
        assert_eq!(t.write_events().count(), 3);
    }
}
