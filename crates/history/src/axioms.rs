//! The axiomatic framework of Biswas & Enea used to define isolation levels
//! (§2.2.2, Fig. 2 and Fig. A.1), together with a slow reference *oracle*
//! checker that enumerates commit orders directly.
//!
//! Every axiom is a first-order formula of the shape
//!
//! ```text
//! ∀x. ∀t1 ≠ t2. ∀α.  ⟨t1, α⟩ ∈ wr_x ∧ t2 writes x ∧ φ(t2, α)  ⇒  ⟨t2, t1⟩ ∈ co
//! ```
//!
//! where `α` is a read event, `t1` the transaction it reads from, and `φ`
//! varies per axiom. The efficient checkers live in [`crate::check`]; the
//! functions here are used by tests and property-based cross-validation.

use std::collections::BTreeMap;

use crate::event::EventId;
use crate::history::History;
use crate::isolation::{IsolationLevel, LevelSpec};
use crate::relations::Digraph;
use crate::transaction::TxId;
use crate::value::Var;

/// One axiom of the framework.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Axiom {
    /// Read Committed: `φ(t2, α) := ⟨t2, α⟩ ∈ wr ∘ po`.
    ReadCommitted,
    /// Read Atomic: `φ(t2, α) := ⟨t2, tr(α)⟩ ∈ so ∪ wr`.
    ReadAtomic,
    /// Causal Consistency: `φ(t2, α) := ⟨t2, tr(α)⟩ ∈ (so ∪ wr)⁺`.
    Causal,
    /// Prefix (half of Snapshot Isolation):
    /// `φ(t2, α) := ⟨t2, tr(α)⟩ ∈ co* ∘ (so ∪ wr)`.
    Prefix,
    /// Conflict (half of Snapshot Isolation): `φ(t2, α)` holds when there is
    /// a transaction `t4` and a variable `y` such that both `t4` and `tr(α)`
    /// write `y`, `⟨t2, t4⟩ ∈ co*` and `⟨t4, tr(α)⟩ ∈ co`.
    Conflict,
    /// Serializability: `φ(t2, α) := ⟨t2, tr(α)⟩ ∈ co`.
    Serializability,
}

/// The axioms defining each isolation level.
pub fn axioms_for(level: IsolationLevel) -> &'static [Axiom] {
    match level {
        IsolationLevel::Trivial => &[],
        IsolationLevel::ReadCommitted => &[Axiom::ReadCommitted],
        IsolationLevel::ReadAtomic => &[Axiom::ReadAtomic],
        IsolationLevel::CausalConsistency => &[Axiom::Causal],
        IsolationLevel::PrefixConsistency => &[Axiom::Prefix],
        IsolationLevel::SnapshotIsolation => &[Axiom::Prefix, Axiom::Conflict],
        IsolationLevel::Serializability => &[Axiom::Serializability],
    }
}

/// A candidate commit order: a strict total order over the transactions of a
/// history, represented by the position of each transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitOrder {
    pos: BTreeMap<TxId, usize>,
}

impl CommitOrder {
    /// Builds a commit order from a sequence of transactions (first =
    /// smallest).
    pub fn from_sequence(seq: &[TxId]) -> Self {
        CommitOrder {
            pos: seq.iter().enumerate().map(|(i, t)| (*t, i)).collect(),
        }
    }

    /// Whether `a` is strictly before `b`.
    pub fn before(&self, a: TxId, b: TxId) -> bool {
        match (self.pos.get(&a), self.pos.get(&b)) {
            (Some(i), Some(j)) => i < j,
            _ => false,
        }
    }

    /// Whether `a` is before `b` or equal to it (`co*`).
    pub fn before_eq(&self, a: TxId, b: TxId) -> bool {
        a == b || self.before(a, b)
    }

    /// Number of ordered transactions.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// Whether the order is empty.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }
}

/// Whether `φ_axiom(t2, α)` holds in `h` under commit order `co`, where the
/// read `α` belongs to `t3` and reads variable `x`.
fn premise_holds(
    axiom: Axiom,
    h: &History,
    co: &CommitOrder,
    t3: TxId,
    alpha: EventId,
    _x: Var,
    t2: TxId,
) -> bool {
    match axiom {
        Axiom::ReadCommitted => {
            // ∃ read c in t3, po-before α, reading from t2.
            let Some(log) = h.get_tx(t3) else {
                return false;
            };
            log.read_events()
                .filter(|c| log.po_before(c.id, alpha))
                .any(|c| h.wr_of(c.id) == Some(t2))
        }
        Axiom::ReadAtomic => h.so_or_wr(t2, t3),
        Axiom::Causal => h.causally_before(t2, t3),
        Axiom::Serializability => co.before(t2, t3),
        Axiom::Prefix => {
            // ∃ t4. ⟨t2, t4⟩ ∈ co* ∧ ⟨t4, t3⟩ ∈ so ∪ wr
            all_txs(h).any(|t4| co.before_eq(t2, t4) && h.so_or_wr(t4, t3))
        }
        Axiom::Conflict => {
            // ∃ t4, y. t3 writes y ∧ t4 writes y ∧ ⟨t2, t4⟩ ∈ co* ∧ ⟨t4, t3⟩ ∈ co
            let Some(log3) = h.get_tx(t3) else {
                return false;
            };
            let written: Vec<Var> = log3.visible_writes().keys().copied().collect();
            if written.is_empty() {
                return false;
            }
            all_txs(h).any(|t4| {
                co.before_eq(t2, t4)
                    && co.before(t4, t3)
                    && written.iter().any(|y| h.writes_var(t4, *y))
            })
        }
    }
}

/// All transactions of a history, init first.
fn all_txs(h: &History) -> impl Iterator<Item = TxId> + '_ {
    std::iter::once(TxId::INIT).chain(h.tx_ids())
}

/// Whether the given commit order satisfies all axioms of `level` for `h`.
/// Does not verify that the order extends `so ∪ wr`; see
/// [`check_with_order`] for the full witness check.
pub fn axioms_hold(h: &History, level: IsolationLevel, co: &CommitOrder) -> bool {
    axioms_hold_spec(h, &LevelSpec::uniform(level), co)
}

/// Mixed-level generalisation of [`axioms_hold`]: every read is checked
/// against the axioms of *its reader's* level, as assigned by the spec.
pub fn axioms_hold_spec(h: &History, spec: &LevelSpec, co: &CommitOrder) -> bool {
    for (t3, alpha, x, t1) in h.reads_from() {
        let axioms = axioms_for(spec.level_of_tx(h, t3));
        if axioms.is_empty() {
            continue;
        }
        for t2 in h.writers_of(x) {
            if t2 == t1 {
                continue;
            }
            for ax in axioms {
                if premise_holds(*ax, h, co, t3, alpha, x, t2) && !co.before(t2, t1) {
                    return false;
                }
            }
        }
    }
    true
}

/// Whether `order` is a valid witness that `h` satisfies `level`: it is a
/// permutation of all transactions of `h` (init included) that extends
/// `so ∪ wr` and satisfies the level's axioms.
pub fn check_with_order(h: &History, level: IsolationLevel, order: &[TxId]) -> bool {
    check_with_order_spec(h, &LevelSpec::uniform(level), order)
}

/// Mixed-level generalisation of [`check_with_order`]: whether `order` is a
/// valid witness that `h` satisfies `spec` — a permutation of all
/// transactions of `h` (init included) that extends `so ∪ wr` and satisfies
/// the axioms of every reader's assigned level.
pub fn check_with_order_spec(h: &History, spec: &LevelSpec, order: &[TxId]) -> bool {
    let co = CommitOrder::from_sequence(order);
    if co.len() != h.num_transactions() + 1 {
        return false;
    }
    for t in all_txs(h) {
        if !co.pos.contains_key(&t) {
            return false;
        }
    }
    // co must extend session order and the write-read relation.
    for a in all_txs(h) {
        for b in all_txs(h) {
            if a != b && (h.so_before(a, b) || h.wr_tx_edge(a, b)) && !co.before(a, b) {
                return false;
            }
        }
    }
    axioms_hold_spec(h, spec, &co)
}

/// Slow reference checker: enumerates every total order extending
/// `so ∪ wr` and tests the axioms directly (Definition 2.2). Exponential;
/// only meant for small histories in tests and cross-validation.
pub fn oracle_satisfies(h: &History, level: IsolationLevel) -> bool {
    if matches!(level, IsolationLevel::Trivial) {
        return true;
    }
    oracle_satisfies_spec(h, &LevelSpec::uniform(level))
}

/// Mixed-level reference checker: enumerates every total order extending
/// `so ∪ wr` and tests the per-reader axioms ([`axioms_hold_spec`])
/// directly. Exponential; only meant for small histories in tests and
/// cross-validation of the operational mixed checker
/// ([`crate::check::satisfies_spec`]).
pub fn oracle_satisfies_spec(h: &History, spec: &LevelSpec) -> bool {
    let txs: Vec<TxId> = all_txs(h).collect();
    let index: BTreeMap<TxId, usize> = txs.iter().enumerate().map(|(i, t)| (*t, i)).collect();
    let mut g = Digraph::new(txs.len());
    for (i, a) in txs.iter().enumerate() {
        for (j, b) in txs.iter().enumerate() {
            if i != j && (h.so_before(*a, *b) || h.wr_tx_edge(*a, *b)) {
                g.add_edge(index[a], index[b]);
            }
        }
    }
    g.any_topological_order(|order| {
        let seq: Vec<TxId> = order.iter().map(|i| txs[*i]).collect();
        axioms_hold_spec(h, spec, &CommitOrder::from_sequence(&seq))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};
    use crate::transaction::SessionId;
    use crate::value::Value;

    struct Builder {
        h: History,
        next_event: u32,
        next_tx: u32,
    }

    impl Builder {
        fn new() -> Self {
            Builder {
                h: History::new([]),
                next_event: 0,
                next_tx: 0,
            }
        }
        fn fresh(&mut self) -> EventId {
            self.next_event += 1;
            EventId(self.next_event)
        }
        fn begin(&mut self, s: u32) -> TxId {
            self.next_tx += 1;
            let id = TxId(self.next_tx);
            let idx = self.h.session_txs(SessionId(s)).len();
            let e = Event::new(self.fresh(), EventKind::Begin);
            self.h.begin_transaction(SessionId(s), id, idx, e);
            id
        }
        fn write(&mut self, s: u32, x: Var, v: i64) {
            let e = Event::new(self.fresh(), EventKind::Write(x, Value::Int(v)));
            self.h.append_event(SessionId(s), e);
        }
        fn read(&mut self, s: u32, x: Var, from: TxId) {
            let e = Event::new(self.fresh(), EventKind::Read(x));
            let id = e.id;
            self.h.append_event(SessionId(s), e);
            self.h.set_wr(id, from);
        }
        fn commit(&mut self, s: u32) {
            let e = Event::new(self.fresh(), EventKind::Commit);
            self.h.append_event(SessionId(s), e);
        }
    }

    /// Fig. 3: a Causal Consistency violation.
    fn fig3() -> History {
        let (x, y) = (Var(0), Var(1));
        let mut b = Builder::new();
        let t1 = b.begin(0);
        b.write(0, x, 1);
        b.commit(0);
        let t2 = b.begin(1);
        b.read(1, x, t1);
        b.write(1, x, 2);
        b.commit(1);
        let t4 = b.begin(2);
        b.read(2, x, t2);
        b.write(2, y, 1);
        b.commit(2);
        let _t3 = b.begin(3);
        b.read(3, x, t1);
        b.read(3, y, t4);
        b.commit(3);
        b.h
    }

    /// Lost update: both transactions read x from init and write it.
    fn lost_update() -> History {
        let x = Var(0);
        let mut b = Builder::new();
        b.begin(0);
        b.read(0, x, TxId::INIT);
        b.write(0, x, 1);
        b.commit(0);
        b.begin(1);
        b.read(1, x, TxId::INIT);
        b.write(1, x, 2);
        b.commit(1);
        b.h
    }

    /// Write skew: t1 reads x, writes y; t2 reads y, writes x; both read init.
    fn write_skew() -> History {
        let (x, y) = (Var(0), Var(1));
        let mut b = Builder::new();
        b.begin(0);
        b.read(0, x, TxId::INIT);
        b.write(0, y, 1);
        b.commit(0);
        b.begin(1);
        b.read(1, y, TxId::INIT);
        b.write(1, x, 1);
        b.commit(1);
        b.h
    }

    #[test]
    fn fig3_violates_cc_but_not_rc_ra() {
        let h = fig3();
        assert!(!oracle_satisfies(&h, IsolationLevel::CausalConsistency));
        assert!(oracle_satisfies(&h, IsolationLevel::ReadAtomic));
        assert!(oracle_satisfies(&h, IsolationLevel::ReadCommitted));
        assert!(!oracle_satisfies(&h, IsolationLevel::Serializability));
        assert!(!oracle_satisfies(&h, IsolationLevel::SnapshotIsolation));
        assert!(oracle_satisfies(&h, IsolationLevel::Trivial));
    }

    #[test]
    fn lost_update_allowed_by_cc_rejected_by_si_ser() {
        let h = lost_update();
        assert!(oracle_satisfies(&h, IsolationLevel::CausalConsistency));
        assert!(oracle_satisfies(&h, IsolationLevel::ReadAtomic));
        assert!(!oracle_satisfies(&h, IsolationLevel::SnapshotIsolation));
        assert!(!oracle_satisfies(&h, IsolationLevel::Serializability));
        // Without the Conflict axiom the concurrent writes are fine: lost
        // update separates PC from SI.
        assert!(oracle_satisfies(&h, IsolationLevel::PrefixConsistency));
    }

    #[test]
    fn write_skew_allowed_by_si_rejected_by_ser() {
        let h = write_skew();
        assert!(oracle_satisfies(&h, IsolationLevel::SnapshotIsolation));
        assert!(oracle_satisfies(&h, IsolationLevel::PrefixConsistency));
        assert!(oracle_satisfies(&h, IsolationLevel::CausalConsistency));
        assert!(!oracle_satisfies(&h, IsolationLevel::Serializability));
    }

    #[test]
    fn witness_check_requires_so_wr_extension() {
        let h = lost_update();
        // Valid serialization order exists for CC but the reversed init order
        // is not a witness.
        let bad = [TxId(1), TxId(2), TxId::INIT];
        assert!(!check_with_order(
            &h,
            IsolationLevel::CausalConsistency,
            &bad
        ));
        let good = [TxId::INIT, TxId(1), TxId(2)];
        assert!(check_with_order(
            &h,
            IsolationLevel::CausalConsistency,
            &good
        ));
        // Missing transactions are rejected.
        assert!(!check_with_order(
            &h,
            IsolationLevel::CausalConsistency,
            &[TxId::INIT]
        ));
    }

    #[test]
    fn axioms_for_levels() {
        assert_eq!(axioms_for(IsolationLevel::Trivial).len(), 0);
        assert_eq!(axioms_for(IsolationLevel::SnapshotIsolation).len(), 2);
        assert_eq!(
            axioms_for(IsolationLevel::PrefixConsistency),
            &[Axiom::Prefix]
        );
        assert_eq!(
            axioms_for(IsolationLevel::Serializability),
            &[Axiom::Serializability]
        );
    }

    #[test]
    fn commit_order_basics() {
        let co = CommitOrder::from_sequence(&[TxId::INIT, TxId(1), TxId(2)]);
        assert!(co.before(TxId::INIT, TxId(2)));
        assert!(!co.before(TxId(2), TxId(1)));
        assert!(co.before_eq(TxId(1), TxId(1)));
        assert!(!co.before(TxId(1), TxId(9)));
        assert_eq!(co.len(), 3);
        assert!(!co.is_empty());
    }
}
