//! Dense, direct-indexed containers backing the flat [`crate::History`]
//! arena.
//!
//! The exploration engines allocate transaction, event and session
//! identifiers contiguously from zero (per exploration branch), so the
//! classic map-shaped relations of a history — `wr`, `event ↦ owner`,
//! `session ↦ transactions` — are stored as plain vectors indexed by the
//! raw `u32` id. Lookups are a bounds check and a load; cloning is a
//! handful of `memcpy`s; absent entries are an inline sentinel instead of
//! a tree node. Sparse ids (hand-built histories in tests) still work:
//! the vectors simply grow to the largest id used.

use crate::transaction::TxId;

/// Sentinel for an absent entry in an [`IdMap`].
pub(crate) const NONE: u32 = u32::MAX;

/// A direct-indexed map from a `u32` identifier to a `u32` value, with an
/// inline [`NONE`] sentinel for absent entries and an O(1) entry count.
#[derive(Clone, Debug, Default)]
pub(crate) struct IdMap {
    slots: Vec<u32>,
    len: u32,
}

impl IdMap {
    /// The value stored for `id`, if any.
    #[inline]
    pub fn get(&self, id: u32) -> Option<u32> {
        match self.slots.get(id as usize) {
            Some(&v) if v != NONE => Some(v),
            _ => None,
        }
    }

    /// Stores `value` for `id`, growing the map as needed; returns the
    /// previous value.
    #[inline]
    pub fn set(&mut self, id: u32, value: u32) -> Option<u32> {
        debug_assert_ne!(value, NONE, "NONE is reserved as the absence sentinel");
        if id as usize >= self.slots.len() {
            self.slots.resize(id as usize + 1, NONE);
        }
        let prev = std::mem::replace(&mut self.slots[id as usize], value);
        if prev == NONE {
            self.len += 1;
            None
        } else {
            Some(prev)
        }
    }

    /// Removes the entry for `id`, returning the previous value.
    #[inline]
    pub fn clear(&mut self, id: u32) -> Option<u32> {
        match self.slots.get_mut(id as usize) {
            Some(slot) if *slot != NONE => {
                let prev = std::mem::replace(slot, NONE);
                self.len -= 1;
                Some(prev)
            }
            _ => None,
        }
    }

    /// Number of present entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Present `(id, value)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, v)| **v != NONE)
            .map(|(i, v)| (i as u32, *v))
    }

    /// Approximate heap footprint in bytes (for the clone counters).
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<u32>()
    }
}

/// A bitset over transaction identifiers (`TxId.0`), used to answer many
/// causal-reachability queries against the same pivot transaction with one
/// BFS instead of one BFS per query.
#[derive(Clone, Debug, Default)]
pub struct TxSet {
    words: Vec<u64>,
}

impl TxSet {
    /// An empty set able to hold ids up to `max_id`.
    pub fn with_capacity(max_id: u32) -> Self {
        TxSet {
            words: vec![0; max_id as usize / 64 + 1],
        }
    }

    /// Inserts a transaction; returns whether it was newly inserted.
    #[inline]
    pub fn insert(&mut self, t: TxId) -> bool {
        let (w, b) = (t.0 as usize / 64, t.0 % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Whether the set contains `t`.
    #[inline]
    pub fn contains(&self, t: TxId) -> bool {
        self.words
            .get(t.0 as usize / 64)
            .is_some_and(|w| w & (1 << (t.0 % 64)) != 0)
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idmap_roundtrip() {
        let mut m = IdMap::default();
        assert_eq!(m.get(3), None);
        assert_eq!(m.set(3, 7), None);
        assert_eq!(m.get(3), Some(7));
        assert_eq!(m.len(), 1);
        assert_eq!(m.set(3, 8), Some(7));
        assert_eq!(m.len(), 1);
        assert_eq!(m.set(0, 1), None);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![(0, 1), (3, 8)]);
        assert_eq!(m.clear(3), Some(8));
        assert_eq!(m.clear(3), None);
        assert_eq!(m.len(), 1);
        assert!(m.heap_bytes() >= 4 * 4);
    }

    #[test]
    fn txset_membership() {
        let mut s = TxSet::with_capacity(4);
        assert!(s.is_empty());
        assert!(s.insert(TxId(2)));
        assert!(!s.insert(TxId(2)));
        assert!(s.insert(TxId(100)));
        assert!(s.contains(TxId(2)) && s.contains(TxId(100)));
        assert!(!s.contains(TxId(3)));
        assert!(!s.is_empty());
    }
}
