//! Histories: the abstract representation of an execution's interaction
//! with the database (Definition 2.1).
//!
//! A history is a set of transaction logs together with a session order
//! `so` and a write-read (read-from) relation `wr` that associates every
//! external read with the transaction it reads from. The distinguished
//! initial transaction [`TxId::INIT`] writes the initial value of every
//! global variable and precedes all other transactions in `so`; it is kept
//! implicit (no explicit transaction log) which matches the paper's
//! treatment of `init` in figures.
//!
//! # Representation
//!
//! The history is stored as a flat arena rather than as id-keyed maps: the
//! transaction logs live in one dense vector, and the relations
//! `tx ↦ log`, `tx ↦ session position`, `event ↦ owner` and
//! `event ↦ wr source` are direct-indexed vectors over the raw `u32`
//! identifiers (`crate::arena`). Exploration engines allocate ids
//! contiguously per branch (see [`History::max_event_id`]), so lookups are
//! O(1) loads and cloning a history is a handful of flat copies — the
//! "compact copy" the DPOR sibling expansion relies on.
//!
//! # Undo journal
//!
//! Trial extensions (`ValidWrites`, `readLatest`, the DFS baseline) no
//! longer clone the history: they [`History::checkpoint`] it, mutate it in
//! place through the journaled mutators ([`History::append_event`],
//! [`History::set_wr`], [`History::unset_wr`], [`History::pop_event`],
//! [`History::begin_transaction`]) and [`History::rollback`] to the mark,
//! which restores the history bit-for-bit (asserted by property tests).
//! A rolling structural hash ([`History::live_hash`]) is maintained
//! incrementally across all mutations so that memoised consistency engines
//! obtain their key in O(1) instead of re-walking the history.

use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::arena::{IdMap, TxSet, NONE};
use crate::event::{Event, EventId, EventKind};
use crate::transaction::{SessionId, TransactionLog, TxId};
use crate::value::{Value, Var, VarTable};

/// Prepared coordinates of a read event for repeated wr-candidate trials
/// (see [`History::prepare_wr_trial`]).
#[derive(Copy, Clone, Debug)]
pub struct WrTrial {
    read: EventId,
    reader: TxId,
    var: Var,
    po: u32,
    key: u64,
}

/// A checkpoint of a [`History`], restored by [`History::rollback`].
///
/// Marks are positions in the undo journal; they must be rolled back in
/// LIFO order (rolling back an outer mark discards inner ones).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct HistoryMark {
    journal_len: usize,
}

/// One recorded mutation, undone (in reverse order) by `rollback`.
#[derive(Clone, Debug)]
enum JournalOp {
    /// A `begin_transaction`: the transaction is the last of `session`.
    Begin {
        session: SessionId,
        prev_max_event: u32,
        prev_max_tx: u32,
    },
    /// An `append_event` to the last transaction of `session`.
    Append {
        session: SessionId,
        prev_max_event: u32,
    },
    /// A `pop_event` from the last transaction of `session`; re-pushed on
    /// rollback.
    Pop { session: SessionId, event: Event },
    /// A `set_wr`/`unset_wr` of `read`; `prev` is the raw previous writer
    /// id ([`NONE`] for absent).
    SetWr { read: EventId, prev: u32 },
    /// A `retract_begin`: the begin-only transaction is re-begun on
    /// rollback.
    Retract {
        session: SessionId,
        tx: TxId,
        program_index: usize,
        begin: Event,
    },
}

// ----------------------------------------------------------------------
// Mutation observers: identity, generation and the delta log
// ----------------------------------------------------------------------

/// Source of fresh history identities (see [`History::uid`]).
static NEXT_HISTORY_UID: AtomicU64 = AtomicU64::new(1);

/// Number of mutations retained by the delta log. Observers whose sync
/// generation has been trimmed out of the window fall back to a full
/// rebuild, so the capacity only bounds how far behind an observer may lag
/// while still syncing incrementally (hot loops stay within a handful of
/// mutations).
pub const DELTA_LOG_CAPACITY: usize = 4096;

/// Structural summary of an appended or popped event, carried by
/// [`HistoryDelta`] so observers can replay mutations without consulting
/// the history (whose state has moved on by the time they sync). Written
/// values are omitted: no consistency axiom inspects them.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DeltaEventInfo {
    /// A read of the variable (its wr edge, if any, travels separately as
    /// [`HistoryDelta::SetWr`]).
    Read(Var),
    /// A write to the variable.
    Write(Var),
    /// A commit event.
    Commit,
    /// An abort event.
    Abort,
}

impl DeltaEventInfo {
    fn of(kind: &EventKind) -> Option<DeltaEventInfo> {
        match kind {
            EventKind::Read(x) => Some(DeltaEventInfo::Read(*x)),
            EventKind::Write(x, _) => Some(DeltaEventInfo::Write(*x)),
            EventKind::Commit => Some(DeltaEventInfo::Commit),
            EventKind::Abort => Some(DeltaEventInfo::Abort),
            EventKind::Begin => None,
        }
    }
}

/// One observed mutation of a [`History`], as recorded in the drainable
/// delta log (see [`History::deltas_since`]). Each primitive mutator emits
/// exactly one delta; a [`History::rollback`] emits the *inverse* deltas of
/// the operations it undoes, so the log is always a faithful chronological
/// account of the history's evolution. Every delta is self-contained:
/// observers never need to query the history for an entity that a later
/// delta in the same window may have removed again.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HistoryDelta {
    /// A transaction began (its log holds only the begin event).
    Begin {
        /// Session the transaction was appended to.
        session: SessionId,
        /// Identifier of the new transaction.
        tx: TxId,
    },
    /// A `Begin` was rolled back (the transaction is gone again; by journal
    /// LIFO ordering it was the most recently begun live transaction).
    UndoBegin {
        /// Session the transaction was removed from.
        session: SessionId,
        /// Identifier of the removed transaction.
        tx: TxId,
    },
    /// An event was appended to the (pending) transaction `tx`.
    Append {
        /// Owning transaction.
        tx: TxId,
        /// Identifier of the appended event.
        event: EventId,
        /// Structural summary of the event.
        info: DeltaEventInfo,
        /// Program-order position of the event within the transaction log.
        po: u32,
    },
    /// The po-last event of `tx` was popped again.
    Pop {
        /// Owning transaction.
        tx: TxId,
        /// Identifier of the popped event.
        event: EventId,
        /// Structural summary of the event.
        info: DeltaEventInfo,
        /// Program-order position the event had within the transaction log.
        po: u32,
    },
    /// The read acquired a wr dependency on `writer` (it had none before; a
    /// replacement is logged as an `UnsetWr` followed by a `SetWr`).
    SetWr {
        /// The read event.
        read: EventId,
        /// Transaction owning the read.
        reader: TxId,
        /// Transaction the read now reads from.
        writer: TxId,
        /// Variable being read.
        var: Var,
        /// Program-order position of the read within its transaction log.
        po: u32,
    },
    /// The read's wr dependency on `writer` was removed.
    UnsetWr {
        /// The read event.
        read: EventId,
        /// Transaction owning the read.
        reader: TxId,
        /// Transaction the read used to read from.
        writer: TxId,
        /// Variable being read.
        var: Var,
        /// Program-order position of the read within its transaction log.
        po: u32,
    },
}

/// A history `⟨T, so, wr⟩` (Definition 2.1).
#[derive(Debug)]
pub struct History {
    /// Initial values of global variables, written by the implicit `init`
    /// transaction, sorted by variable. Variables absent from the list
    /// have value `Value::Int(0)`.
    init_values: Vec<(Var, Value)>,
    /// Transaction-log arena, in allocation order.
    logs: Vec<TransactionLog>,
    /// `TxId.0 ↦` index into `logs`.
    tx_slot: IdMap,
    /// `TxId.0 ↦` position of the transaction within its session.
    tx_sidx: IdMap,
    /// `SessionId.0 ↦` the session's transaction sequence (session order).
    sessions: Vec<Vec<TxId>>,
    /// Write-read relation: `EventId.0 ↦` writer `TxId.0`.
    wr: IdMap,
    /// Reverse index: `EventId.0 ↦` owning `TxId.0` (excludes `init`).
    owner: IdMap,
    /// Number of pending (incomplete) transactions.
    pending: u32,
    /// Largest transaction id ever used in this branch (fresh-id source).
    max_tx_id: u32,
    /// Largest event id ever used in this branch (fresh-id source).
    max_event_id: u32,
    /// Rolling structural hash, updated on every mutation.
    hash: (u64, u64),
    /// Undo journal; only recording while a checkpoint is outstanding.
    journal: Vec<JournalOp>,
    /// Number of outstanding checkpoints.
    journal_depth: u32,
    /// Identity of this history instance (fresh per `new`/`clone`), used by
    /// observers to detect that their sync generation belongs to a
    /// different object.
    uid: u64,
    /// Generation of the oldest delta retained in `deltas`.
    delta_base: u64,
    /// Ring of the most recent mutations (capacity
    /// [`DELTA_LOG_CAPACITY`]); `generation()` = `delta_base + len`.
    deltas: VecDeque<HistoryDelta>,
}

// ----------------------------------------------------------------------
// Rolling-hash helpers
// ----------------------------------------------------------------------

/// Seed of the rolling structural hash. Nonzero so that the common empty
/// history never aliases all-zero slot sentinels in downstream tables
/// (e.g. the consistency engines' direct-mapped memo).
const HASH_SEED: (u64, u64) = (0x9e37_79b9_7f4a_7c15, 0x2545_f491_4f6c_dd1d);

/// Finalising 64-bit mixer (splitmix64).
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Absorbs one word into a running payload hash.
#[inline]
fn fold(h: u64, v: u64) -> u64 {
    mix(h ^ v.wrapping_mul(0xc2b2_ae3d_27d4_eb4f))
}

/// Position key of an event: session, index of its transaction within the
/// session, and program-order position. These coordinates are fixed at
/// push time and never change while the event is live, which is what makes
/// the XOR-composed rolling hash sound under push/pop/set/unset.
#[inline]
fn pos_key(session: u32, sidx: u32, po: u32) -> u64 {
    mix(((session as u64) << 42) ^ ((sidx as u64) << 21) ^ po as u64)
}

/// Canonical writer coordinate used by wr contributions.
#[inline]
fn writer_coord(session: u32, sidx: u32) -> u64 {
    ((session as u64) << 32) | sidx as u64
}

/// 128-bit contribution of a finished payload hash.
#[inline]
fn contrib(p: u64) -> (u64, u64) {
    (
        mix(p ^ 0x243f_6a88_85a3_08d3),
        mix(p ^ 0x1319_8a2e_0370_7344),
    )
}

/// Payload hash of an event (kind, variable, value) at a position key.
fn event_payload(key: u64, kind: &EventKind) -> u64 {
    let mut p = fold(key, 0x5eed);
    match kind {
        EventKind::Begin => p = fold(p, 0),
        EventKind::Commit => p = fold(p, 1),
        EventKind::Abort => p = fold(p, 2),
        EventKind::Write(x, v) => {
            p = fold(p, 3);
            p = fold(p, x.0 as u64);
            match v {
                Value::Int(i) => {
                    p = fold(p, 0);
                    p = fold(p, *i as u64);
                }
                Value::Set(s) => {
                    p = fold(p, 1);
                    p = fold(p, s.len() as u64);
                    for id in s {
                        p = fold(p, *id as u64);
                    }
                }
            }
        }
        EventKind::Read(x) => {
            p = fold(p, 4);
            p = fold(p, x.0 as u64);
        }
    }
    p
}

/// Payload hash of a wr edge at the read's position key.
#[inline]
fn wr_payload(key: u64, coord: u64) -> u64 {
    fold(fold(key, 0x77), coord)
}

#[inline]
fn xor_into(hash: &mut (u64, u64), c: (u64, u64)) {
    hash.0 ^= c.0;
    hash.1 ^= c.1;
}

impl History {
    /// Creates an empty history whose initial transaction writes the given
    /// initial values. Variables not listed default to `0`; a variable
    /// listed several times keeps its last value (map semantics).
    pub fn new<I: IntoIterator<Item = (Var, Value)>>(init_values: I) -> Self {
        let mut init: Vec<(Var, Value)> = Vec::new();
        for (x, v) in init_values {
            match init.binary_search_by_key(&x, |(y, _)| *y) {
                Ok(i) => init[i].1 = v,
                Err(i) => init.insert(i, (x, v)),
            }
        }
        History {
            init_values: init,
            logs: Vec::new(),
            tx_slot: IdMap::default(),
            tx_sidx: IdMap::default(),
            sessions: Vec::new(),
            wr: IdMap::default(),
            owner: IdMap::default(),
            pending: 0,
            max_tx_id: 0,
            max_event_id: 0,
            hash: HASH_SEED,
            journal: Vec::new(),
            journal_depth: 0,
            uid: NEXT_HISTORY_UID.fetch_add(1, Ordering::Relaxed),
            delta_base: 0,
            deltas: VecDeque::new(),
        }
    }

    /// The initial value of a global variable (default `0`).
    pub fn init_value(&self, x: Var) -> Value {
        self.init_values
            .iter()
            .find(|(y, _)| *y == x)
            .map(|(_, v)| v.clone())
            .unwrap_or_default()
    }

    /// Sets the initial value written by the `init` transaction for `x`.
    pub fn set_init_value(&mut self, x: Var, v: Value) {
        match self.init_values.binary_search_by_key(&x, |(y, _)| *y) {
            Ok(i) => self.init_values[i].1 = v,
            Err(i) => self.init_values.insert(i, (x, v)),
        }
    }

    /// All initial values explicitly recorded, sorted by variable.
    pub fn init_values(&self) -> &[(Var, Value)] {
        &self.init_values
    }

    // ------------------------------------------------------------------
    // Structure: transactions, sessions, events
    // ------------------------------------------------------------------

    /// Identifiers of all non-initial transactions, in ascending id order.
    pub fn tx_ids(&self) -> impl Iterator<Item = TxId> + '_ {
        self.tx_slot.iter().map(|(id, _)| TxId(id))
    }

    /// All non-initial transaction logs, in ascending [`TxId`] order.
    pub fn transactions(&self) -> impl Iterator<Item = &TransactionLog> {
        self.tx_slot
            .iter()
            .map(|(_, slot)| &self.logs[slot as usize])
    }

    /// Number of non-initial transactions.
    pub fn num_transactions(&self) -> usize {
        self.tx_slot.len()
    }

    /// Total number of events (excluding the implicit init writes).
    pub fn num_events(&self) -> usize {
        self.owner.len()
    }

    /// Largest transaction id used so far (0 when none); fresh ids for this
    /// exploration branch are allocated as `max_tx_id() + 1`.
    pub fn max_tx_id(&self) -> u32 {
        self.max_tx_id
    }

    /// Largest event id used so far (0 when none); fresh ids for this
    /// exploration branch are allocated as `max_event_id() + 1`.
    pub fn max_event_id(&self) -> u32 {
        self.max_event_id
    }

    /// The transaction log with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is [`TxId::INIT`] or unknown.
    pub fn tx(&self, id: TxId) -> &TransactionLog {
        self.get_tx(id)
            .unwrap_or_else(|| panic!("unknown transaction {id}"))
    }

    /// The transaction log with the given id, if it exists (never for init).
    #[inline]
    pub fn get_tx(&self, id: TxId) -> Option<&TransactionLog> {
        self.tx_slot.get(id.0).map(|slot| &self.logs[slot as usize])
    }

    /// Dense arena index of a transaction (its position in allocation
    /// order), used by the checking engines for direct-indexed scratch
    /// tables.
    #[inline]
    pub fn tx_index(&self, id: TxId) -> Option<usize> {
        self.tx_slot.get(id.0).map(|slot| slot as usize)
    }

    /// Position of a transaction within its session's order.
    #[inline]
    pub fn tx_session_index(&self, id: TxId) -> Option<usize> {
        self.tx_sidx.get(id.0).map(|i| i as usize)
    }

    /// Whether the history contains the given transaction (init always counts).
    pub fn contains_tx(&self, id: TxId) -> bool {
        id.is_init() || self.tx_slot.get(id.0).is_some()
    }

    /// Session order: for each non-empty session (ascending id), its
    /// transaction sequence.
    pub fn sessions(&self) -> impl Iterator<Item = (SessionId, &[TxId])> {
        self.sessions
            .iter()
            .enumerate()
            .filter(|(_, txs)| !txs.is_empty())
            .map(|(s, txs)| (SessionId(s as u32), txs.as_slice()))
    }

    /// Transactions of a session in session order.
    pub fn session_txs(&self, s: SessionId) -> &[TxId] {
        self.sessions
            .get(s.0 as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The last transaction of a session, if the session started any.
    pub fn last_tx_of_session(&self, s: SessionId) -> Option<TxId> {
        self.sessions
            .get(s.0 as usize)
            .and_then(|v| v.last().copied())
    }

    /// Owning transaction of an event.
    #[inline]
    pub fn tx_of_event(&self, e: EventId) -> Option<TxId> {
        self.owner.get(e.0).map(TxId)
    }

    /// The event with the given identifier.
    pub fn event(&self, e: EventId) -> Option<&Event> {
        let tx = self.tx_of_event(e)?;
        self.tx(tx).event(e)
    }

    /// Iterates over all events of the history with their owning
    /// transaction, in ascending transaction-id order.
    pub fn events(&self) -> impl Iterator<Item = (TxId, &Event)> {
        self.transactions()
            .flat_map(|t| t.events.iter().map(move |e| (t.id, e)))
    }

    /// Pending (incomplete) transactions.
    pub fn pending_txs(&self) -> Vec<TxId> {
        self.transactions()
            .filter(|t| t.is_pending())
            .map(|t| t.id)
            .collect()
    }

    /// Number of pending transactions.
    pub fn num_pending(&self) -> usize {
        self.pending as usize
    }

    /// Committed transactions, *excluding* the implicit init transaction.
    pub fn committed_txs(&self) -> Vec<TxId> {
        self.transactions()
            .filter(|t| t.is_committed())
            .map(|t| t.id)
            .collect()
    }

    /// Whether a transaction is committed. The init transaction is committed.
    pub fn is_committed(&self, t: TxId) -> bool {
        t.is_init() || self.get_tx(t).is_some_and(|t| t.is_committed())
    }

    /// Whether a transaction is complete (committed or aborted).
    pub fn is_complete_tx(&self, t: TxId) -> bool {
        t.is_init() || self.get_tx(t).is_some_and(|t| t.is_complete())
    }

    // ------------------------------------------------------------------
    // Checkpoint / rollback
    // ------------------------------------------------------------------

    /// Opens a checkpoint: subsequent mutations are recorded in the undo
    /// journal until the matching [`rollback`](History::rollback). While no
    /// checkpoint is outstanding the journal is not written, so permanent
    /// extensions pay nothing.
    pub fn checkpoint(&mut self) -> HistoryMark {
        self.journal_depth += 1;
        HistoryMark {
            journal_len: self.journal.len(),
        }
    }

    /// Undoes every mutation recorded since `mark`, restoring the history
    /// (structure, relations, counters and rolling hash) to its state at
    /// [`checkpoint`](History::checkpoint) time.
    ///
    /// # Panics
    ///
    /// Panics if no checkpoint is outstanding or the mark is stale (taken
    /// after mutations that were already rolled back).
    pub fn rollback(&mut self, mark: HistoryMark) {
        assert!(self.journal_depth > 0, "rollback without checkpoint");
        assert!(mark.journal_len <= self.journal.len(), "stale history mark");
        while self.journal.len() > mark.journal_len {
            let op = self.journal.pop().expect("journal entry");
            match op {
                JournalOp::Begin {
                    session,
                    prev_max_event,
                    prev_max_tx,
                } => {
                    let tx = self.undo_begin(session);
                    self.max_event_id = prev_max_event;
                    self.max_tx_id = prev_max_tx;
                    self.emit(HistoryDelta::UndoBegin { session, tx });
                }
                JournalOp::Append {
                    session,
                    prev_max_event,
                } => {
                    let (tx, po, event) = self.do_pop(session);
                    self.max_event_id = prev_max_event;
                    if let Some(info) = DeltaEventInfo::of(&event.kind) {
                        self.emit(HistoryDelta::Pop {
                            tx,
                            event: event.id,
                            info,
                            po,
                        });
                    }
                }
                JournalOp::Pop { session, event } => {
                    let info = DeltaEventInfo::of(&event.kind);
                    let id = event.id;
                    let (tx, po) = self.do_append(session, event);
                    if let Some(info) = info {
                        self.emit(HistoryDelta::Append {
                            tx,
                            event: id,
                            info,
                            po,
                        });
                    }
                }
                JournalOp::Retract {
                    session,
                    tx,
                    program_index,
                    begin,
                } => {
                    self.do_begin(session, tx, program_index, begin);
                    self.emit(HistoryDelta::Begin { session, tx });
                }
                JournalOp::SetWr { read, prev } => {
                    let (reader, var, po, key) = self.read_coords_key(read);
                    if let Some(cur) = self.wr.get(read.0) {
                        let c = contrib(wr_payload(key, self.tx_coord(TxId(cur))));
                        xor_into(&mut self.hash, c);
                        self.wr.clear(read.0);
                        self.emit(HistoryDelta::UnsetWr {
                            read,
                            reader,
                            writer: TxId(cur),
                            var,
                            po,
                        });
                    }
                    if prev != NONE {
                        self.wr.set(read.0, prev);
                        let c = contrib(wr_payload(key, self.tx_coord(TxId(prev))));
                        xor_into(&mut self.hash, c);
                        self.emit(HistoryDelta::SetWr {
                            read,
                            reader,
                            writer: TxId(prev),
                            var,
                            po,
                        });
                    }
                }
            }
        }
        self.journal_depth -= 1;
    }

    /// Whether a checkpoint is currently outstanding (journal armed).
    pub fn in_checkpoint(&self) -> bool {
        self.journal_depth > 0
    }

    #[inline]
    fn record(&mut self, op: JournalOp) {
        if self.journal_depth > 0 {
            self.journal.push(op);
        }
    }

    // ------------------------------------------------------------------
    // Mutation observation (generation counter + delta log)
    // ------------------------------------------------------------------

    /// Identity of this history instance. Fresh for every `new` and every
    /// `clone`: two histories never share a uid, so an observer that
    /// remembers `(uid, generation)` can tell a stale sync point from a
    /// different history altogether.
    #[inline]
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Generation counter: incremented once per observed mutation
    /// (including the inverse mutations performed by
    /// [`rollback`](History::rollback)). `generation() == g` from a
    /// previous sync means the history is unchanged since then.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.delta_base + self.deltas.len() as u64
    }

    /// The mutations observed since generation `gen`, oldest first, or
    /// `None` when the window is gone — `gen` predates the retained
    /// [`DELTA_LOG_CAPACITY`] suffix or lies in the future (a sync point
    /// from another history). Observers replay the returned deltas to
    /// catch up and fall back to a full resync on `None`.
    pub fn deltas_since(&self, gen: u64) -> Option<impl Iterator<Item = &HistoryDelta> + '_> {
        if gen < self.delta_base || gen > self.generation() {
            return None;
        }
        Some(self.deltas.range((gen - self.delta_base) as usize..))
    }

    #[inline]
    fn emit(&mut self, delta: HistoryDelta) {
        if self.deltas.len() == DELTA_LOG_CAPACITY {
            self.deltas.pop_front();
            self.delta_base += 1;
        }
        self.deltas.push_back(delta);
    }

    // ------------------------------------------------------------------
    // Mutation
    // ------------------------------------------------------------------

    /// Starts a new transaction in session `s` with the given begin event,
    /// appending it to the session order.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already used, is the init id, or the event is not a
    /// begin event.
    pub fn begin_transaction(
        &mut self,
        s: SessionId,
        id: TxId,
        program_index: usize,
        begin: Event,
    ) {
        assert!(!id.is_init(), "cannot begin the init transaction");
        assert!(!self.contains_tx(id), "transaction {id} already exists");
        assert!(begin.kind.is_begin(), "first event must be begin");
        self.record(JournalOp::Begin {
            session: s,
            prev_max_event: self.max_event_id,
            prev_max_tx: self.max_tx_id,
        });
        self.do_begin(s, id, program_index, begin);
        self.emit(HistoryDelta::Begin { session: s, tx: id });
    }

    fn do_begin(&mut self, s: SessionId, id: TxId, program_index: usize, begin: Event) {
        if s.0 as usize >= self.sessions.len() {
            self.sessions.resize_with(s.0 as usize + 1, Vec::new);
        }
        let sidx = self.sessions[s.0 as usize].len() as u32;
        let c = contrib(event_payload(pos_key(s.0, sidx, 0), &begin.kind));
        xor_into(&mut self.hash, c);
        self.owner.set(begin.id.0, id.0);
        self.max_event_id = self.max_event_id.max(begin.id.0);
        self.max_tx_id = self.max_tx_id.max(id.0);
        // `begin_transaction` always seeds with a begin event; rebuilds
        // (`remove_events`) may seed a truncated log with any first kept
        // event, including one that completes the transaction outright.
        let complete = matches!(begin.kind, EventKind::Commit | EventKind::Abort);
        let mut log = TransactionLog::new(id, s, program_index);
        log.push(begin);
        self.tx_slot.set(id.0, self.logs.len() as u32);
        self.tx_sidx.set(id.0, sidx);
        self.logs.push(log);
        self.sessions[s.0 as usize].push(id);
        if !complete {
            self.pending += 1;
        }
    }

    /// Undoes the most recent live `begin_transaction` of `session` (its
    /// log holds only the begin event by journal-ordering), returning the
    /// removed transaction's id.
    fn undo_begin(&mut self, s: SessionId) -> TxId {
        let id = self.sessions[s.0 as usize]
            .pop()
            .expect("session has a transaction to undo");
        let log = self.detach_log(id);
        debug_assert_eq!(log.events.len(), 1, "begin undone with live events");
        let begin = &log.events[0];
        let sidx = self.sessions[s.0 as usize].len() as u32;
        let c = contrib(event_payload(pos_key(s.0, sidx, 0), &begin.kind));
        xor_into(&mut self.hash, c);
        self.owner.clear(begin.id.0);
        self.pending -= 1;
        id
    }

    /// Removes a transaction's log from the arena (swap-remove, fixing the
    /// moved log's slot). Arena slot order is a representation detail:
    /// every public traversal goes through `tx_slot` by id.
    fn detach_log(&mut self, id: TxId) -> TransactionLog {
        let slot = self.tx_slot.clear(id.0).expect("live transaction") as usize;
        self.tx_sidx.clear(id.0);
        let log = self.logs.swap_remove(slot);
        if slot < self.logs.len() {
            let moved = self.logs[slot].id;
            self.tx_slot.set(moved.0, slot as u32);
        }
        log
    }

    /// Removes the last transaction of session `s`, which must be a
    /// *begin-only* pending transaction (just its begin event) — the
    /// journaled counterpart of undoing a [`begin_transaction`] that
    /// predates the current checkpoint. The in-place trial extensions of
    /// the exploration use this to excise whole doomed transactions
    /// without copying the history; [`rollback`](History::rollback)
    /// re-begins the transaction.
    ///
    /// # Panics
    ///
    /// Panics if the session has no transaction or its last transaction
    /// holds more than its begin event (pop those first).
    ///
    /// [`begin_transaction`]: History::begin_transaction
    pub fn retract_begin(&mut self, s: SessionId) {
        let tx = self
            .last_tx_of_session(s)
            .unwrap_or_else(|| panic!("session {s} has no transaction"));
        assert_eq!(
            self.tx(tx).events.len(),
            1,
            "retracted transaction must be begin-only"
        );
        self.sessions[s.0 as usize].pop();
        let sidx = self.sessions[s.0 as usize].len() as u32;
        let mut log = self.detach_log(tx);
        let begin = log.events.pop().expect("begin event");
        assert!(begin.kind.is_begin(), "first event must be begin");
        let c = contrib(event_payload(pos_key(s.0, sidx, 0), &begin.kind));
        xor_into(&mut self.hash, c);
        self.owner.clear(begin.id.0);
        self.pending -= 1;
        self.record(JournalOp::Retract {
            session: s,
            tx,
            program_index: log.program_index,
            begin,
        });
        self.emit(HistoryDelta::UndoBegin { session: s, tx });
    }

    /// Appends an event to the last (pending) transaction of session `s`
    /// and returns the owning transaction id.
    ///
    /// # Panics
    ///
    /// Panics if the session has no pending last transaction.
    pub fn append_event(&mut self, s: SessionId, event: Event) -> TxId {
        let tx = self
            .last_tx_of_session(s)
            .unwrap_or_else(|| panic!("session {s} has no transaction"));
        assert!(
            self.tx(tx).is_pending(),
            "last transaction of {s} is complete"
        );
        self.record(JournalOp::Append {
            session: s,
            prev_max_event: self.max_event_id,
        });
        let info = DeltaEventInfo::of(&event.kind);
        let id = event.id;
        let (_, po) = self.do_append(s, event);
        if let Some(info) = info {
            self.emit(HistoryDelta::Append {
                tx,
                event: id,
                info,
                po,
            });
        }
        tx
    }

    fn do_append(&mut self, s: SessionId, event: Event) -> (TxId, u32) {
        let tx = self.sessions[s.0 as usize]
            .last()
            .copied()
            .expect("session has a transaction");
        let sidx = self.tx_sidx.get(tx.0).expect("tx session index");
        let slot = self.tx_slot.get(tx.0).expect("tx slot") as usize;
        let po = self.logs[slot].events.len() as u32;
        let c = contrib(event_payload(pos_key(s.0, sidx, po), &event.kind));
        xor_into(&mut self.hash, c);
        if matches!(event.kind, EventKind::Commit | EventKind::Abort) {
            self.pending -= 1;
        }
        self.owner.set(event.id.0, tx.0);
        self.max_event_id = self.max_event_id.max(event.id.0);
        self.logs[slot].events.push(event);
        (tx, po)
    }

    /// Removes and returns the last event of the last transaction of
    /// session `s` — the exact inverse of [`append_event`](History::append_event).
    ///
    /// # Panics
    ///
    /// Panics if the event is the transaction's begin (undo the begin via
    /// [`rollback`](History::rollback) instead) or if it is a read whose wr
    /// dependency has not been [`unset_wr`](History::unset_wr) first.
    pub fn pop_event(&mut self, s: SessionId) -> Event {
        let tx = self
            .last_tx_of_session(s)
            .unwrap_or_else(|| panic!("session {s} has no transaction"));
        let len = self.tx(tx).events.len();
        assert!(len > 1, "cannot pop a transaction's begin event");
        let (tx, po, event) = self.do_pop(s);
        self.record(JournalOp::Pop {
            session: s,
            event: event.clone(),
        });
        if let Some(info) = DeltaEventInfo::of(&event.kind) {
            self.emit(HistoryDelta::Pop {
                tx,
                event: event.id,
                info,
                po,
            });
        }
        event
    }

    fn do_pop(&mut self, s: SessionId) -> (TxId, u32, Event) {
        let tx = self.sessions[s.0 as usize]
            .last()
            .copied()
            .expect("session has a transaction");
        let sidx = self.tx_sidx.get(tx.0).expect("tx session index");
        let slot = self.tx_slot.get(tx.0).expect("tx slot") as usize;
        let event = self.logs[slot].events.pop().expect("event to pop");
        assert!(
            self.wr.get(event.id.0).is_none(),
            "popped read {} still has a wr dependency",
            event.id
        );
        let po = self.logs[slot].events.len() as u32;
        let c = contrib(event_payload(pos_key(s.0, sidx, po), &event.kind));
        xor_into(&mut self.hash, c);
        if matches!(event.kind, EventKind::Commit | EventKind::Abort) {
            self.pending += 1;
        }
        self.owner.clear(event.id.0);
        (tx, po, event)
    }

    /// Adds (or replaces) a write-read dependency `wr(writer, read)`.
    ///
    /// # Panics
    ///
    /// Panics if the read event is unknown, not a read, or the writer does
    /// not write the read's variable.
    pub fn set_wr(&mut self, read: EventId, writer: TxId) {
        let e = self.event(read).expect("read event must be in the history");
        let x = match &e.kind {
            EventKind::Read(x) => *x,
            other => panic!("wr target must be a read event, got {other}"),
        };
        assert!(
            self.writes_var(writer, x),
            "wr source {writer} does not write {x}"
        );
        let (reader, _, po, key) = self.read_coords_key(read);
        let prev = self.set_wr_keyed(read, writer, key);
        if let Some(prev) = prev {
            self.emit(HistoryDelta::UnsetWr {
                read,
                reader,
                writer: TxId(prev),
                var: x,
                po,
            });
        }
        self.emit(HistoryDelta::SetWr {
            read,
            reader,
            writer,
            var: x,
            po,
        });
    }

    fn do_set_wr(&mut self, read: EventId, writer: TxId) -> Option<u32> {
        let key = self.event_pos_key(read);
        self.set_wr_keyed(read, writer, key)
    }

    fn set_wr_keyed(&mut self, read: EventId, writer: TxId, key: u64) -> Option<u32> {
        let prev = self.wr.set(read.0, writer.0);
        if let Some(prev) = prev {
            let c = contrib(wr_payload(key, self.tx_coord(TxId(prev))));
            xor_into(&mut self.hash, c);
        }
        let c = contrib(wr_payload(key, self.tx_coord(writer)));
        xor_into(&mut self.hash, c);
        self.record(JournalOp::SetWr {
            read,
            prev: prev.unwrap_or(NONE),
        });
        prev
    }

    /// Removes the wr dependency of a read, if any — the inverse of
    /// [`set_wr`](History::set_wr). `ValidWrites`-style candidate trials
    /// must call this between candidates so that the next consistency check
    /// never sees the previous candidate's edge.
    pub fn unset_wr(&mut self, read: EventId) {
        if let Some(prev) = self.wr.clear(read.0) {
            let (reader, var, po, key) = self.read_coords_key(read);
            let c = contrib(wr_payload(key, self.tx_coord(TxId(prev))));
            xor_into(&mut self.hash, c);
            self.record(JournalOp::SetWr { read, prev });
            self.emit(HistoryDelta::UnsetWr {
                read,
                reader,
                writer: TxId(prev),
                var,
                po,
            });
        }
    }

    /// Removes the wr dependency of a read, if any (alias of
    /// [`unset_wr`](History::unset_wr), kept for the pre-journal API).
    pub fn clear_wr(&mut self, read: EventId) {
        self.unset_wr(read);
    }

    /// Resolves a read's coordinates once for a candidate loop that will
    /// set and unset its wr dependency many times (`ValidWrites`,
    /// `readLatest`, the DFS read branch). The returned handle is valid
    /// while the read stays live at the same position — i.e. until it is
    /// popped or its transaction retracted.
    ///
    /// # Panics
    ///
    /// Panics if the event is unknown or not a read.
    pub fn prepare_wr_trial(&self, read: EventId) -> WrTrial {
        let (reader, var, po, key) = self.read_coords_key(read);
        WrTrial {
            read,
            reader,
            var,
            po,
            key,
        }
    }

    /// Sets `wr(writer, read)` through a prepared handle — the fast path of
    /// [`set_wr`](History::set_wr), skipping the per-call coordinate
    /// resolution. The read must currently have no wr dependency.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the writer does not write the read's
    /// variable or the read already has a dependency.
    pub fn set_wr_trial(&mut self, trial: &WrTrial, writer: TxId) {
        debug_assert!(
            self.writes_var(writer, trial.var),
            "wr source {writer} does not write {}",
            trial.var
        );
        let prev = self.set_wr_keyed(trial.read, writer, trial.key);
        debug_assert!(prev.is_none(), "wr trial over an existing dependency");
        self.emit(HistoryDelta::SetWr {
            read: trial.read,
            reader: trial.reader,
            writer,
            var: trial.var,
            po: trial.po,
        });
    }

    /// Removes the wr dependency set through [`set_wr_trial`](History::set_wr_trial) — the fast
    /// path of [`unset_wr`](History::unset_wr).
    pub fn unset_wr_trial(&mut self, trial: &WrTrial) {
        if let Some(prev) = self.wr.clear(trial.read.0) {
            let c = contrib(wr_payload(trial.key, self.tx_coord(TxId(prev))));
            xor_into(&mut self.hash, c);
            self.record(JournalOp::SetWr {
                read: trial.read,
                prev,
            });
            self.emit(HistoryDelta::UnsetWr {
                read: trial.read,
                reader: trial.reader,
                writer: TxId(prev),
                var: trial.var,
                po: trial.po,
            });
        }
    }

    /// Owner, variable, program-order position and hash position key of a
    /// live read event, resolved in one pass over its transaction log (the
    /// wr mutators need all four).
    fn read_coords_key(&self, read: EventId) -> (TxId, Var, u32, u64) {
        let tx = self.tx_of_event(read).expect("event has an owner");
        let log = self.tx(tx);
        let po = log.po_position(read).expect("event in its log") as u32;
        let var = log.events[po as usize]
            .var()
            .expect("wr reads have a variable");
        let sidx = self.tx_sidx.get(tx.0).expect("tx session index");
        (tx, var, po, pos_key(log.session.0, sidx, po))
    }

    /// Position key of a live event (for hash contributions).
    fn event_pos_key(&self, e: EventId) -> u64 {
        let tx = self.tx_of_event(e).expect("event has an owner");
        let log = self.tx(tx);
        let po = log.po_position(e).expect("event in its log") as u32;
        let sidx = self.tx_sidx.get(tx.0).expect("tx session index");
        pos_key(log.session.0, sidx, po)
    }

    /// Canonical `(session, index)` coordinate of a transaction for hash
    /// contributions (`u64::MAX` for init).
    fn tx_coord(&self, t: TxId) -> u64 {
        if t.is_init() {
            u64::MAX
        } else {
            let log = self.tx(t);
            let sidx = self.tx_sidx.get(t.0).expect("tx session index");
            writer_coord(log.session.0, sidx)
        }
    }

    // ------------------------------------------------------------------
    // Write-read relation
    // ------------------------------------------------------------------

    /// The transaction a read event reads from, if it has a wr dependency.
    #[inline]
    pub fn wr_of(&self, read: EventId) -> Option<TxId> {
        self.wr.get(read.0).map(TxId)
    }

    /// The write-read relation as `(read event, writer transaction)` pairs,
    /// in ascending event-id order.
    pub fn wr(&self) -> impl Iterator<Item = (EventId, TxId)> + '_ {
        self.wr.iter().map(|(e, w)| (EventId(e), TxId(w)))
    }

    /// Number of wr edges (external reads with a dependency).
    pub fn wr_count(&self) -> usize {
        self.wr.len()
    }

    /// Whether `(a, b)` is in the transaction-level write-read relation:
    /// some read of `b` reads from `a`.
    pub fn wr_tx_edge(&self, a: TxId, b: TxId) -> bool {
        self.wr()
            .any(|(r, w)| w == a && self.tx_of_event(r) == Some(b))
    }

    /// All transaction-level write-read edges `(writer, reader)`.
    pub fn wr_tx_edges(&self) -> BTreeSet<(TxId, TxId)> {
        self.wr()
            .filter_map(|(r, w)| Some((w, self.tx_of_event(r)?)))
            .filter(|(w, r)| w != r)
            .collect()
    }

    /// External reads together with their variable, reader and writer:
    /// `(reader, read event, variable, writer)`.
    pub fn reads_from(&self) -> Vec<(TxId, EventId, Var, TxId)> {
        let mut out = Vec::new();
        for (r, w) in self.wr() {
            let reader = self.tx_of_event(r).expect("read owner");
            let x = self
                .event(r)
                .and_then(Event::var)
                .expect("read has a variable");
            out.push((reader, r, x, w));
        }
        out
    }

    // ------------------------------------------------------------------
    // Writers / read values
    // ------------------------------------------------------------------

    /// Whether transaction `t` writes variable `x` (visible writes). The
    /// init transaction writes every variable.
    pub fn writes_var(&self, t: TxId, x: Var) -> bool {
        if t.is_init() {
            return true;
        }
        self.get_tx(t).is_some_and(|t| t.writes_var(x))
    }

    /// The value of `t`'s visible write to `x`, if `t` writes `x`.
    pub fn visible_write_value(&self, t: TxId, x: Var) -> Option<Value> {
        if t.is_init() {
            return Some(self.init_value(x));
        }
        self.get_tx(t)?.visible_write_value(x).cloned()
    }

    /// All transactions (including `init` and pending ones, excluding
    /// aborted ones) that write variable `x`, in ascending id order.
    pub fn writers_of(&self, x: Var) -> Vec<TxId> {
        let mut out = vec![TxId::INIT];
        out.extend(
            self.transactions()
                .filter(|t| t.writes_var(x))
                .map(|t| t.id),
        );
        out
    }

    /// Committed transactions (including `init`) that write variable `x`,
    /// in ascending id order. These are the candidate sources of a wr
    /// dependency in the semantics.
    pub fn committed_writers_of(&self, x: Var) -> Vec<TxId> {
        let mut out = vec![TxId::INIT];
        out.extend(
            self.transactions()
                .filter(|t| t.is_committed() && t.writes_var(x))
                .map(|t| t.id),
        );
        out
    }

    /// The value returned by a read event: the last po-preceding write of
    /// the same transaction for internal reads, otherwise the visible write
    /// of the transaction designated by `wr`.
    pub fn read_value(&self, read: EventId) -> Option<Value> {
        let owner = self.tx_of_event(read)?;
        let log = self.get_tx(owner)?;
        let x = log.event(read)?.var()?;
        if let Some(v) = log.last_write_before(x, read) {
            return Some(v.clone());
        }
        let writer = self.wr_of(read)?;
        self.visible_write_value(writer, x)
    }

    // ------------------------------------------------------------------
    // Session order and causal order
    // ------------------------------------------------------------------

    /// Whether `(a, b)` is in the session order `so`: the init transaction
    /// precedes every other transaction, and transactions of the same
    /// session are ordered by their position.
    pub fn so_before(&self, a: TxId, b: TxId) -> bool {
        if a == b {
            return false;
        }
        if a.is_init() {
            return true;
        }
        if b.is_init() {
            return false;
        }
        let (ta, tb) = match (self.get_tx(a), self.get_tx(b)) {
            (Some(x), Some(y)) => (x, y),
            _ => return false,
        };
        if ta.session != tb.session {
            return false;
        }
        match (self.tx_sidx.get(a.0), self.tx_sidx.get(b.0)) {
            (Some(i), Some(j)) => i < j,
            _ => false,
        }
    }

    /// Whether `(a, b)` is in `so ∪ wr` (transaction level).
    pub fn so_or_wr(&self, a: TxId, b: TxId) -> bool {
        self.so_before(a, b) || self.wr_tx_edge(a, b)
    }

    /// The strict causal ancestors of `t`: every `t'` with
    /// `(t', t) ∈ (so ∪ wr)+`. One backward BFS; membership queries against
    /// the same pivot are then O(1), which is what the swap machinery uses
    /// (`ComputeReorderings`, `doomed_events` and `readLatest` all test many
    /// transactions against one pivot).
    pub fn causal_ancestors(&self, t: TxId) -> TxSet {
        let mut set = TxSet::with_capacity(self.max_tx_id.max(1));
        if t.is_init() {
            return set;
        }
        let mut queue: VecDeque<TxId> = VecDeque::new();
        let push_preds = |u: TxId, set: &mut TxSet, queue: &mut VecDeque<TxId>| {
            let Some(log) = self.get_tx(u) else { return };
            let sidx = self.tx_sidx.get(u.0).expect("tx session index") as usize;
            if sidx == 0 {
                set.insert(TxId::INIT);
            } else {
                let prev = self.sessions[log.session.0 as usize][sidx - 1];
                if set.insert(prev) {
                    queue.push_back(prev);
                }
            }
            for e in &log.events {
                if e.kind.is_read() {
                    if let Some(w) = self.wr_of(e.id) {
                        if w != u && set.insert(w) {
                            queue.push_back(w);
                        }
                    }
                }
            }
        };
        push_preds(t, &mut set, &mut queue);
        while let Some(u) = queue.pop_front() {
            push_preds(u, &mut set, &mut queue);
        }
        set
    }

    /// The strict causal descendants of `t`: every `t'` with
    /// `(t, t') ∈ (so ∪ wr)+` (one forward BFS, see
    /// [`causal_ancestors`](History::causal_ancestors)).
    pub fn causal_descendants(&self, t: TxId) -> TxSet {
        let mut set = TxSet::with_capacity(self.max_tx_id.max(1));
        // Reverse wr adjacency: writer slot ↦ readers.
        let mut readers: Vec<Vec<TxId>> = vec![Vec::new(); self.logs.len() + 1];
        for (r, w) in self.wr() {
            if let Some(reader) = self.tx_of_event(r) {
                if reader != w {
                    let slot = if w.is_init() {
                        self.logs.len()
                    } else {
                        self.tx_index(w).expect("writer slot")
                    };
                    readers[slot].push(reader);
                }
            }
        }
        let mut queue: VecDeque<TxId> = VecDeque::new();
        let push_succs = |u: TxId, set: &mut TxSet, queue: &mut VecDeque<TxId>| {
            if u.is_init() {
                for txs in &self.sessions {
                    if let Some(first) = txs.first() {
                        if set.insert(*first) {
                            queue.push_back(*first);
                        }
                    }
                }
                let rs = &readers[self.logs.len()];
                for r in rs {
                    if set.insert(*r) {
                        queue.push_back(*r);
                    }
                }
                return;
            }
            let Some(log) = self.get_tx(u) else { return };
            let sidx = self.tx_sidx.get(u.0).expect("tx session index") as usize;
            let session = &self.sessions[log.session.0 as usize];
            if sidx + 1 < session.len() {
                let next = session[sidx + 1];
                if set.insert(next) {
                    queue.push_back(next);
                }
            }
            for r in &readers[self.tx_index(u).expect("tx slot")] {
                if set.insert(*r) {
                    queue.push_back(*r);
                }
            }
        };
        push_succs(t, &mut set, &mut queue);
        while let Some(u) = queue.pop_front() {
            push_succs(u, &mut set, &mut queue);
        }
        set
    }

    /// Whether `(a, b)` is in the causal order `(so ∪ wr)+`.
    pub fn causally_before(&self, a: TxId, b: TxId) -> bool {
        if a == b {
            return false;
        }
        if a.is_init() {
            return !b.is_init();
        }
        if b.is_init() {
            return false;
        }
        self.causal_ancestors(b).contains(a)
    }

    /// Whether `(a, b)` is in `(so ∪ wr)*` (reflexive causal order).
    pub fn causally_before_eq(&self, a: TxId, b: TxId) -> bool {
        a == b || self.causally_before(a, b)
    }

    /// All causal predecessors of `t`: transactions `t'` with
    /// `(t', t) ∈ (so ∪ wr)+`. Always contains [`TxId::INIT`] for `t ≠ init`.
    pub fn causal_predecessors(&self, t: TxId) -> BTreeSet<TxId> {
        let mut preds = BTreeSet::new();
        if t.is_init() {
            return preds;
        }
        let set = self.causal_ancestors(t);
        if set.contains(TxId::INIT) {
            preds.insert(TxId::INIT);
        }
        for a in self.tx_ids() {
            if a != t && set.contains(a) {
                preds.insert(a);
            }
        }
        preds
    }

    /// Whether `t` is `(so ∪ wr)+`-maximal: no transaction is causally after it.
    pub fn is_causally_maximal(&self, t: TxId) -> bool {
        if t.is_init() {
            return self.num_transactions() == 0;
        }
        let desc = self.causal_descendants(t);
        !self
            .tx_ids()
            .any(|other| other != t && desc.contains(other))
    }

    // ------------------------------------------------------------------
    // Prefix construction (event removal)
    // ------------------------------------------------------------------

    /// Returns the history obtained by deleting the given events from its
    /// transaction logs (`h \ D` in §5.2). Transaction logs that become
    /// empty are removed altogether; wr dependencies whose read was removed
    /// are dropped. This is a single O(live-size) compact copy into a fresh
    /// arena.
    pub fn remove_events(&self, doomed: &BTreeSet<EventId>) -> History {
        let mut h = History::new(self.init_values.iter().cloned());
        for (_, txs) in self.sessions() {
            for t in txs {
                let log = self.tx(*t);
                let mut started = false;
                for e in &log.events {
                    if doomed.contains(&e.id) {
                        continue;
                    }
                    if !started {
                        h.do_begin(log.session, log.id, log.program_index, e.clone());
                        started = true;
                    } else {
                        h.do_append(log.session, e.clone());
                    }
                }
            }
        }
        for (r, w) in self.wr() {
            if h.tx_of_event(r).is_some() && h.contains_tx(w) {
                h.do_set_wr(r, w);
            }
        }
        h
    }

    // ------------------------------------------------------------------
    // Fingerprints (read-from equivalence)
    // ------------------------------------------------------------------

    /// A canonical, identifier-independent summary of the history used to
    /// compare histories up to read-from equivalence (same events per
    /// session/transaction and same `po`, `so`, `wr`).
    ///
    /// Transactions are identified by their `(session, index)` coordinates
    /// and variables by their order of first occurrence (scanning sessions,
    /// then transactions, then events), so the fingerprint is independent
    /// of both [`TxId`] allocation and [`crate::VarTable`] interning order.
    /// The latter makes fingerprints comparable across explorations that
    /// interned variables in different orders (e.g. parallel workers
    /// resolving dynamically indexed globals on different branches first).
    /// For histories generated from the same program this renaming is
    /// lossless: the events' structure, written values and read-from
    /// sources determine every resolved variable name.
    pub fn fingerprint(&self) -> HistoryFingerprint {
        // Map every transaction to its canonical coordinates (session, index).
        let coord = |t: TxId| -> WriterRef {
            if t.is_init() {
                WriterRef::Init
            } else {
                let log = self.tx(t);
                let idx = self.tx_session_index(t).expect("tx session index");
                WriterRef::Tx(log.session.0, idx)
            }
        };
        // Map every variable to its first-occurrence index.
        let mut var_ids: Vec<Var> = Vec::new();
        let mut canon = |x: Var| -> Var {
            match var_ids.iter().position(|y| *y == x) {
                Some(i) => Var(i as u32),
                None => {
                    var_ids.push(x);
                    Var(var_ids.len() as u32 - 1)
                }
            }
        };
        let mut sessions = Vec::new();
        for (s, txs) in self.sessions() {
            let mut fp_txs = Vec::new();
            for t in txs {
                let log = self.tx(*t);
                let mut evs = Vec::new();
                for e in &log.events {
                    let fp = match &e.kind {
                        EventKind::Begin => EventFingerprint::Begin,
                        EventKind::Commit => EventFingerprint::Commit,
                        EventKind::Abort => EventFingerprint::Abort,
                        EventKind::Write(x, v) => EventFingerprint::Write(canon(*x), v.clone()),
                        EventKind::Read(x) => {
                            EventFingerprint::Read(canon(*x), self.wr_of(e.id).map(coord))
                        }
                    };
                    evs.push(fp);
                }
                fp_txs.push(evs);
            }
            sessions.push((s.0, fp_txs));
        }
        HistoryFingerprint { sessions }
    }

    /// A 128-bit hash of the canonical fingerprint, computed by streaming
    /// the canonical structure into two independent hashers instead of
    /// materialising [`HistoryFingerprint`]'s nested vectors (which clones
    /// every event payload). Two histories with equal fingerprints always
    /// have equal hashes; the converse holds up to the negligible collision
    /// probability of 128 bits (hash compaction, as classically used by
    /// stateless model checkers for visited-state sets).
    pub fn fingerprint_hash(&self) -> (u64, u64) {
        // Two independent multiply-xorshift streams fed word by word: far
        // cheaper per word than a keyed hash.
        struct Mix(u64, u64);
        impl Mix {
            #[inline]
            fn add(&mut self, v: u64) {
                self.0 = (self.0 ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                self.0 ^= self.0 >> 29;
                self.1 = (self.1.rotate_left(23) ^ v).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
                self.1 ^= self.1 >> 31;
            }
        }
        let mut mix = Mix(0x243f_6a88_85a3_08d3, 0x1319_8a2e_0370_7344);
        // First-occurrence numbering of variables, as in `fingerprint`.
        // Histories touch few distinct variables, so a linear scan beats a
        // map here.
        let mut var_ids: Vec<Var> = Vec::new();
        let mut canon = |x: Var| -> u64 {
            match var_ids.iter().position(|y| *y == x) {
                Some(i) => i as u64,
                None => {
                    var_ids.push(x);
                    (var_ids.len() - 1) as u64
                }
            }
        };
        let coord = |t: TxId| -> u64 {
            if t.is_init() {
                u64::MAX
            } else {
                let log = self.tx(t);
                let idx = self.tx_session_index(t).expect("tx session index");
                ((log.session.0 as u64) << 32) | idx as u64
            }
        };
        for (s, txs) in self.sessions() {
            mix.add(s.0 as u64);
            mix.add(txs.len() as u64);
            for t in txs {
                let log = self.tx(*t);
                mix.add(log.events.len() as u64);
                for e in &log.events {
                    match &e.kind {
                        EventKind::Begin => mix.add(0),
                        EventKind::Commit => mix.add(1),
                        EventKind::Abort => mix.add(2),
                        EventKind::Write(x, v) => {
                            mix.add(3);
                            mix.add(canon(*x));
                            match v {
                                Value::Int(i) => {
                                    mix.add(0);
                                    mix.add(*i as u64);
                                }
                                Value::Set(s) => {
                                    mix.add(1);
                                    mix.add(s.len() as u64);
                                    for id in s {
                                        mix.add(*id as u64);
                                    }
                                }
                            }
                        }
                        EventKind::Read(x) => {
                            mix.add(4);
                            mix.add(canon(*x));
                            match self.wr_of(e.id) {
                                None => mix.add(0),
                                Some(w) => {
                                    mix.add(1);
                                    mix.add(coord(w));
                                }
                            }
                        }
                    }
                }
            }
        }
        (mix.0, mix.1)
    }

    /// The incrementally maintained rolling structural hash, updated in
    /// O(1) on every push/pop/set/unset. Unlike
    /// [`fingerprint_hash`](History::fingerprint_hash) it is *not*
    /// canonical in variable identifiers (it hashes the raw [`Var`] ids),
    /// which is exactly what a per-worker consistency-engine memo needs:
    /// within one exploration the variable table is fixed, so equal rolling
    /// hashes coincide with equal structure up to the usual 128-bit hash
    /// compaction, and the key costs a load instead of a walk of the
    /// history.
    #[inline]
    pub fn live_hash(&self) -> (u64, u64) {
        self.hash
    }

    /// Recomputes the rolling hash from scratch (used after bulk rewrites
    /// such as [`map_vars`](History::map_vars), and by debug assertions).
    fn recompute_live_hash(&mut self) {
        let mut hash = HASH_SEED;
        for (s, txs) in self.sessions() {
            for (sidx, t) in txs.iter().enumerate() {
                let log = self.tx(*t);
                for (po, e) in log.events.iter().enumerate() {
                    let key = pos_key(s.0, sidx as u32, po as u32);
                    xor_into(&mut hash, contrib(event_payload(key, &e.kind)));
                    if let Some(w) = self.wr_of(e.id) {
                        xor_into(&mut hash, contrib(wr_payload(key, self.tx_coord(w))));
                    }
                }
            }
        }
        self.hash = hash;
    }

    // ------------------------------------------------------------------
    // Variable renaming
    // ------------------------------------------------------------------

    /// Returns the history with every variable replaced by `f(var)`,
    /// including the init values. Used to translate histories produced
    /// against one [`crate::VarTable`] into another (e.g. when merging the
    /// outputs of parallel exploration workers).
    ///
    /// `f` must be injective on the variables of the history, otherwise
    /// distinct variables would be conflated.
    pub fn map_vars(&self, mut f: impl FnMut(Var) -> Var) -> History {
        let mut h = self.clone();
        h.init_values = Vec::new();
        for (x, v) in &self.init_values {
            let y = f(*x);
            match h.init_values.binary_search_by_key(&y, |(z, _)| *z) {
                Ok(i) => h.init_values[i].1 = v.clone(),
                Err(i) => h.init_values.insert(i, (y, v.clone())),
            }
        }
        for log in &mut h.logs {
            for e in &mut log.events {
                match &mut e.kind {
                    EventKind::Read(x) | EventKind::Write(x, _) => *x = f(*x),
                    _ => {}
                }
            }
        }
        h.recompute_live_hash();
        h
    }
}

impl Clone for History {
    /// A compact O(live-size) copy of the arena. The undo journal is *not*
    /// cloned: a clone is a plain snapshot with no outstanding checkpoints.
    fn clone(&self) -> Self {
        crate::stats::record_clone(self.heap_bytes_estimate());
        History {
            init_values: self.init_values.clone(),
            logs: self.logs.clone(),
            tx_slot: self.tx_slot.clone(),
            tx_sidx: self.tx_sidx.clone(),
            sessions: self.sessions.clone(),
            wr: self.wr.clone(),
            owner: self.owner.clone(),
            pending: self.pending,
            max_tx_id: self.max_tx_id,
            max_event_id: self.max_event_id,
            hash: self.hash,
            journal: Vec::new(),
            journal_depth: 0,
            uid: NEXT_HISTORY_UID.fetch_add(1, Ordering::Relaxed),
            delta_base: 0,
            deltas: VecDeque::new(),
        }
    }
}

impl History {
    /// Approximate heap footprint of the history in bytes (used by the
    /// benchmark clone counters).
    pub fn heap_bytes_estimate(&self) -> usize {
        let mut bytes = self.init_values.len() * std::mem::size_of::<(Var, Value)>()
            + self.logs.len() * std::mem::size_of::<TransactionLog>()
            + self.tx_slot.heap_bytes()
            + self.tx_sidx.heap_bytes()
            + self.wr.heap_bytes()
            + self.owner.heap_bytes()
            + self.sessions.len() * std::mem::size_of::<Vec<TxId>>();
        for log in &self.logs {
            bytes += log.events.len() * std::mem::size_of::<Event>();
        }
        for txs in &self.sessions {
            bytes += txs.len() * std::mem::size_of::<TxId>();
        }
        bytes
    }
}

impl PartialEq for History {
    /// Logical equality: same init values, session orders, transaction
    /// logs and wr relation. Arena slot order, id-allocation high-water
    /// marks and the journal are representation details and do not
    /// participate.
    fn eq(&self, other: &Self) -> bool {
        if self.init_values != other.init_values
            || self.num_events() != other.num_events()
            || self.num_transactions() != other.num_transactions()
            || self.wr_count() != other.wr_count()
        {
            return false;
        }
        let mut a = self.sessions();
        let mut b = other.sessions();
        loop {
            match (a.next(), b.next()) {
                (None, None) => break,
                (Some((sa, txa)), Some((sb, txb))) if sa == sb && txa == txb => {}
                _ => return false,
            }
        }
        for t in self.tx_ids() {
            if other.get_tx(t) != Some(self.tx(t)) {
                return false;
            }
        }
        self.wr().all(|(r, w)| other.wr_of(r) == Some(w))
    }
}

impl Eq for History {}

impl Default for History {
    fn default() -> Self {
        History::new(std::iter::empty())
    }
}

/// Reference to a writer transaction inside a [`HistoryFingerprint`],
/// identified canonically by session and position rather than by [`TxId`].
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WriterRef {
    /// The initial transaction.
    Init,
    /// The `index`-th transaction of session `session`.
    Tx(u32, usize),
}

/// Canonical summary of a single event inside a [`HistoryFingerprint`].
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventFingerprint {
    /// Begin event.
    Begin,
    /// Commit event.
    Commit,
    /// Abort event.
    Abort,
    /// Read of a variable, annotated with the writer it reads from
    /// (`None` for internal reads).
    Read(Var, Option<WriterRef>),
    /// Write of a value to a variable.
    Write(Var, Value),
}

/// Identifier-independent representation of a history, suitable for
/// detecting duplicate outputs of an exploration (read-from equivalence).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HistoryFingerprint {
    /// For each session (by id), the event fingerprints of its transactions
    /// in session order.
    pub sessions: Vec<(u32, Vec<Vec<EventFingerprint>>)>,
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (s, txs) in self.sessions() {
            writeln!(f, "session {s}:")?;
            for t in txs {
                let log = self.tx(*t);
                write!(f, "  {t} [{:?}]:", log.status())?;
                for e in &log.events {
                    write!(f, " {}", e.kind)?;
                    if let Some(w) = self.wr_of(e.id) {
                        write!(f, "<-{w}")?;
                    }
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

/// Helper for rendering a history with human-readable variable names.
#[derive(Debug)]
pub struct HistoryDisplay<'a> {
    history: &'a History,
    vars: &'a VarTable,
}

impl History {
    /// Renders the history using variable names from `vars`.
    pub fn display_with<'a>(&'a self, vars: &'a VarTable) -> HistoryDisplay<'a> {
        HistoryDisplay {
            history: self,
            vars,
        }
    }
}

impl fmt::Display for HistoryDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let h = self.history;
        for (s, txs) in h.sessions() {
            writeln!(f, "session {s}:")?;
            for t in txs {
                let log = h.tx(*t);
                write!(f, "  {t} [{:?}]:", log.status())?;
                for e in &log.events {
                    match &e.kind {
                        EventKind::Read(x) => {
                            write!(f, " read({})", self.vars.name(*x))?;
                            if let Some(w) = h.wr_of(e.id) {
                                write!(f, "<-{w}")?;
                            }
                        }
                        EventKind::Write(x, v) => {
                            write!(f, " write({},{v})", self.vars.name(*x))?;
                        }
                        other => write!(f, " {other}")?,
                    }
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u32, kind: EventKind) -> Event {
        Event::new(EventId(id), kind)
    }

    /// Builds the Causal Consistency violation history of Fig. 3:
    /// t1: write(x,1); t2: read(x)<-t1, write(x,2); t3: read(x)<-t1, read(y)<-t4;
    /// t4: read(x)<-t2, write(y,1).
    fn fig3_history() -> History {
        let x = Var(0);
        let y = Var(1);
        let mut h = History::new([]);
        let mut next = 0u32;
        let mut fresh = || {
            next += 1;
            EventId(next)
        };
        // t1 in session 0
        h.begin_transaction(SessionId(0), TxId(1), 0, ev(fresh().0, EventKind::Begin));
        h.append_event(
            SessionId(0),
            Event::new(fresh(), EventKind::Write(x, Value::Int(1))),
        );
        h.append_event(SessionId(0), Event::new(fresh(), EventKind::Commit));
        // t2 in session 1
        h.begin_transaction(SessionId(1), TxId(2), 0, ev(fresh().0, EventKind::Begin));
        let r2 = fresh();
        h.append_event(SessionId(1), Event::new(r2, EventKind::Read(x)));
        h.append_event(
            SessionId(1),
            Event::new(fresh(), EventKind::Write(x, Value::Int(2))),
        );
        h.append_event(SessionId(1), Event::new(fresh(), EventKind::Commit));
        // t4 in session 2
        h.begin_transaction(SessionId(2), TxId(4), 0, ev(fresh().0, EventKind::Begin));
        let r4 = fresh();
        h.append_event(SessionId(2), Event::new(r4, EventKind::Read(x)));
        h.append_event(
            SessionId(2),
            Event::new(fresh(), EventKind::Write(y, Value::Int(1))),
        );
        h.append_event(SessionId(2), Event::new(fresh(), EventKind::Commit));
        // t3 in session 3
        h.begin_transaction(SessionId(3), TxId(3), 0, ev(fresh().0, EventKind::Begin));
        let r3x = fresh();
        h.append_event(SessionId(3), Event::new(r3x, EventKind::Read(x)));
        let r3y = fresh();
        h.append_event(SessionId(3), Event::new(r3y, EventKind::Read(y)));
        h.append_event(SessionId(3), Event::new(fresh(), EventKind::Commit));
        h.set_wr(r2, TxId(1));
        h.set_wr(r4, TxId(2));
        h.set_wr(r3x, TxId(1));
        h.set_wr(r3y, TxId(4));
        h
    }

    #[test]
    fn structure_queries() {
        let h = fig3_history();
        assert_eq!(h.num_transactions(), 4);
        assert_eq!(h.pending_txs().len(), 0);
        assert_eq!(h.committed_txs().len(), 4);
        assert!(h.is_committed(TxId::INIT));
        assert!(h.contains_tx(TxId::INIT));
        assert!(h.contains_tx(TxId(2)));
        assert!(!h.contains_tx(TxId(9)));
        assert_eq!(h.session_txs(SessionId(1)), &[TxId(2)]);
        assert_eq!(h.last_tx_of_session(SessionId(3)), Some(TxId(3)));
        assert_eq!(h.last_tx_of_session(SessionId(9)), None);
        assert_eq!(h.events().count(), h.num_events());
        assert_eq!(h.max_tx_id(), 4);
        assert_eq!(h.max_event_id(), 15);
    }

    #[test]
    fn retract_begin_round_trips_through_rollback() {
        // Build fig3, checkpoint, strip session 3 down to its begin and
        // retract it (exactly what the in-place swap trials do), then
        // retract... the rollback must restore everything bit-for-bit even
        // though another transaction was begun in between (exercising the
        // swap-remove arena path).
        let mut h = fig3_history();
        let snapshot = h.clone();
        let hash = h.live_hash();
        let mark = h.checkpoint();
        let s3 = SessionId(3);
        // Unset the wr edges of session 3's reads, pop its events, retract.
        let reads: Vec<EventId> = h.tx(TxId(3)).events[1..].iter().map(|e| e.id).collect();
        for e in reads.into_iter().rev() {
            h.unset_wr(e);
            h.pop_event(s3);
        }
        h.retract_begin(s3);
        assert!(!h.contains_tx(TxId(3)));
        assert_eq!(h.num_transactions(), 3);
        // Begin a fresh transaction elsewhere so the retracted slot is not
        // the arena tail at rollback time.
        h.begin_transaction(
            SessionId(0),
            TxId(9),
            1,
            Event::new(EventId(99), EventKind::Begin),
        );
        h.rollback(mark);
        assert_eq!(h, snapshot);
        assert_eq!(h.live_hash(), hash);
        assert_eq!(h.fingerprint(), snapshot.fingerprint());
    }

    #[test]
    #[should_panic(expected = "begin-only")]
    fn retract_begin_rejects_non_stub_transactions() {
        let mut h = fig3_history();
        h.retract_begin(SessionId(3));
    }

    #[test]
    fn mutation_deltas_are_observable_and_self_inverse() {
        let mut h = History::new([]);
        let g0 = h.generation();
        let uid = h.uid();
        h.begin_transaction(SessionId(0), TxId(1), 0, ev(1, EventKind::Begin));
        h.append_event(SessionId(0), ev(2, EventKind::Write(Var(0), Value::Int(1))));
        assert_eq!(h.generation(), g0 + 2);
        let deltas: Vec<HistoryDelta> = h.deltas_since(g0).unwrap().copied().collect();
        assert_eq!(
            deltas,
            vec![
                HistoryDelta::Begin {
                    session: SessionId(0),
                    tx: TxId(1)
                },
                HistoryDelta::Append {
                    tx: TxId(1),
                    event: EventId(2),
                    info: DeltaEventInfo::Write(Var(0)),
                    po: 1
                },
            ]
        );
        // A rollback emits the inverse deltas rather than rewinding the log.
        let mark = h.checkpoint();
        let g1 = h.generation();
        h.append_event(SessionId(0), ev(3, EventKind::Commit));
        h.rollback(mark);
        let tail: Vec<HistoryDelta> = h.deltas_since(g1).unwrap().copied().collect();
        assert_eq!(
            tail,
            vec![
                HistoryDelta::Append {
                    tx: TxId(1),
                    event: EventId(3),
                    info: DeltaEventInfo::Commit,
                    po: 2
                },
                HistoryDelta::Pop {
                    tx: TxId(1),
                    event: EventId(3),
                    info: DeltaEventInfo::Commit,
                    po: 2
                },
            ]
        );
        // Out-of-window and foreign sync points are rejected; clones are
        // fresh observers.
        assert!(h.deltas_since(h.generation() + 1).is_none());
        let clone = h.clone();
        assert_ne!(clone.uid(), uid);
        assert_eq!(clone.generation(), 0);
        assert_eq!(clone.deltas_since(0).unwrap().count(), 0);
    }

    #[test]
    fn delta_log_window_is_bounded() {
        let mut h = History::new([]);
        h.begin_transaction(SessionId(0), TxId(1), 0, ev(1, EventKind::Begin));
        let start = h.generation();
        for i in 0..DELTA_LOG_CAPACITY as u32 + 10 {
            let e = EventId(2 + 2 * i);
            h.append_event(SessionId(0), Event::new(e, EventKind::Read(Var(0))));
            h.set_wr(e, TxId::INIT);
            h.unset_wr(e);
            h.pop_event(SessionId(0));
        }
        assert!(h.deltas_since(start).is_none(), "window must be trimmed");
        let recent = h.generation() - 10;
        assert_eq!(h.deltas_since(recent).unwrap().count(), 10);
    }

    #[test]
    fn writers_and_values() {
        let h = fig3_history();
        let x = Var(0);
        let y = Var(1);
        assert!(h.writes_var(TxId::INIT, x));
        assert!(h.writes_var(TxId(1), x));
        assert!(h.writes_var(TxId(2), x));
        assert!(!h.writes_var(TxId(3), x));
        let wx = h.writers_of(x);
        assert!(wx.contains(&TxId::INIT) && wx.contains(&TxId(1)) && wx.contains(&TxId(2)));
        assert!(!wx.contains(&TxId(4)));
        assert_eq!(h.visible_write_value(TxId(2), x), Some(Value::Int(2)));
        assert_eq!(h.visible_write_value(TxId::INIT, y), Some(Value::Int(0)));
        assert_eq!(h.committed_writers_of(y), vec![TxId::INIT, TxId(4)]);
    }

    #[test]
    fn read_values_follow_wr() {
        let h = fig3_history();
        // t4's read of x reads from t2 which wrote 2.
        let (_, r4, _, w) = h
            .reads_from()
            .into_iter()
            .find(|(reader, _, _, _)| *reader == TxId(4))
            .unwrap();
        assert_eq!(w, TxId(2));
        assert_eq!(h.read_value(r4), Some(Value::Int(2)));
    }

    #[test]
    fn session_and_causal_order() {
        let h = fig3_history();
        assert!(h.so_before(TxId::INIT, TxId(3)));
        assert!(!h.so_before(TxId(3), TxId::INIT));
        assert!(!h.so_before(TxId(1), TxId(2))); // different sessions
        assert!(h.causally_before(TxId(1), TxId(2))); // via wr
        assert!(h.causally_before(TxId(2), TxId(3))); // t2 -> t4 -> t3
        assert!(h.causally_before(TxId::INIT, TxId(4)));
        assert!(!h.causally_before(TxId(3), TxId(1)));
        assert!(h.causally_before_eq(TxId(3), TxId(3)));
        let preds = h.causal_predecessors(TxId(3));
        assert!(preds.contains(&TxId(1)) && preds.contains(&TxId(2)) && preds.contains(&TxId(4)));
        assert!(preds.contains(&TxId::INIT));
        assert!(h.is_causally_maximal(TxId(3)));
        assert!(!h.is_causally_maximal(TxId(1)));
    }

    #[test]
    fn causal_sets_match_pairwise_queries() {
        let h = fig3_history();
        let all: Vec<TxId> = std::iter::once(TxId::INIT).chain(h.tx_ids()).collect();
        for t in &all {
            let anc = h.causal_ancestors(*t);
            let desc = h.causal_descendants(*t);
            for u in &all {
                assert_eq!(
                    anc.contains(*u),
                    h.causally_before(*u, *t),
                    "ancestors({t}) disagrees on {u}"
                );
                assert_eq!(
                    desc.contains(*u),
                    h.causally_before(*t, *u),
                    "descendants({t}) disagrees on {u}"
                );
            }
        }
    }

    #[test]
    fn wr_tx_edges_and_so_or_wr() {
        let h = fig3_history();
        assert!(h.wr_tx_edge(TxId(1), TxId(2)));
        assert!(h.wr_tx_edge(TxId(4), TxId(3)));
        assert!(!h.wr_tx_edge(TxId(2), TxId(1)));
        assert!(h.so_or_wr(TxId(2), TxId(4)));
        assert!(!h.so_or_wr(TxId(1), TxId(4)));
        assert_eq!(h.wr_tx_edges().len(), 4);
    }

    #[test]
    fn remove_events_builds_prefix() {
        let h = fig3_history();
        // Remove all events of t3 (session 3).
        let doomed: BTreeSet<EventId> = h.tx(TxId(3)).events.iter().map(|e| e.id).collect();
        let h2 = h.remove_events(&doomed);
        assert_eq!(h2.num_transactions(), 3);
        assert!(!h2.contains_tx(TxId(3)));
        assert!(h2.session_txs(SessionId(3)).is_empty());
        // wr entries of removed reads are gone; others remain.
        assert_eq!(h2.wr_count(), 2);
        // Removing nothing is the identity.
        assert_eq!(h.remove_events(&BTreeSet::new()), h);
        assert_eq!(h.remove_events(&BTreeSet::new()).live_hash(), h.live_hash());
    }

    #[test]
    fn fingerprints_identify_read_from_equivalence() {
        let h1 = fig3_history();
        let h2 = fig3_history();
        assert_eq!(h1.fingerprint(), h2.fingerprint());
        assert_eq!(h1.live_hash(), h2.live_hash());
        // Changing a wr dependency changes the fingerprint.
        let mut h3 = fig3_history();
        let (_, r3x, _, _) = h3
            .reads_from()
            .into_iter()
            .find(|(reader, _, x, _)| *reader == TxId(3) && *x == Var(0))
            .unwrap();
        h3.set_wr(r3x, TxId(2));
        assert_ne!(h1.fingerprint(), h3.fingerprint());
        assert_ne!(h1.live_hash(), h3.live_hash());
    }

    #[test]
    fn fingerprints_are_canonical_in_variable_ids() {
        // Renaming variables (order-preserving or not) leaves the
        // fingerprint unchanged: variables are numbered by first occurrence.
        let h = fig3_history();
        let shifted = h.map_vars(|x| Var(x.0 + 10));
        assert_eq!(h.fingerprint(), shifted.fingerprint());
        let swapped = h.map_vars(|x| Var(1 - x.0));
        assert_eq!(h.fingerprint(), swapped.fingerprint());
    }

    #[test]
    fn map_vars_rewrites_events_and_init_values() {
        let mut h = fig3_history();
        h.set_init_value(Var(0), Value::Int(9));
        let mapped = h.map_vars(|x| Var(x.0 + 5));
        assert_eq!(mapped.init_value(Var(5)), Value::Int(9));
        assert!(mapped.writes_var(TxId(1), Var(5)));
        assert!(!mapped.writes_var(TxId(1), Var(0)));
        assert_eq!(mapped.writers_of(Var(6)), vec![TxId::INIT, TxId(4)]);
        // wr edges and structure are untouched.
        assert_eq!(mapped.wr_count(), h.wr_count());
        assert_eq!(mapped.num_events(), h.num_events());
        // Identity mapping is the identity.
        assert_eq!(h.map_vars(|x| x), h);
        assert_eq!(h.map_vars(|x| x).live_hash(), h.live_hash());
    }

    #[test]
    fn display_does_not_panic() {
        let h = fig3_history();
        let s = h.to_string();
        assert!(s.contains("session"));
        let mut vars = VarTable::new();
        vars.intern("x");
        vars.intern("y");
        let s = h.display_with(&vars).to_string();
        assert!(s.contains("read(x)"));
    }

    #[test]
    fn empty_history_hash_is_not_the_zero_sentinel() {
        // Downstream tables (the engines' direct-mapped memo) use all-zero
        // slots as "empty"; the empty history's hash must not alias them.
        assert_ne!(History::default().live_hash(), (0, 0));
    }

    #[test]
    fn remove_events_keeps_pending_counter_in_sync() {
        // Dooming a transaction's begin while keeping its commit rebuilds a
        // log that is complete from its first event; the O(1) pending
        // counter must agree with the status scan.
        let mut h = History::new([]);
        h.begin_transaction(SessionId(0), TxId(1), 0, ev(1, EventKind::Begin));
        h.append_event(SessionId(0), ev(2, EventKind::Commit));
        let h2 = h.remove_events(&BTreeSet::from([EventId(1)]));
        assert_eq!(h2.num_pending(), h2.pending_txs().len());
        assert_eq!(h2.num_pending(), 0);
        // And symmetrically for a kept abort.
        let mut h = History::new([]);
        h.begin_transaction(SessionId(0), TxId(1), 0, ev(1, EventKind::Begin));
        h.append_event(SessionId(0), ev(2, EventKind::Abort));
        let h2 = h.remove_events(&BTreeSet::from([EventId(1)]));
        assert_eq!(h2.num_pending(), h2.pending_txs().len());
    }

    #[test]
    fn duplicate_init_values_keep_the_last_entry() {
        // Map semantics, as with the previous BTreeMap representation.
        let h = History::new([(Var(0), Value::Int(1)), (Var(0), Value::Int(2))]);
        assert_eq!(h.init_value(Var(0)), Value::Int(2));
        assert_eq!(h.init_values().len(), 1);
        // A non-injective map_vars collapses entries the same way.
        let mut h = History::new([(Var(0), Value::Int(1)), (Var(1), Value::Int(2))]);
        h.set_init_value(Var(0), Value::Int(5));
        let collapsed = h.map_vars(|_| Var(0));
        assert_eq!(collapsed.init_values().len(), 1);
        assert_eq!(collapsed.init_value(Var(0)), Value::Int(2));
    }

    #[test]
    fn init_values_defaults() {
        let mut h = History::new([(Var(0), Value::Int(7))]);
        assert_eq!(h.init_value(Var(0)), Value::Int(7));
        assert_eq!(h.init_value(Var(5)), Value::Int(0));
        h.set_init_value(Var(5), Value::Int(3));
        assert_eq!(h.init_value(Var(5)), Value::Int(3));
        assert_eq!(h.init_values().len(), 2);
    }

    #[test]
    fn checkpoint_rollback_restores_history() {
        let mut h = fig3_history();
        let snapshot = h.clone();
        let hash_before = h.live_hash();
        let mark = h.checkpoint();
        // Mutate: new transaction, events, wr edges.
        h.begin_transaction(SessionId(4), TxId(5), 0, ev(100, EventKind::Begin));
        let r = EventId(101);
        h.append_event(SessionId(4), Event::new(r, EventKind::Read(Var(0))));
        h.set_wr(r, TxId(1));
        h.set_wr(r, TxId(2));
        h.unset_wr(r);
        h.set_wr(r, TxId::INIT);
        h.append_event(SessionId(4), ev(102, EventKind::Commit));
        assert_ne!(h, snapshot);
        assert_eq!(h.max_event_id(), 102);
        h.rollback(mark);
        assert_eq!(h, snapshot);
        assert_eq!(h.live_hash(), hash_before);
        assert_eq!(h.fingerprint(), snapshot.fingerprint());
        assert_eq!(h.max_event_id(), snapshot.max_event_id());
        assert_eq!(h.max_tx_id(), snapshot.max_tx_id());
        assert_eq!(h.num_pending(), snapshot.num_pending());
    }

    #[test]
    fn nested_checkpoints_roll_back_in_lifo_order() {
        let mut h = fig3_history();
        let outer_snapshot = h.clone();
        let outer = h.checkpoint();
        h.begin_transaction(SessionId(4), TxId(5), 0, ev(100, EventKind::Begin));
        let inner_snapshot = h.clone();
        let inner = h.checkpoint();
        let r = EventId(101);
        h.append_event(SessionId(4), Event::new(r, EventKind::Read(Var(0))));
        h.set_wr(r, TxId(1));
        h.unset_wr(r);
        h.rollback(inner);
        assert_eq!(h, inner_snapshot);
        h.rollback(outer);
        assert_eq!(h, outer_snapshot);
    }

    #[test]
    fn pop_event_is_journaled_and_inverse_of_append() {
        let mut h = fig3_history();
        let snapshot = h.clone();
        let mark = h.checkpoint();
        // Pop t3's commit and the read of y (after unsetting its wr).
        let commit = h.pop_event(SessionId(3));
        assert!(commit.kind.is_commit());
        assert_eq!(h.num_pending(), 1);
        let r3y = h.tx(TxId(3)).events.last().unwrap().id;
        h.unset_wr(r3y);
        let read = h.pop_event(SessionId(3));
        assert!(read.kind.is_read());
        h.rollback(mark);
        assert_eq!(h, snapshot);
        assert_eq!(h.live_hash(), snapshot.live_hash());
        assert_eq!(h.num_pending(), 0);
    }

    #[test]
    #[should_panic(expected = "still has a wr dependency")]
    fn pop_event_requires_wr_unset() {
        let mut h = fig3_history();
        h.pop_event(SessionId(3)); // commit
        h.pop_event(SessionId(3)); // read(y) with live wr edge: panic
    }

    #[test]
    fn live_hash_matches_recomputation() {
        let mut h = fig3_history();
        let incremental = h.live_hash();
        h.recompute_live_hash();
        assert_eq!(h.live_hash(), incremental);
    }

    #[test]
    fn equality_is_representation_independent() {
        // A history rebuilt through remove_events has a different arena
        // layout (session-major slots) but must compare equal.
        let h = fig3_history();
        let rebuilt = h.remove_events(&BTreeSet::new());
        assert_eq!(h, rebuilt);
        assert_eq!(rebuilt, h);
        assert_eq!(h.fingerprint(), rebuilt.fingerprint());
        assert_eq!(h.live_hash(), rebuilt.live_hash());
    }
}
