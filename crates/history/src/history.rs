//! Histories: the abstract representation of an execution's interaction
//! with the database (Definition 2.1).
//!
//! A history is a set of transaction logs together with a session order
//! `so` and a write-read (read-from) relation `wr` that associates every
//! external read with the transaction it reads from. The distinguished
//! initial transaction [`TxId::INIT`] writes the initial value of every
//! global variable and precedes all other transactions in `so`; it is kept
//! implicit (no explicit transaction log) which matches the paper's
//! treatment of `init` in figures.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use crate::event::{Event, EventId, EventKind};
use crate::transaction::{SessionId, TransactionLog, TxId};
use crate::value::{Value, Var, VarTable};

/// A history `⟨T, so, wr⟩` (Definition 2.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct History {
    /// Initial values of global variables, written by the implicit `init`
    /// transaction. Variables absent from the map have value `Value::Int(0)`.
    init_values: BTreeMap<Var, Value>,
    /// Transaction logs, excluding the implicit initial transaction.
    transactions: BTreeMap<TxId, TransactionLog>,
    /// Session order: for each session, the sequence of its transactions.
    sessions: BTreeMap<SessionId, Vec<TxId>>,
    /// Write-read relation: external read event ↦ transaction it reads from.
    wr: BTreeMap<EventId, TxId>,
    /// Reverse index: event ↦ owning transaction (excludes `init`).
    event_owner: BTreeMap<EventId, TxId>,
}

impl History {
    /// Creates an empty history whose initial transaction writes the given
    /// initial values. Variables not listed default to `0`.
    pub fn new<I: IntoIterator<Item = (Var, Value)>>(init_values: I) -> Self {
        History {
            init_values: init_values.into_iter().collect(),
            transactions: BTreeMap::new(),
            sessions: BTreeMap::new(),
            wr: BTreeMap::new(),
            event_owner: BTreeMap::new(),
        }
    }

    /// The initial value of a global variable (default `0`).
    pub fn init_value(&self, x: Var) -> Value {
        self.init_values.get(&x).cloned().unwrap_or_default()
    }

    /// Sets the initial value written by the `init` transaction for `x`.
    pub fn set_init_value(&mut self, x: Var, v: Value) {
        self.init_values.insert(x, v);
    }

    /// All initial values explicitly recorded.
    pub fn init_values(&self) -> &BTreeMap<Var, Value> {
        &self.init_values
    }

    // ------------------------------------------------------------------
    // Structure: transactions, sessions, events
    // ------------------------------------------------------------------

    /// Identifiers of all non-initial transactions.
    pub fn tx_ids(&self) -> impl Iterator<Item = TxId> + '_ {
        self.transactions.keys().copied()
    }

    /// All non-initial transaction logs.
    pub fn transactions(&self) -> impl Iterator<Item = &TransactionLog> {
        self.transactions.values()
    }

    /// Number of non-initial transactions.
    pub fn num_transactions(&self) -> usize {
        self.transactions.len()
    }

    /// Total number of events (excluding the implicit init writes).
    pub fn num_events(&self) -> usize {
        self.event_owner.len()
    }

    /// The transaction log with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is [`TxId::INIT`] or unknown.
    pub fn tx(&self, id: TxId) -> &TransactionLog {
        self.transactions
            .get(&id)
            .unwrap_or_else(|| panic!("unknown transaction {id}"))
    }

    /// The transaction log with the given id, if it exists (never for init).
    pub fn get_tx(&self, id: TxId) -> Option<&TransactionLog> {
        self.transactions.get(&id)
    }

    /// Whether the history contains the given transaction (init always counts).
    pub fn contains_tx(&self, id: TxId) -> bool {
        id.is_init() || self.transactions.contains_key(&id)
    }

    /// Session order as stored: for each session, its transaction sequence.
    pub fn sessions(&self) -> &BTreeMap<SessionId, Vec<TxId>> {
        &self.sessions
    }

    /// Transactions of a session in session order.
    pub fn session_txs(&self, s: SessionId) -> &[TxId] {
        self.sessions.get(&s).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The last transaction of a session, if the session started any.
    pub fn last_tx_of_session(&self, s: SessionId) -> Option<TxId> {
        self.sessions.get(&s).and_then(|v| v.last().copied())
    }

    /// Owning transaction of an event.
    pub fn tx_of_event(&self, e: EventId) -> Option<TxId> {
        self.event_owner.get(&e).copied()
    }

    /// The event with the given identifier.
    pub fn event(&self, e: EventId) -> Option<&Event> {
        let tx = self.tx_of_event(e)?;
        self.tx(tx).event(e)
    }

    /// Iterates over all events of the history with their owning transaction.
    pub fn events(&self) -> impl Iterator<Item = (TxId, &Event)> {
        self.transactions
            .values()
            .flat_map(|t| t.events.iter().map(move |e| (t.id, e)))
    }

    /// Pending (incomplete) transactions.
    pub fn pending_txs(&self) -> Vec<TxId> {
        self.transactions
            .values()
            .filter(|t| t.is_pending())
            .map(|t| t.id)
            .collect()
    }

    /// Number of pending transactions.
    pub fn num_pending(&self) -> usize {
        self.transactions
            .values()
            .filter(|t| t.is_pending())
            .count()
    }

    /// Committed transactions, *excluding* the implicit init transaction.
    pub fn committed_txs(&self) -> Vec<TxId> {
        self.transactions
            .values()
            .filter(|t| t.is_committed())
            .map(|t| t.id)
            .collect()
    }

    /// Whether a transaction is committed. The init transaction is committed.
    pub fn is_committed(&self, t: TxId) -> bool {
        t.is_init() || self.get_tx(t).is_some_and(|t| t.is_committed())
    }

    /// Whether a transaction is complete (committed or aborted).
    pub fn is_complete_tx(&self, t: TxId) -> bool {
        t.is_init() || self.get_tx(t).is_some_and(|t| t.is_complete())
    }

    // ------------------------------------------------------------------
    // Mutation
    // ------------------------------------------------------------------

    /// Starts a new transaction in session `s` with the given begin event,
    /// appending it to the session order.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already used, is the init id, or the event is not a
    /// begin event.
    pub fn begin_transaction(
        &mut self,
        s: SessionId,
        id: TxId,
        program_index: usize,
        begin: Event,
    ) {
        assert!(!id.is_init(), "cannot begin the init transaction");
        assert!(
            !self.transactions.contains_key(&id),
            "transaction {id} already exists"
        );
        assert!(begin.kind.is_begin(), "first event must be begin");
        let mut log = TransactionLog::new(id, s, program_index);
        self.event_owner.insert(begin.id, id);
        log.push(begin);
        self.transactions.insert(id, log);
        self.sessions.entry(s).or_default().push(id);
    }

    /// Appends an event to the last (pending) transaction of session `s`
    /// and returns the owning transaction id.
    ///
    /// # Panics
    ///
    /// Panics if the session has no pending last transaction.
    pub fn append_event(&mut self, s: SessionId, event: Event) -> TxId {
        let tx = self
            .last_tx_of_session(s)
            .unwrap_or_else(|| panic!("session {s} has no transaction"));
        let log = self.transactions.get_mut(&tx).expect("tx exists");
        assert!(log.is_pending(), "last transaction of {s} is complete");
        self.event_owner.insert(event.id, tx);
        log.push(event);
        tx
    }

    /// Adds (or replaces) a write-read dependency `wr(writer, read)`.
    ///
    /// # Panics
    ///
    /// Panics if the read event is unknown, not a read, or the writer does
    /// not write the read's variable.
    pub fn set_wr(&mut self, read: EventId, writer: TxId) {
        let e = self.event(read).expect("read event must be in the history");
        let x = match &e.kind {
            EventKind::Read(x) => *x,
            other => panic!("wr target must be a read event, got {other}"),
        };
        assert!(
            self.writes_var(writer, x),
            "wr source {writer} does not write {x}"
        );
        self.wr.insert(read, writer);
    }

    /// Removes the wr dependency of a read, if any.
    pub fn clear_wr(&mut self, read: EventId) {
        self.wr.remove(&read);
    }

    // ------------------------------------------------------------------
    // Write-read relation
    // ------------------------------------------------------------------

    /// The transaction a read event reads from, if it has a wr dependency.
    pub fn wr_of(&self, read: EventId) -> Option<TxId> {
        self.wr.get(&read).copied()
    }

    /// The full write-read relation (read event ↦ writer transaction).
    pub fn wr(&self) -> &BTreeMap<EventId, TxId> {
        &self.wr
    }

    /// Whether `(a, b)` is in the transaction-level write-read relation:
    /// some read of `b` reads from `a`.
    pub fn wr_tx_edge(&self, a: TxId, b: TxId) -> bool {
        self.wr
            .iter()
            .any(|(r, w)| *w == a && self.tx_of_event(*r) == Some(b))
    }

    /// All transaction-level write-read edges `(writer, reader)`.
    pub fn wr_tx_edges(&self) -> BTreeSet<(TxId, TxId)> {
        self.wr
            .iter()
            .filter_map(|(r, w)| Some((*w, self.tx_of_event(*r)?)))
            .filter(|(w, r)| w != r)
            .collect()
    }

    /// External reads together with their variable, reader and writer:
    /// `(reader, read event, variable, writer)`.
    pub fn reads_from(&self) -> Vec<(TxId, EventId, Var, TxId)> {
        let mut out = Vec::new();
        for (r, w) in &self.wr {
            let reader = self.tx_of_event(*r).expect("read owner");
            let x = self
                .event(*r)
                .and_then(Event::var)
                .expect("read has a variable");
            out.push((reader, *r, x, *w));
        }
        out
    }

    // ------------------------------------------------------------------
    // Writers / read values
    // ------------------------------------------------------------------

    /// Whether transaction `t` writes variable `x` (visible writes). The
    /// init transaction writes every variable.
    pub fn writes_var(&self, t: TxId, x: Var) -> bool {
        if t.is_init() {
            return true;
        }
        self.get_tx(t).is_some_and(|t| t.writes_var(x))
    }

    /// The value of `t`'s visible write to `x`, if `t` writes `x`.
    pub fn visible_write_value(&self, t: TxId, x: Var) -> Option<Value> {
        if t.is_init() {
            return Some(self.init_value(x));
        }
        self.get_tx(t)?.visible_write_value(x).cloned()
    }

    /// All transactions (including `init` and pending ones, excluding
    /// aborted ones) that write variable `x`.
    pub fn writers_of(&self, x: Var) -> Vec<TxId> {
        let mut out = vec![TxId::INIT];
        out.extend(
            self.transactions
                .values()
                .filter(|t| t.writes_var(x))
                .map(|t| t.id),
        );
        out
    }

    /// Committed transactions (including `init`) that write variable `x`.
    /// These are the candidate sources of a wr dependency in the semantics.
    pub fn committed_writers_of(&self, x: Var) -> Vec<TxId> {
        let mut out = vec![TxId::INIT];
        out.extend(
            self.transactions
                .values()
                .filter(|t| t.is_committed() && t.writes_var(x))
                .map(|t| t.id),
        );
        out
    }

    /// The value returned by a read event: the last po-preceding write of
    /// the same transaction for internal reads, otherwise the visible write
    /// of the transaction designated by `wr`.
    pub fn read_value(&self, read: EventId) -> Option<Value> {
        let owner = self.tx_of_event(read)?;
        let log = self.get_tx(owner)?;
        let x = log.event(read)?.var()?;
        if let Some(v) = log.last_write_before(x, read) {
            return Some(v.clone());
        }
        let writer = self.wr_of(read)?;
        self.visible_write_value(writer, x)
    }

    // ------------------------------------------------------------------
    // Session order and causal order
    // ------------------------------------------------------------------

    /// Whether `(a, b)` is in the session order `so`: the init transaction
    /// precedes every other transaction, and transactions of the same
    /// session are ordered by their position.
    pub fn so_before(&self, a: TxId, b: TxId) -> bool {
        if a == b {
            return false;
        }
        if a.is_init() {
            return true;
        }
        if b.is_init() {
            return false;
        }
        let (ta, tb) = match (self.get_tx(a), self.get_tx(b)) {
            (Some(x), Some(y)) => (x, y),
            _ => return false,
        };
        if ta.session != tb.session {
            return false;
        }
        let seq = self.session_txs(ta.session);
        let pa = seq.iter().position(|t| *t == a);
        let pb = seq.iter().position(|t| *t == b);
        matches!((pa, pb), (Some(i), Some(j)) if i < j)
    }

    /// Whether `(a, b)` is in `so ∪ wr` (transaction level).
    pub fn so_or_wr(&self, a: TxId, b: TxId) -> bool {
        self.so_before(a, b) || self.wr_tx_edge(a, b)
    }

    /// Immediate `so ∪ wr` successors of a transaction, used for causal
    /// reachability. For init, the first transaction of each session.
    fn so_wr_successors(&self, t: TxId) -> Vec<TxId> {
        let mut succ = Vec::new();
        if t.is_init() {
            for txs in self.sessions.values() {
                if let Some(first) = txs.first() {
                    succ.push(*first);
                }
            }
        } else if let Some(log) = self.get_tx(t) {
            let seq = self.session_txs(log.session);
            if let Some(pos) = seq.iter().position(|x| *x == t) {
                if pos + 1 < seq.len() {
                    succ.push(seq[pos + 1]);
                }
            }
        }
        for (r, w) in &self.wr {
            if *w == t {
                if let Some(reader) = self.tx_of_event(*r) {
                    if reader != t && !succ.contains(&reader) {
                        succ.push(reader);
                    }
                }
            }
        }
        succ
    }

    /// Whether `(a, b)` is in the causal order `(so ∪ wr)+`.
    pub fn causally_before(&self, a: TxId, b: TxId) -> bool {
        if a == b {
            return false;
        }
        if a.is_init() {
            return !b.is_init();
        }
        if b.is_init() {
            return false;
        }
        let mut seen = BTreeSet::new();
        let mut queue: VecDeque<TxId> = self.so_wr_successors(a).into();
        while let Some(t) = queue.pop_front() {
            if t == b {
                return true;
            }
            if seen.insert(t) {
                queue.extend(self.so_wr_successors(t));
            }
        }
        false
    }

    /// Whether `(a, b)` is in `(so ∪ wr)*` (reflexive causal order).
    pub fn causally_before_eq(&self, a: TxId, b: TxId) -> bool {
        a == b || self.causally_before(a, b)
    }

    /// All causal predecessors of `t`: transactions `t'` with
    /// `(t', t) ∈ (so ∪ wr)+`. Always contains [`TxId::INIT`] for `t ≠ init`.
    pub fn causal_predecessors(&self, t: TxId) -> BTreeSet<TxId> {
        let mut preds = BTreeSet::new();
        if t.is_init() {
            return preds;
        }
        // Reverse reachability by scanning all transactions (histories are small).
        let mut all: Vec<TxId> = vec![TxId::INIT];
        all.extend(self.tx_ids());
        for a in all {
            if a != t && self.causally_before(a, t) {
                preds.insert(a);
            }
        }
        preds
    }

    /// Whether `t` is `(so ∪ wr)+`-maximal: no transaction is causally after it.
    pub fn is_causally_maximal(&self, t: TxId) -> bool {
        !self
            .tx_ids()
            .chain(std::iter::once(TxId::INIT))
            .any(|other| other != t && self.causally_before(t, other))
    }

    // ------------------------------------------------------------------
    // Prefix construction (event removal)
    // ------------------------------------------------------------------

    /// Returns the history obtained by deleting the given events from its
    /// transaction logs (`h \ D` in §5.2). Transaction logs that become
    /// empty are removed altogether; wr dependencies whose read was removed
    /// are dropped.
    pub fn remove_events(&self, doomed: &BTreeSet<EventId>) -> History {
        let mut h = History {
            init_values: self.init_values.clone(),
            transactions: BTreeMap::new(),
            sessions: BTreeMap::new(),
            wr: BTreeMap::new(),
            event_owner: BTreeMap::new(),
        };
        for (s, txs) in &self.sessions {
            let mut kept_txs = Vec::new();
            for t in txs {
                let log = &self.transactions[t];
                let kept: Vec<Event> = log
                    .events
                    .iter()
                    .filter(|e| !doomed.contains(&e.id))
                    .cloned()
                    .collect();
                if kept.is_empty() {
                    continue;
                }
                let mut new_log = TransactionLog::new(log.id, log.session, log.program_index);
                for e in kept {
                    h.event_owner.insert(e.id, log.id);
                    new_log.events.push(e);
                }
                h.transactions.insert(log.id, new_log);
                kept_txs.push(*t);
            }
            if !kept_txs.is_empty() {
                h.sessions.insert(*s, kept_txs);
            }
        }
        for (r, w) in &self.wr {
            if h.event_owner.contains_key(r) && h.contains_tx(*w) {
                h.wr.insert(*r, *w);
            }
        }
        h
    }

    // ------------------------------------------------------------------
    // Fingerprints (read-from equivalence)
    // ------------------------------------------------------------------

    /// A canonical, identifier-independent summary of the history used to
    /// compare histories up to read-from equivalence (same events per
    /// session/transaction and same `po`, `so`, `wr`).
    ///
    /// Transactions are identified by their `(session, index)` coordinates
    /// and variables by their order of first occurrence (scanning sessions,
    /// then transactions, then events), so the fingerprint is independent
    /// of both [`TxId`] allocation and [`crate::VarTable`] interning order.
    /// The latter makes fingerprints comparable across explorations that
    /// interned variables in different orders (e.g. parallel workers
    /// resolving dynamically indexed globals on different branches first).
    /// For histories generated from the same program this renaming is
    /// lossless: the events' structure, written values and read-from
    /// sources determine every resolved variable name.
    pub fn fingerprint(&self) -> HistoryFingerprint {
        // Map every transaction to its canonical coordinates (session, index).
        let coord = |t: TxId| -> WriterRef {
            if t.is_init() {
                WriterRef::Init
            } else {
                let log = self.tx(t);
                let idx = self
                    .session_txs(log.session)
                    .iter()
                    .position(|x| *x == t)
                    .expect("transaction listed in its session");
                WriterRef::Tx(log.session.0, idx)
            }
        };
        // Map every variable to its first-occurrence index.
        let mut var_ids: BTreeMap<Var, u32> = BTreeMap::new();
        let mut canon = |x: Var| -> Var {
            let next = var_ids.len() as u32;
            Var(*var_ids.entry(x).or_insert(next))
        };
        let mut sessions = Vec::new();
        for (s, txs) in &self.sessions {
            let mut fp_txs = Vec::new();
            for t in txs {
                let log = &self.transactions[t];
                let mut evs = Vec::new();
                for e in &log.events {
                    let fp = match &e.kind {
                        EventKind::Begin => EventFingerprint::Begin,
                        EventKind::Commit => EventFingerprint::Commit,
                        EventKind::Abort => EventFingerprint::Abort,
                        EventKind::Write(x, v) => EventFingerprint::Write(canon(*x), v.clone()),
                        EventKind::Read(x) => {
                            EventFingerprint::Read(canon(*x), self.wr_of(e.id).map(coord))
                        }
                    };
                    evs.push(fp);
                }
                fp_txs.push(evs);
            }
            sessions.push((s.0, fp_txs));
        }
        HistoryFingerprint { sessions }
    }

    /// A 128-bit hash of the canonical fingerprint, computed by streaming
    /// the canonical structure into two independent hashers instead of
    /// materialising [`HistoryFingerprint`]'s nested vectors (which clones
    /// every event payload). Two histories with equal fingerprints always
    /// have equal hashes; the converse holds up to the negligible collision
    /// probability of 128 bits (hash compaction, as classically used by
    /// stateless model checkers for visited-state sets).
    pub fn fingerprint_hash(&self) -> (u64, u64) {
        // Two independent multiply-xorshift streams fed word by word: far
        // cheaper per word than a keyed hash, which matters because the
        // memoised engines hash one history per consistency check.
        struct Mix(u64, u64);
        impl Mix {
            #[inline]
            fn add(&mut self, v: u64) {
                self.0 = (self.0 ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                self.0 ^= self.0 >> 29;
                self.1 = (self.1.rotate_left(23) ^ v).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
                self.1 ^= self.1 >> 31;
            }
        }
        let mut mix = Mix(0x243f_6a88_85a3_08d3, 0x1319_8a2e_0370_7344);
        // First-occurrence numbering of variables, as in `fingerprint`.
        // Histories touch few distinct variables, so a linear scan beats a
        // map here.
        let mut var_ids: Vec<Var> = Vec::new();
        let mut canon = |x: Var| -> u64 {
            match var_ids.iter().position(|y| *y == x) {
                Some(i) => i as u64,
                None => {
                    var_ids.push(x);
                    (var_ids.len() - 1) as u64
                }
            }
        };
        let coord = |t: TxId| -> u64 {
            if t.is_init() {
                u64::MAX
            } else {
                let log = self.tx(t);
                let idx = self
                    .session_txs(log.session)
                    .iter()
                    .position(|x| *x == t)
                    .expect("transaction listed in its session");
                ((log.session.0 as u64) << 32) | idx as u64
            }
        };
        for (s, txs) in &self.sessions {
            mix.add(s.0 as u64);
            mix.add(txs.len() as u64);
            for t in txs {
                let log = &self.transactions[t];
                mix.add(log.events.len() as u64);
                for e in &log.events {
                    match &e.kind {
                        EventKind::Begin => mix.add(0),
                        EventKind::Commit => mix.add(1),
                        EventKind::Abort => mix.add(2),
                        EventKind::Write(x, v) => {
                            mix.add(3);
                            mix.add(canon(*x));
                            match v {
                                Value::Int(i) => {
                                    mix.add(0);
                                    mix.add(*i as u64);
                                }
                                Value::Set(s) => {
                                    mix.add(1);
                                    mix.add(s.len() as u64);
                                    for id in s {
                                        mix.add(*id as u64);
                                    }
                                }
                            }
                        }
                        EventKind::Read(x) => {
                            mix.add(4);
                            mix.add(canon(*x));
                            match self.wr_of(e.id) {
                                None => mix.add(0),
                                Some(w) => {
                                    mix.add(1);
                                    mix.add(coord(w));
                                }
                            }
                        }
                    }
                }
            }
        }
        (mix.0, mix.1)
    }

    // ------------------------------------------------------------------
    // Variable renaming
    // ------------------------------------------------------------------

    /// Returns the history with every variable replaced by `f(var)`,
    /// including the init values. Used to translate histories produced
    /// against one [`crate::VarTable`] into another (e.g. when merging the
    /// outputs of parallel exploration workers).
    ///
    /// `f` must be injective on the variables of the history, otherwise
    /// distinct variables would be conflated.
    pub fn map_vars(&self, mut f: impl FnMut(Var) -> Var) -> History {
        let mut h = self.clone();
        h.init_values = self
            .init_values
            .iter()
            .map(|(x, v)| (f(*x), v.clone()))
            .collect();
        for log in h.transactions.values_mut() {
            for e in &mut log.events {
                match &mut e.kind {
                    EventKind::Read(x) | EventKind::Write(x, _) => *x = f(*x),
                    _ => {}
                }
            }
        }
        h
    }
}

impl Default for History {
    fn default() -> Self {
        History::new(std::iter::empty())
    }
}

/// Reference to a writer transaction inside a [`HistoryFingerprint`],
/// identified canonically by session and position rather than by [`TxId`].
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WriterRef {
    /// The initial transaction.
    Init,
    /// The `index`-th transaction of session `session`.
    Tx(u32, usize),
}

/// Canonical summary of a single event inside a [`HistoryFingerprint`].
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventFingerprint {
    /// Begin event.
    Begin,
    /// Commit event.
    Commit,
    /// Abort event.
    Abort,
    /// Read of a variable, annotated with the writer it reads from
    /// (`None` for internal reads).
    Read(Var, Option<WriterRef>),
    /// Write of a value to a variable.
    Write(Var, Value),
}

/// Identifier-independent representation of a history, suitable for
/// detecting duplicate outputs of an exploration (read-from equivalence).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HistoryFingerprint {
    /// For each session (by id), the event fingerprints of its transactions
    /// in session order.
    pub sessions: Vec<(u32, Vec<Vec<EventFingerprint>>)>,
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (s, txs) in &self.sessions {
            writeln!(f, "session {s}:")?;
            for t in txs {
                let log = &self.transactions[t];
                write!(f, "  {t} [{:?}]:", log.status())?;
                for e in &log.events {
                    write!(f, " {}", e.kind)?;
                    if let Some(w) = self.wr_of(e.id) {
                        write!(f, "<-{w}")?;
                    }
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

/// Helper for rendering a history with human-readable variable names.
#[derive(Debug)]
pub struct HistoryDisplay<'a> {
    history: &'a History,
    vars: &'a VarTable,
}

impl History {
    /// Renders the history using variable names from `vars`.
    pub fn display_with<'a>(&'a self, vars: &'a VarTable) -> HistoryDisplay<'a> {
        HistoryDisplay {
            history: self,
            vars,
        }
    }
}

impl fmt::Display for HistoryDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let h = self.history;
        for (s, txs) in &h.sessions {
            writeln!(f, "session {s}:")?;
            for t in txs {
                let log = &h.transactions[t];
                write!(f, "  {t} [{:?}]:", log.status())?;
                for e in &log.events {
                    match &e.kind {
                        EventKind::Read(x) => {
                            write!(f, " read({})", self.vars.name(*x))?;
                            if let Some(w) = h.wr_of(e.id) {
                                write!(f, "<-{w}")?;
                            }
                        }
                        EventKind::Write(x, v) => {
                            write!(f, " write({},{v})", self.vars.name(*x))?;
                        }
                        other => write!(f, " {other}")?,
                    }
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u32, kind: EventKind) -> Event {
        Event::new(EventId(id), kind)
    }

    /// Builds the Causal Consistency violation history of Fig. 3:
    /// t1: write(x,1); t2: read(x)<-t1, write(x,2); t3: read(x)<-t1, read(y)<-t4;
    /// t4: read(x)<-t2, write(y,1).
    fn fig3_history() -> History {
        let x = Var(0);
        let y = Var(1);
        let mut h = History::new([]);
        let mut next = 0u32;
        let mut fresh = || {
            next += 1;
            EventId(next)
        };
        // t1 in session 0
        h.begin_transaction(SessionId(0), TxId(1), 0, ev(fresh().0, EventKind::Begin));
        h.append_event(
            SessionId(0),
            Event::new(fresh(), EventKind::Write(x, Value::Int(1))),
        );
        h.append_event(SessionId(0), Event::new(fresh(), EventKind::Commit));
        // t2 in session 1
        h.begin_transaction(SessionId(1), TxId(2), 0, ev(fresh().0, EventKind::Begin));
        let r2 = fresh();
        h.append_event(SessionId(1), Event::new(r2, EventKind::Read(x)));
        h.append_event(
            SessionId(1),
            Event::new(fresh(), EventKind::Write(x, Value::Int(2))),
        );
        h.append_event(SessionId(1), Event::new(fresh(), EventKind::Commit));
        // t4 in session 2
        h.begin_transaction(SessionId(2), TxId(4), 0, ev(fresh().0, EventKind::Begin));
        let r4 = fresh();
        h.append_event(SessionId(2), Event::new(r4, EventKind::Read(x)));
        h.append_event(
            SessionId(2),
            Event::new(fresh(), EventKind::Write(y, Value::Int(1))),
        );
        h.append_event(SessionId(2), Event::new(fresh(), EventKind::Commit));
        // t3 in session 3
        h.begin_transaction(SessionId(3), TxId(3), 0, ev(fresh().0, EventKind::Begin));
        let r3x = fresh();
        h.append_event(SessionId(3), Event::new(r3x, EventKind::Read(x)));
        let r3y = fresh();
        h.append_event(SessionId(3), Event::new(r3y, EventKind::Read(y)));
        h.append_event(SessionId(3), Event::new(fresh(), EventKind::Commit));
        h.set_wr(r2, TxId(1));
        h.set_wr(r4, TxId(2));
        h.set_wr(r3x, TxId(1));
        h.set_wr(r3y, TxId(4));
        h
    }

    #[test]
    fn structure_queries() {
        let h = fig3_history();
        assert_eq!(h.num_transactions(), 4);
        assert_eq!(h.pending_txs().len(), 0);
        assert_eq!(h.committed_txs().len(), 4);
        assert!(h.is_committed(TxId::INIT));
        assert!(h.contains_tx(TxId::INIT));
        assert!(h.contains_tx(TxId(2)));
        assert!(!h.contains_tx(TxId(9)));
        assert_eq!(h.session_txs(SessionId(1)), &[TxId(2)]);
        assert_eq!(h.last_tx_of_session(SessionId(3)), Some(TxId(3)));
        assert_eq!(h.last_tx_of_session(SessionId(9)), None);
        assert_eq!(h.events().count(), h.num_events());
    }

    #[test]
    fn writers_and_values() {
        let h = fig3_history();
        let x = Var(0);
        let y = Var(1);
        assert!(h.writes_var(TxId::INIT, x));
        assert!(h.writes_var(TxId(1), x));
        assert!(h.writes_var(TxId(2), x));
        assert!(!h.writes_var(TxId(3), x));
        let wx = h.writers_of(x);
        assert!(wx.contains(&TxId::INIT) && wx.contains(&TxId(1)) && wx.contains(&TxId(2)));
        assert!(!wx.contains(&TxId(4)));
        assert_eq!(h.visible_write_value(TxId(2), x), Some(Value::Int(2)));
        assert_eq!(h.visible_write_value(TxId::INIT, y), Some(Value::Int(0)));
        assert_eq!(h.committed_writers_of(y), vec![TxId::INIT, TxId(4)]);
    }

    #[test]
    fn read_values_follow_wr() {
        let h = fig3_history();
        // t4's read of x reads from t2 which wrote 2.
        let (_, r4, _, w) = h
            .reads_from()
            .into_iter()
            .find(|(reader, _, _, _)| *reader == TxId(4))
            .unwrap();
        assert_eq!(w, TxId(2));
        assert_eq!(h.read_value(r4), Some(Value::Int(2)));
    }

    #[test]
    fn session_and_causal_order() {
        let h = fig3_history();
        assert!(h.so_before(TxId::INIT, TxId(3)));
        assert!(!h.so_before(TxId(3), TxId::INIT));
        assert!(!h.so_before(TxId(1), TxId(2))); // different sessions
        assert!(h.causally_before(TxId(1), TxId(2))); // via wr
        assert!(h.causally_before(TxId(2), TxId(3))); // t2 -> t4 -> t3
        assert!(h.causally_before(TxId::INIT, TxId(4)));
        assert!(!h.causally_before(TxId(3), TxId(1)));
        assert!(h.causally_before_eq(TxId(3), TxId(3)));
        let preds = h.causal_predecessors(TxId(3));
        assert!(preds.contains(&TxId(1)) && preds.contains(&TxId(2)) && preds.contains(&TxId(4)));
        assert!(preds.contains(&TxId::INIT));
        assert!(h.is_causally_maximal(TxId(3)));
        assert!(!h.is_causally_maximal(TxId(1)));
    }

    #[test]
    fn wr_tx_edges_and_so_or_wr() {
        let h = fig3_history();
        assert!(h.wr_tx_edge(TxId(1), TxId(2)));
        assert!(h.wr_tx_edge(TxId(4), TxId(3)));
        assert!(!h.wr_tx_edge(TxId(2), TxId(1)));
        assert!(h.so_or_wr(TxId(2), TxId(4)));
        assert!(!h.so_or_wr(TxId(1), TxId(4)));
        assert_eq!(h.wr_tx_edges().len(), 4);
    }

    #[test]
    fn remove_events_builds_prefix() {
        let h = fig3_history();
        // Remove all events of t3 (session 3).
        let doomed: BTreeSet<EventId> = h.tx(TxId(3)).events.iter().map(|e| e.id).collect();
        let h2 = h.remove_events(&doomed);
        assert_eq!(h2.num_transactions(), 3);
        assert!(!h2.contains_tx(TxId(3)));
        assert!(h2.sessions().get(&SessionId(3)).is_none());
        // wr entries of removed reads are gone; others remain.
        assert_eq!(h2.wr().len(), 2);
        // Removing nothing is the identity.
        assert_eq!(h.remove_events(&BTreeSet::new()), h);
    }

    #[test]
    fn fingerprints_identify_read_from_equivalence() {
        let h1 = fig3_history();
        let h2 = fig3_history();
        assert_eq!(h1.fingerprint(), h2.fingerprint());
        // Changing a wr dependency changes the fingerprint.
        let mut h3 = fig3_history();
        let (_, r3x, _, _) = h3
            .reads_from()
            .into_iter()
            .find(|(reader, _, x, _)| *reader == TxId(3) && *x == Var(0))
            .unwrap();
        h3.set_wr(r3x, TxId(2));
        assert_ne!(h1.fingerprint(), h3.fingerprint());
    }

    #[test]
    fn fingerprints_are_canonical_in_variable_ids() {
        // Renaming variables (order-preserving or not) leaves the
        // fingerprint unchanged: variables are numbered by first occurrence.
        let h = fig3_history();
        let shifted = h.map_vars(|x| Var(x.0 + 10));
        assert_eq!(h.fingerprint(), shifted.fingerprint());
        let swapped = h.map_vars(|x| Var(1 - x.0));
        assert_eq!(h.fingerprint(), swapped.fingerprint());
    }

    #[test]
    fn map_vars_rewrites_events_and_init_values() {
        let mut h = fig3_history();
        h.set_init_value(Var(0), Value::Int(9));
        let mapped = h.map_vars(|x| Var(x.0 + 5));
        assert_eq!(mapped.init_value(Var(5)), Value::Int(9));
        assert!(mapped.writes_var(TxId(1), Var(5)));
        assert!(!mapped.writes_var(TxId(1), Var(0)));
        assert_eq!(mapped.writers_of(Var(6)), vec![TxId::INIT, TxId(4)]);
        // wr edges and structure are untouched.
        assert_eq!(mapped.wr().len(), h.wr().len());
        assert_eq!(mapped.num_events(), h.num_events());
        // Identity mapping is the identity.
        assert_eq!(h.map_vars(|x| x), h);
    }

    #[test]
    fn display_does_not_panic() {
        let h = fig3_history();
        let s = h.to_string();
        assert!(s.contains("session"));
        let mut vars = VarTable::new();
        vars.intern("x");
        vars.intern("y");
        let s = h.display_with(&vars).to_string();
        assert!(s.contains("read(x)"));
    }

    #[test]
    fn init_values_defaults() {
        let mut h = History::new([(Var(0), Value::Int(7))]);
        assert_eq!(h.init_value(Var(0)), Value::Int(7));
        assert_eq!(h.init_value(Var(5)), Value::Int(0));
        h.set_init_value(Var(5), Value::Int(3));
        assert_eq!(h.init_value(Var(5)), Value::Int(3));
        assert_eq!(h.init_values().len(), 2);
    }
}
