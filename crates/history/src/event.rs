//! Events: the atomic interactions between a program and the database.
//!
//! Executing a database instruction is represented by an event `⟨e, type⟩`
//! where `e` is an identifier and `type` is one of `begin`, `commit`,
//! `abort`, `read(x)` or `write(x, v)` (§2.2.1).

use std::fmt;

use crate::value::{Value, Var};

/// A globally unique event identifier, allocated by the exploration engine.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u32);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The five kinds of events of the paper's history model.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// Start of a transaction; minimal element of the transaction's program order.
    Begin,
    /// Successful end of a transaction; maximal element of its program order.
    Commit,
    /// Unsuccessful end of a transaction (executed `abort` instruction).
    Abort,
    /// Read of a global variable. The returned value is *not* stored in the
    /// event; it is determined by the write-read relation of the history.
    Read(Var),
    /// Write of a value to a global variable.
    Write(Var, Value),
}

impl EventKind {
    /// The global variable accessed by a read or write event.
    pub fn var(&self) -> Option<Var> {
        match self {
            EventKind::Read(x) => Some(*x),
            EventKind::Write(x, _) => Some(*x),
            _ => None,
        }
    }

    /// Whether this is a `read(x)` event.
    pub fn is_read(&self) -> bool {
        matches!(self, EventKind::Read(_))
    }

    /// Whether this is a `write(x, v)` event.
    pub fn is_write(&self) -> bool {
        matches!(self, EventKind::Write(_, _))
    }

    /// Whether this is a `commit` event.
    pub fn is_commit(&self) -> bool {
        matches!(self, EventKind::Commit)
    }

    /// Whether this is an `abort` event.
    pub fn is_abort(&self) -> bool {
        matches!(self, EventKind::Abort)
    }

    /// Whether this is a `begin` event.
    pub fn is_begin(&self) -> bool {
        matches!(self, EventKind::Begin)
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Begin => write!(f, "begin"),
            EventKind::Commit => write!(f, "commit"),
            EventKind::Abort => write!(f, "abort"),
            EventKind::Read(x) => write!(f, "read({x})"),
            EventKind::Write(x, v) => write!(f, "write({x},{v})"),
        }
    }
}

/// An event: an identifier paired with its kind.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Event {
    /// Unique identifier of the event.
    pub id: EventId,
    /// Kind of database interaction the event represents.
    pub kind: EventKind,
}

impl Event {
    /// Creates a new event.
    pub fn new(id: EventId, kind: EventKind) -> Self {
        Event { id, kind }
    }

    /// The variable accessed by the event, if it is a read or write.
    pub fn var(&self) -> Option<Var> {
        self.kind.var()
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.id, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_kind_accessors() {
        let r = EventKind::Read(Var(1));
        let w = EventKind::Write(Var(2), Value::Int(9));
        assert!(r.is_read() && !r.is_write());
        assert!(w.is_write() && !w.is_read());
        assert_eq!(r.var(), Some(Var(1)));
        assert_eq!(w.var(), Some(Var(2)));
        assert_eq!(EventKind::Begin.var(), None);
        assert!(EventKind::Commit.is_commit());
        assert!(EventKind::Abort.is_abort());
        assert!(EventKind::Begin.is_begin());
    }

    #[test]
    fn event_display() {
        let e = Event::new(EventId(3), EventKind::Write(Var(0), Value::Int(1)));
        assert_eq!(e.to_string(), "e3:write(x0,1)");
        let e = Event::new(EventId(4), EventKind::Read(Var(1)));
        assert_eq!(e.to_string(), "e4:read(x1)");
        assert_eq!(
            Event::new(EventId(0), EventKind::Begin).to_string(),
            "e0:begin"
        );
    }

    #[test]
    fn event_ids_order() {
        assert!(EventId(1) < EventId(2));
        assert_eq!(EventId(5).to_string(), "e5");
    }
}
