//! Property-based tests for the consistency checkers: on randomly generated
//! histories, the specialised checkers agree with the axiomatic oracle, the
//! isolation levels are ordered by strength, prefix closure holds
//! (Theorem 3.2) and causal extensibility holds for RC/RA/CC
//! (Theorem 3.4).

use std::collections::BTreeSet;

use proptest::prelude::*;

use txdpor_history::axioms::{check_with_order, oracle_satisfies};
use txdpor_history::{
    Event, EventId, EventKind, History, IsolationLevel, SessionId, TxId, Value, Var,
};

/// A compact description of a randomly generated history.
#[derive(Clone, Debug)]
struct RandomOp {
    write: bool,
    var: u32,
    value: i64,
    /// For reads: index into the set of previously committed writers of the
    /// variable (modulo its size), or `usize::MAX` for the init transaction.
    reader_choice: usize,
}

fn op_strategy() -> impl Strategy<Value = RandomOp> {
    (any::<bool>(), 0..2u32, 0..4i64, 0..8usize).prop_map(|(write, var, value, reader_choice)| {
        RandomOp {
            write,
            var,
            value,
            reader_choice,
        }
    })
}

/// A history blueprint: sessions → transactions → operations.
fn blueprint_strategy() -> impl Strategy<Value = Vec<Vec<Vec<RandomOp>>>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::collection::vec(op_strategy(), 1..=3), 1..=2),
        2..=3,
    )
}

/// Materialises a blueprint into a well-formed history: reads read from the
/// init transaction or from a previously committed writer of the variable.
fn build_history(blueprint: &[Vec<Vec<RandomOp>>]) -> History {
    let mut h = History::new([]);
    let mut next_event = 0u32;
    let mut next_tx = 0u32;
    let mut committed_writers: Vec<(Var, TxId)> = Vec::new();
    for (s, session) in blueprint.iter().enumerate() {
        for (idx, ops) in session.iter().enumerate() {
            next_tx += 1;
            let tx = TxId(next_tx);
            next_event += 1;
            h.begin_transaction(
                SessionId(s as u32),
                tx,
                idx,
                Event::new(EventId(next_event), EventKind::Begin),
            );
            let mut written: Vec<Var> = Vec::new();
            for op in ops {
                let var = Var(op.var);
                next_event += 1;
                if op.write {
                    h.append_event(
                        SessionId(s as u32),
                        Event::new(
                            EventId(next_event),
                            EventKind::Write(var, Value::Int(op.value)),
                        ),
                    );
                    written.push(var);
                } else {
                    let id = EventId(next_event);
                    h.append_event(SessionId(s as u32), Event::new(id, EventKind::Read(var)));
                    if !written.contains(&var) {
                        let candidates: Vec<TxId> = std::iter::once(TxId::INIT)
                            .chain(
                                committed_writers
                                    .iter()
                                    .filter(|(v, _)| *v == var)
                                    .map(|(_, t)| *t),
                            )
                            .collect();
                        let writer = candidates[op.reader_choice % candidates.len()];
                        h.set_wr(id, writer);
                    }
                }
            }
            next_event += 1;
            h.append_event(
                SessionId(s as u32),
                Event::new(EventId(next_event), EventKind::Commit),
            );
            for var in written {
                committed_writers.push((var, tx));
            }
        }
    }
    h
}

const LEVELS: [IsolationLevel; 5] = [
    IsolationLevel::ReadCommitted,
    IsolationLevel::ReadAtomic,
    IsolationLevel::CausalConsistency,
    IsolationLevel::SnapshotIsolation,
    IsolationLevel::Serializability,
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn checkers_agree_with_the_axiomatic_oracle(blueprint in blueprint_strategy()) {
        let h = build_history(&blueprint);
        for level in LEVELS {
            prop_assert_eq!(
                level.satisfies(&h),
                oracle_satisfies(&h, level),
                "divergence for {} on:\n{}",
                level,
                h
            );
        }
    }

    #[test]
    fn strength_order_is_respected(blueprint in blueprint_strategy()) {
        let h = build_history(&blueprint);
        let sat: Vec<bool> = LEVELS.iter().map(|l| l.satisfies(&h)).collect();
        // RC ⊇ RA ⊇ CC ⊇ SI ⊇ SER (as sets of consistent histories).
        for w in sat.windows(2) {
            prop_assert!(w[1] <= w[0], "a stronger level accepted a history the weaker rejected");
        }
        prop_assert!(IsolationLevel::Trivial.satisfies(&h));
    }

    #[test]
    fn theorem_3_2_prefix_closure(blueprint in blueprint_strategy()) {
        // Removing any causally-maximal transaction yields a prefix; prefix
        // closure says it stays consistent.
        let h = build_history(&blueprint);
        let maximal: Vec<TxId> = h.tx_ids().filter(|t| h.is_causally_maximal(*t)).collect();
        for level in LEVELS {
            if !level.satisfies(&h) {
                continue;
            }
            for t in &maximal {
                let doomed: BTreeSet<EventId> = h.tx(*t).events.iter().map(|e| e.id).collect();
                let prefix = h.remove_events(&doomed);
                prop_assert!(
                    level.satisfies(&prefix),
                    "{} prefix of a consistent history became inconsistent",
                    level
                );
            }
        }
    }

    #[test]
    fn theorem_3_4_causal_extensibility_for_weak_levels(blueprint in blueprint_strategy()) {
        // For RC/RA/CC: any consistent history with a causally-maximal
        // pending transaction can be extended with a read of any variable
        // reading from some transaction in its causal past.
        let mut h = build_history(&blueprint);
        // Turn the last transaction of session 0 into a pending one by
        // appending a fresh transaction with only a begin event.
        let fresh_tx = TxId(1000);
        let begin = Event::new(EventId(100_000), EventKind::Begin);
        let idx = h.session_txs(SessionId(0)).len();
        h.begin_transaction(SessionId(0), fresh_tx, idx, begin);
        for level in [
            IsolationLevel::ReadCommitted,
            IsolationLevel::ReadAtomic,
            IsolationLevel::CausalConsistency,
        ] {
            if !level.satisfies(&h) {
                continue;
            }
            for var in [Var(0), Var(1)] {
                let mut found = false;
                let mut candidates: Vec<TxId> = vec![TxId::INIT];
                candidates.extend(h.causal_predecessors(fresh_tx));
                for writer in candidates {
                    if !h.writes_var(writer, var) {
                        continue;
                    }
                    let mut trial = h.clone();
                    let read = Event::new(EventId(100_001), EventKind::Read(var));
                    trial.append_event(SessionId(0), read);
                    trial.set_wr(EventId(100_001), writer);
                    if level.satisfies(&trial) {
                        found = true;
                        break;
                    }
                }
                prop_assert!(
                    found,
                    "{} is causally extensible but no causal extension with read({:?}) exists",
                    level,
                    var
                );
            }
        }
    }

    #[test]
    fn oracle_witnesses_are_valid(blueprint in blueprint_strategy()) {
        // Whenever the oracle accepts, some total order extending so ∪ wr is
        // a valid witness according to check_with_order; the identity
        // ordering of transactions (init first, then by id, which extends so
        // and often wr) must never be accepted for an inconsistent history.
        let h = build_history(&blueprint);
        let order: Vec<TxId> = std::iter::once(TxId::INIT).chain(h.tx_ids()).collect();
        for level in LEVELS {
            if check_with_order(&h, level, &order) {
                prop_assert!(level.satisfies(&h), "a witness exists but the checker rejected");
            }
        }
    }
}
