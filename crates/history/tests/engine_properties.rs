//! Property-based tests for the stateful [`ConsistencyChecker`] engines:
//! on randomly generated histories, every engine agrees with the axiomatic
//! oracle — including when one long-lived engine is reused across many
//! histories and across in-place mutations of a history (the incremental
//! pattern of the exploration algorithms), and when memoisation is
//! disabled. Canonical fingerprints are also exercised: renaming variables
//! must not change an engine's verdict or the fingerprint.

use proptest::prelude::*;

use txdpor_history::axioms::oracle_satisfies;
use txdpor_history::{
    engine_for, engine_for_with, Event, EventId, EventKind, History, IsolationLevel, SessionId,
    TxId, Value, Var,
};

/// A compact description of a randomly generated history (same shape as
/// `consistency_properties.rs`).
#[derive(Clone, Debug)]
struct RandomOp {
    write: bool,
    var: u32,
    value: i64,
    /// For reads: index into the set of previously committed writers of the
    /// variable (modulo its size).
    reader_choice: usize,
}

fn op_strategy() -> impl Strategy<Value = RandomOp> {
    (any::<bool>(), 0..2u32, 0..4i64, 0..8usize).prop_map(|(write, var, value, reader_choice)| {
        RandomOp {
            write,
            var,
            value,
            reader_choice,
        }
    })
}

fn blueprint_strategy() -> impl Strategy<Value = Vec<Vec<Vec<RandomOp>>>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::collection::vec(op_strategy(), 1..=3), 1..=2),
        2..=3,
    )
}

fn build_history(blueprint: &[Vec<Vec<RandomOp>>]) -> History {
    let mut h = History::new([]);
    let mut next_event = 0u32;
    let mut next_tx = 0u32;
    let mut committed_writers: Vec<(Var, TxId)> = Vec::new();
    for (s, session) in blueprint.iter().enumerate() {
        for (idx, ops) in session.iter().enumerate() {
            next_tx += 1;
            let tx = TxId(next_tx);
            next_event += 1;
            h.begin_transaction(
                SessionId(s as u32),
                tx,
                idx,
                Event::new(EventId(next_event), EventKind::Begin),
            );
            let mut written: Vec<Var> = Vec::new();
            for op in ops {
                let var = Var(op.var);
                next_event += 1;
                if op.write {
                    h.append_event(
                        SessionId(s as u32),
                        Event::new(
                            EventId(next_event),
                            EventKind::Write(var, Value::Int(op.value)),
                        ),
                    );
                    written.push(var);
                } else {
                    let id = EventId(next_event);
                    h.append_event(SessionId(s as u32), Event::new(id, EventKind::Read(var)));
                    if !written.contains(&var) {
                        let candidates: Vec<TxId> = std::iter::once(TxId::INIT)
                            .chain(
                                committed_writers
                                    .iter()
                                    .filter(|(v, _)| *v == var)
                                    .map(|(_, t)| *t),
                            )
                            .collect();
                        let writer = candidates[op.reader_choice % candidates.len()];
                        h.set_wr(id, writer);
                    }
                }
            }
            next_event += 1;
            h.append_event(
                SessionId(s as u32),
                Event::new(EventId(next_event), EventKind::Commit),
            );
            for var in written {
                committed_writers.push((var, tx));
            }
        }
    }
    h
}

const LEVELS: [IsolationLevel; 5] = [
    IsolationLevel::ReadCommitted,
    IsolationLevel::ReadAtomic,
    IsolationLevel::CausalConsistency,
    IsolationLevel::SnapshotIsolation,
    IsolationLevel::Serializability,
];

/// Every wr-mutation of the history: each external read redirected to each
/// alternative committed writer of its variable (never its own
/// transaction — the semantics only lets committed transactions serve
/// external reads, and a transaction is never committed while still
/// reading). This is exactly the kind of one-edge delta the exploration's
/// `ValidWrites` generates.
fn wr_mutations(h: &History) -> Vec<History> {
    let mut out = Vec::new();
    for (reader, read, var, current) in h.reads_from() {
        for writer in h.committed_writers_of(var) {
            if writer != current && writer != reader {
                let mut m = h.clone();
                m.set_wr(read, writer);
                out.push(m);
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn fresh_engines_agree_with_the_oracle(blueprint in blueprint_strategy()) {
        let h = build_history(&blueprint);
        for level in LEVELS {
            let mut engine = engine_for(level);
            prop_assert_eq!(
                engine.check(&h),
                oracle_satisfies(&h, level),
                "fresh engine diverges for {} on:\n{}",
                level,
                h
            );
        }
    }

    #[test]
    fn reused_engines_stay_correct_across_mutations(blueprint in blueprint_strategy()) {
        // One long-lived engine per level, fed the base history and every
        // one-wr-edge mutation, with repeats to exercise the memo. The
        // verdicts must match the oracle throughout — memoised or not.
        let h = build_history(&blueprint);
        for level in LEVELS {
            let mut engine = engine_for(level);
            let mut plain = engine_for_with(level, false);
            let mut candidates = vec![h.clone()];
            candidates.extend(wr_mutations(&h));
            for candidate in &candidates {
                let expected = oracle_satisfies(candidate, level);
                prop_assert_eq!(
                    engine.check(candidate),
                    expected,
                    "reused engine diverges for {} on:\n{}",
                    level,
                    candidate
                );
                prop_assert_eq!(
                    plain.check(candidate),
                    expected,
                    "unmemoised engine diverges for {} on:\n{}",
                    level,
                    candidate
                );
            }
            // Second pass: every verdict now comes from the memo.
            let before = engine.stats();
            for candidate in &candidates {
                prop_assert_eq!(engine.check(candidate), oracle_satisfies(candidate, level));
            }
            let after = engine.stats();
            prop_assert_eq!(
                after.memo_hits - before.memo_hits,
                candidates.len() as u64,
                "second pass should be all memo hits at {}", level
            );
        }
    }

    #[test]
    fn verdicts_and_fingerprints_are_invariant_under_var_renaming(
        (blueprint, offset) in (blueprint_strategy(), 1..5u32)
    ) {
        // Renaming variables (as parallel workers effectively do when they
        // intern dynamically indexed globals in different orders) must not
        // change fingerprints or engine verdicts.
        let h = build_history(&blueprint);
        let renamed = h.map_vars(|x| Var(x.0 + offset));
        prop_assert_eq!(h.fingerprint(), renamed.fingerprint());
        for level in LEVELS {
            let mut engine = engine_for(level);
            prop_assert_eq!(engine.check(&h), engine.check(&renamed));
        }
    }
}
