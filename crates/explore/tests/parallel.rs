//! Determinism of the parallel frontier exploration: partitioning the
//! exploration tree across workers must not change what is explored. Every
//! deterministic quantity of the report — end states, outputs, blocked
//! reads, explore calls and the set of output-history fingerprints — must
//! be bit-identical to a serial run.

use std::collections::BTreeSet;

use txdpor_explore::{explore, explore_with_assertion, AssertionCtx, ExploreConfig};
use txdpor_history::{HistoryFingerprint, IsolationLevel};
use txdpor_program::dsl::*;
use txdpor_program::Program;

fn fingerprints(report: &txdpor_explore::ExplorationReport) -> BTreeSet<HistoryFingerprint> {
    report.histories.iter().map(|h| h.fingerprint()).collect()
}

fn assert_parallel_matches_serial(program: &Program, config: ExploreConfig, workers: usize) {
    let serial = explore(program, config.clone().collecting_histories()).unwrap();
    let parallel = explore(program, config.collecting_histories().with_workers(workers)).unwrap();
    assert_eq!(serial.outputs, parallel.outputs, "outputs differ");
    assert_eq!(serial.end_states, parallel.end_states, "end states differ");
    assert_eq!(serial.blocked, parallel.blocked, "blocked counts differ");
    assert_eq!(
        serial.explore_calls, parallel.explore_calls,
        "explore calls differ"
    );
    assert_eq!(serial.max_events, parallel.max_events, "max events differ");
    assert_eq!(
        fingerprints(&serial),
        fingerprints(&parallel),
        "output-history fingerprint sets differ"
    );
}

fn two_writers_two_readers() -> Program {
    program(vec![
        session(vec![tx("w2", vec![write(g("x"), cint(2))])]),
        session(vec![tx("r1", vec![read("a", g("x"))])]),
        session(vec![tx("r2", vec![read("b", g("x"))])]),
        session(vec![tx("w4", vec![write(g("x"), cint(4))])]),
    ])
}

fn long_fork() -> Program {
    program(vec![
        session(vec![tx("wx", vec![write(g("x"), cint(1))])]),
        session(vec![tx("wy", vec![write(g("y"), cint(1))])]),
        session(vec![tx("r1", vec![read("a", g("x")), read("b", g("y"))])]),
        session(vec![tx("r2", vec![read("c", g("y")), read("d", g("x"))])]),
    ])
}

/// A program with a dynamically indexed global: the row that is read
/// depends on a value read earlier in the same transaction, so different
/// branches intern different variable names in different orders. The
/// canonical fingerprints must still line up between serial and parallel.
fn indexed_rows() -> Program {
    program(vec![
        session(vec![tx(
            "writer",
            vec![write(g("sel"), cint(1)), write(gi("row", cint(1)), cint(7))],
        )]),
        session(vec![tx(
            "reader",
            vec![read("i", g("sel")), read("v", gi("row", local("i")))],
        )]),
    ])
}

#[test]
fn parallel_matches_serial_on_explore_ce() {
    for workers in [2, 4] {
        assert_parallel_matches_serial(
            &two_writers_two_readers(),
            ExploreConfig::explore_ce(IsolationLevel::CausalConsistency),
            workers,
        );
    }
}

#[test]
fn parallel_matches_serial_on_all_causally_extensible_levels() {
    let p = long_fork();
    for level in IsolationLevel::CAUSALLY_EXTENSIBLE {
        assert_parallel_matches_serial(&p, ExploreConfig::explore_ce(level), 3);
    }
}

#[test]
fn parallel_matches_serial_on_explore_ce_star() {
    assert_parallel_matches_serial(
        &long_fork(),
        ExploreConfig::explore_ce_star(
            IsolationLevel::CausalConsistency,
            IsolationLevel::Serializability,
        ),
        4,
    );
}

#[test]
fn parallel_matches_serial_without_optimality() {
    // The redundant ablation produces duplicate outputs; the duplicate
    // count is a deterministic function of the tree and must also match.
    let p = two_writers_two_readers();
    let config = ExploreConfig::explore_ce(IsolationLevel::CausalConsistency)
        .without_optimality()
        .tracking_duplicates();
    let serial = explore(&p, config.clone().collecting_histories()).unwrap();
    let parallel = explore(&p, config.collecting_histories().with_workers(4)).unwrap();
    assert_eq!(serial.outputs, parallel.outputs);
    assert_eq!(serial.duplicate_outputs, parallel.duplicate_outputs);
    assert!(
        parallel.duplicate_outputs > 0,
        "ablation should be redundant"
    );
    assert_eq!(fingerprints(&serial), fingerprints(&parallel));
}

#[test]
fn parallel_matches_serial_with_indexed_globals() {
    assert_parallel_matches_serial(
        &indexed_rows(),
        ExploreConfig::explore_ce(IsolationLevel::CausalConsistency),
        4,
    );
}

#[test]
fn parallel_matches_serial_without_memo() {
    assert_parallel_matches_serial(
        &two_writers_two_readers(),
        ExploreConfig::explore_ce(IsolationLevel::CausalConsistency).without_memo(),
        2,
    );
}

#[test]
fn parallel_counts_assertion_violations() {
    // Lost-update program: two increments of x; under CC the final counter
    // can miss an increment, and the number of violating histories is
    // deterministic.
    let incr = || {
        tx(
            "incr",
            vec![read("a", g("x")), write(g("x"), add(local("a"), cint(1)))],
        )
    };
    let p = program(vec![session(vec![incr()]), session(vec![incr()])]);
    let assertion = |ctx: &AssertionCtx<'_>| {
        ctx.committed_values_of("x")
            .contains(&txdpor_history::Value::Int(2))
    };
    let serial = explore_with_assertion(
        &p,
        ExploreConfig::explore_ce(IsolationLevel::CausalConsistency),
        Some(&assertion),
    )
    .unwrap();
    let parallel = explore_with_assertion(
        &p,
        ExploreConfig::explore_ce(IsolationLevel::CausalConsistency).with_workers(3),
        Some(&assertion),
    )
    .unwrap();
    assert_eq!(serial.assertion_violations, parallel.assertion_violations);
    assert!(parallel.assertion_violations > 0);
    assert!(parallel.violating_history.is_some());
}

#[test]
fn worker_count_exceeding_frontier_is_safe() {
    // More workers than tasks: the spawn is capped at the frontier size,
    // so no thread is created just to idle.
    let p = program(vec![
        session(vec![tx("w", vec![write(g("x"), cint(1))])]),
        session(vec![tx("r", vec![read("a", g("x"))])]),
    ]);
    let report = explore(
        &p,
        ExploreConfig::explore_ce(IsolationLevel::CausalConsistency).with_workers(16),
    )
    .unwrap();
    assert_eq!(report.outputs, 2);
    assert!(
        report.workers <= 16,
        "never more workers than requested, got {}",
        report.workers
    );
}

/// The starvation workload that motivated work stealing: one session with
/// several multi-read transactions (nearly all reordering mass), flanked
/// by trivial blind-writer sessions. Under a static root partition the
/// worker owning the heavy subtree does almost everything; with stealing
/// the counts must still be bit-identical to serial.
fn skewed_subtree() -> Program {
    program(vec![
        session(vec![
            tx(
                "hot1",
                vec![read("a", g("x")), read("b", g("y")), read("c", g("z"))],
            ),
            tx("hot2", vec![read("d", g("y")), read("e", g("z"))]),
        ]),
        session(vec![tx("w1", vec![write(g("x"), cint(1))])]),
        session(vec![tx("w2", vec![write(g("y"), cint(2))])]),
        session(vec![tx("w3", vec![write(g("z"), cint(3))])]),
    ])
}

#[test]
fn skewed_subtree_is_bit_identical_under_stealing() {
    for workers in [2, 4] {
        assert_parallel_matches_serial(
            &skewed_subtree(),
            ExploreConfig::explore_ce(IsolationLevel::CausalConsistency),
            workers,
        );
    }
}

#[test]
fn skewed_subtree_star_filter_is_bit_identical_under_stealing() {
    for workers in [2, 4] {
        assert_parallel_matches_serial(
            &skewed_subtree(),
            ExploreConfig::explore_ce_star(
                IsolationLevel::CausalConsistency,
                IsolationLevel::Serializability,
            ),
            workers,
        );
    }
}

/// Deterministic pseudo-random program generator for the stress loop: a
/// few sessions of single-transaction reader/writer mixes over a small
/// variable pool, shaped by a seeded LCG so every run explores the same
/// family of trees.
fn generated_program(seed: u64) -> Program {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move |bound: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % bound
    };
    let vars = ["x", "y", "z"];
    let sessions = 2 + next(2) as usize; // 2-3 sessions
    let mut out = Vec::new();
    let mut reads = 0usize;
    for s in 0..sessions {
        let steps = 1 + next(2) as usize; // 1-2 steps per transaction
        let mut body = Vec::new();
        for k in 0..steps {
            let var = vars[next(vars.len() as u64) as usize];
            if next(2) == 0 {
                body.push(write(g(var), cint(next(4) as i64)));
            } else {
                reads += 1;
                body.push(read(format!("l{s}_{k}"), g(var)));
            }
        }
        out.push(session(vec![tx(format!("t{s}"), body)]));
    }
    if reads == 0 {
        // Keep at least one read so the exploration has branching.
        out.push(session(vec![tx("rd", vec![read("lr", g("x"))])]));
    }
    program(out)
}

#[test]
fn stress_many_seeds_and_worker_counts() {
    // Exercises the steal protocol and termination detection across many
    // small trees: every seed must be bit-identical at every worker count.
    for seed in 0..12u64 {
        let p = generated_program(seed);
        let config = ExploreConfig::explore_ce(IsolationLevel::CausalConsistency);
        let serial = explore(&p, config.clone().collecting_histories()).unwrap();
        for workers in [2, 3, 4] {
            let parallel = explore(
                &p,
                config.clone().collecting_histories().with_workers(workers),
            )
            .unwrap();
            assert_eq!(
                (serial.outputs, serial.end_states, serial.explore_calls),
                (
                    parallel.outputs,
                    parallel.end_states,
                    parallel.explore_calls
                ),
                "seed {seed} diverged at {workers} workers"
            );
            assert_eq!(
                fingerprints(&serial),
                fingerprints(&parallel),
                "seed {seed} fingerprints diverged at {workers} workers"
            );
        }
    }
}
