//! Cross-validation of the swapping-based exploration against the DFS
//! baseline: soundness, completeness (same set of read-from equivalence
//! classes), optimality (no duplicate outputs) and strong optimality (no
//! blocked explorations) on a collection of litmus programs taken from the
//! paper's figures and from classical isolation-level anomalies.

use std::collections::BTreeSet;

use txdpor_explore::{dfs_explore, explore, DfsConfig, ExploreConfig};
use txdpor_history::{HistoryFingerprint, IsolationLevel};
use txdpor_program::dsl::*;
use txdpor_program::Program;

/// The litmus programs used by the cross-validation tests.
fn litmus_programs() -> Vec<(&'static str, Program)> {
    let incr = || {
        tx(
            "incr",
            vec![read("a", g("x")), write(g("x"), add(local("a"), cint(1)))],
        )
    };
    vec![
        (
            "fig10-reader-writer",
            program(vec![
                session(vec![tx(
                    "reader",
                    vec![read("a", g("x")), read("b", g("y"))],
                )]),
                session(vec![tx(
                    "writer",
                    vec![write(g("x"), cint(2)), write(g("y"), cint(2))],
                )]),
            ]),
        ),
        (
            "fig12-two-readers-two-writers",
            program(vec![
                session(vec![tx("w2", vec![write(g("x"), cint(2))])]),
                session(vec![tx("r1", vec![read("a", g("x"))])]),
                session(vec![tx("r2", vec![read("b", g("x"))])]),
                session(vec![tx("w4", vec![write(g("x"), cint(4))])]),
            ]),
        ),
        (
            "fig13-independent-reads-writes",
            program(vec![
                session(vec![tx("rx", vec![read("a", g("x"))])]),
                session(vec![tx("ry", vec![read("b", g("y"))])]),
                session(vec![tx("wy", vec![write(g("y"), cint(3))])]),
                session(vec![tx("wx", vec![write(g("x"), cint(4))])]),
            ]),
        ),
        (
            "fig11-abort-guard",
            program(vec![
                session(vec![
                    tx(
                        "guarded",
                        vec![
                            read("a", g("x")),
                            iff(eq(local("a"), cint(0)), vec![abort()]),
                            write(g("y"), cint(1)),
                        ],
                    ),
                    tx("reader", vec![read("b", g("x"))]),
                ]),
                session(vec![
                    tx("wy", vec![write(g("y"), cint(3))]),
                    tx("wx", vec![write(g("x"), cint(4))]),
                ]),
            ]),
        ),
        (
            "lost-update",
            program(vec![session(vec![incr()]), session(vec![incr()])]),
        ),
        (
            "long-fork",
            program(vec![
                session(vec![tx("wx", vec![write(g("x"), cint(1))])]),
                session(vec![tx("wy", vec![write(g("y"), cint(1))])]),
                session(vec![tx("r1", vec![read("a", g("x")), read("b", g("y"))])]),
                session(vec![tx("r2", vec![read("c", g("y")), read("d", g("x"))])]),
            ]),
        ),
        (
            "write-skew",
            program(vec![
                session(vec![tx(
                    "t1",
                    vec![read("a", g("x")), write(g("y"), cint(1))],
                )]),
                session(vec![tx(
                    "t2",
                    vec![read("b", g("y")), write(g("x"), cint(1))],
                )]),
            ]),
        ),
        (
            "two-sessions-two-transactions",
            program(vec![
                session(vec![
                    tx("a1", vec![write(g("x"), cint(1)), read("a", g("y"))]),
                    tx("a2", vec![read("b", g("x")), write(g("y"), cint(2))]),
                ]),
                session(vec![
                    tx("b1", vec![read("c", g("x")), write(g("y"), cint(3))]),
                    tx("b2", vec![read("d", g("y")), write(g("x"), cint(4))]),
                ]),
            ]),
        ),
        (
            "conditional-on-read",
            program(vec![
                session(vec![tx(
                    "cond",
                    vec![
                        read("a", g("x")),
                        if_else(
                            eq(local("a"), cint(0)),
                            vec![write(g("y"), cint(1))],
                            vec![write(g("z"), cint(1))],
                        ),
                    ],
                )]),
                session(vec![tx(
                    "mix",
                    vec![write(g("x"), cint(5)), read("b", g("y")), read("c", g("z"))],
                )]),
            ]),
        ),
        (
            "internal-reads",
            program(vec![
                session(vec![tx(
                    "rmw",
                    vec![
                        write(g("x"), cint(7)),
                        read("a", g("x")),
                        write(g("y"), local("a")),
                    ],
                )]),
                session(vec![tx("obs", vec![read("b", g("y")), read("c", g("x"))])]),
            ]),
        ),
    ]
}

fn fingerprints_explore(
    p: &Program,
    base: IsolationLevel,
    target: IsolationLevel,
) -> (BTreeSet<HistoryFingerprint>, u64, u64) {
    let config = if base == target {
        ExploreConfig::explore_ce(base)
    } else {
        ExploreConfig::explore_ce_star(base, target)
    };
    let report = explore(p, config.collecting_histories().tracking_duplicates()).unwrap();
    let set: BTreeSet<_> = report.histories.iter().map(|h| h.fingerprint()).collect();
    assert_eq!(
        set.len() as u64,
        report.outputs - report.duplicate_outputs,
        "fingerprint set size must match distinct outputs"
    );
    (set, report.duplicate_outputs, report.blocked)
}

fn fingerprints_dfs(p: &Program, level: IsolationLevel) -> BTreeSet<HistoryFingerprint> {
    let report = dfs_explore(p, DfsConfig::new(level).collecting_histories()).unwrap();
    report.histories.iter().map(|h| h.fingerprint()).collect()
}

#[test]
fn explore_ce_is_sound_complete_and_optimal_for_weak_levels() {
    for (name, p) in litmus_programs() {
        for level in [
            IsolationLevel::ReadCommitted,
            IsolationLevel::ReadAtomic,
            IsolationLevel::CausalConsistency,
        ] {
            let (mine, duplicates, blocked) = fingerprints_explore(&p, level, level);
            let reference = fingerprints_dfs(&p, level);
            assert_eq!(
                mine, reference,
                "history sets differ for {name} under {level}"
            );
            assert_eq!(duplicates, 0, "{name} under {level}: optimality violated");
            assert_eq!(
                blocked, 0,
                "{name} under {level}: strong optimality violated"
            );
        }
    }
}

#[test]
fn explore_ce_star_is_sound_complete_and_optimal_for_strong_levels() {
    for (name, p) in litmus_programs() {
        for target in [
            IsolationLevel::SnapshotIsolation,
            IsolationLevel::Serializability,
        ] {
            let (mine, duplicates, _blocked) =
                fingerprints_explore(&p, IsolationLevel::CausalConsistency, target);
            let reference = fingerprints_dfs(&p, target);
            assert_eq!(
                mine, reference,
                "history sets differ for {name} under {target}"
            );
            assert_eq!(duplicates, 0, "{name} under {target}: optimality violated");
        }
    }
}

#[test]
fn ablation_without_optimality_is_still_sound_and_complete() {
    for (name, p) in litmus_programs().into_iter().take(6) {
        let level = IsolationLevel::CausalConsistency;
        let full = explore(
            &p,
            ExploreConfig::explore_ce(level)
                .collecting_histories()
                .tracking_duplicates(),
        )
        .unwrap();
        let ablated = explore(
            &p,
            ExploreConfig::explore_ce(level)
                .without_optimality()
                .collecting_histories()
                .tracking_duplicates(),
        )
        .unwrap();
        let a: BTreeSet<_> = full.histories.iter().map(|h| h.fingerprint()).collect();
        let b: BTreeSet<_> = ablated.histories.iter().map(|h| h.fingerprint()).collect();
        assert_eq!(a, b, "{name}: ablation changed the set of histories");
        assert!(
            ablated.explore_calls >= full.explore_calls,
            "{name}: the ablation cannot explore fewer histories"
        );
    }
}

#[test]
fn weaker_levels_enumerate_more_histories() {
    for (name, p) in litmus_programs() {
        let rc = fingerprints_dfs(&p, IsolationLevel::ReadCommitted);
        let ra = fingerprints_dfs(&p, IsolationLevel::ReadAtomic);
        let cc = fingerprints_dfs(&p, IsolationLevel::CausalConsistency);
        let si = fingerprints_dfs(&p, IsolationLevel::SnapshotIsolation);
        let ser = fingerprints_dfs(&p, IsolationLevel::Serializability);
        assert!(ser.is_subset(&si), "{name}: SER ⊄ SI");
        assert!(si.is_subset(&cc), "{name}: SI ⊄ CC");
        assert!(cc.is_subset(&ra), "{name}: CC ⊄ RA");
        assert!(ra.is_subset(&rc), "{name}: RA ⊄ RC");
        assert!(!ser.is_empty(), "{name}: no serializable execution");
    }
}
