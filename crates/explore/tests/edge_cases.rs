//! Edge-case integration tests for the exploration algorithms: aborted
//! transactions, internal reads, programs where some session never touches
//! the database, guards over set values, and degenerate programs.

use txdpor_explore::{dfs_explore, explore, DfsConfig, ExploreConfig};
use txdpor_history::{IsolationLevel, Value};
use txdpor_program::dsl::*;
use txdpor_program::Program;

fn cc() -> ExploreConfig {
    ExploreConfig::explore_ce(IsolationLevel::CausalConsistency)
        .collecting_histories()
        .tracking_duplicates()
}

#[test]
fn empty_program_has_one_empty_history() {
    let p = program(vec![]);
    let report = explore(&p, cc()).unwrap();
    assert_eq!(report.outputs, 1);
    assert_eq!(report.end_states, 1);
    assert_eq!(report.histories[0].num_transactions(), 0);
    let dfs = dfs_explore(&p, DfsConfig::new(IsolationLevel::CausalConsistency)).unwrap();
    assert_eq!(dfs.outputs, 1);
}

#[test]
fn purely_local_transactions_have_a_single_history() {
    let p = program(vec![
        session(vec![tx(
            "a",
            vec![assign("l", cint(1)), assign("m", add(local("l"), cint(2)))],
        )]),
        session(vec![tx("b", vec![assign("n", cint(3))])]),
    ]);
    let report = explore(&p, cc()).unwrap();
    assert_eq!(report.outputs, 1);
    assert_eq!(report.duplicate_outputs, 0);
}

#[test]
fn aborted_writer_is_never_read_from() {
    // The first transaction writes x then aborts; the reader can only see
    // the initial value.
    let p = program(vec![
        session(vec![tx(
            "abort_writer",
            vec![write(g("x"), cint(5)), abort()],
        )]),
        session(vec![tx("reader", vec![read("a", g("x"))])]),
    ]);
    let report = explore(&p, cc()).unwrap();
    assert_eq!(report.outputs, 1, "aborted writes must be invisible");
    for h in &report.histories {
        let x = report.vars.get("x").unwrap();
        assert_eq!(h.wr_count(), 1);
        for (_, writer) in h.wr() {
            assert!(writer.is_init());
        }
        assert_eq!(h.writers_of(x).len(), 1, "only init writes x visibly");
    }
}

#[test]
fn abort_after_commit_boundary_is_respected() {
    // A session whose first transaction aborts still runs its second one.
    let p = program(vec![
        session(vec![
            tx("aborts", vec![read("a", g("x")), abort()]),
            tx("writes", vec![write(g("x"), cint(1))]),
        ]),
        session(vec![tx("reader", vec![read("b", g("x"))])]),
    ]);
    let report = explore(&p, cc()).unwrap();
    // Reader sees init or the second transaction's write.
    assert_eq!(report.outputs, 2);
    assert_eq!(report.duplicate_outputs, 0);
    assert_eq!(report.blocked, 0);
}

#[test]
fn internal_reads_never_branch() {
    // Only one external read exists (the observer); the read-modify-write
    // transaction reads its own write internally.
    let p = program(vec![
        session(vec![tx(
            "rmw",
            vec![
                write(g("x"), cint(7)),
                read("a", g("x")),
                write(g("x"), add(local("a"), cint(1))),
            ],
        )]),
        session(vec![tx("obs", vec![read("b", g("x"))])]),
    ]);
    let report = explore(&p, cc()).unwrap();
    assert_eq!(report.outputs, 2, "observer reads init or the rmw result");
    for h in &report.histories {
        let x = report.vars.get("x").unwrap();
        let rmw = h
            .transactions()
            .find(|t| t.write_events().count() == 2)
            .unwrap();
        assert_eq!(rmw.visible_write_value(x), Some(&Value::Int(8)));
    }
}

#[test]
fn set_valued_guards_explore_both_branches() {
    let mut p = program(vec![
        session(vec![tx(
            "add",
            vec![
                read("s", g("items")),
                write(g("items"), set_insert(local("s"), cint(1))),
            ],
        )]),
        session(vec![tx(
            "remove_if_present",
            vec![
                read("s", g("items")),
                iff(
                    set_contains(local("s"), cint(1)),
                    vec![write(g("items"), set_remove(local("s"), cint(1)))],
                ),
            ],
        )]),
    ]);
    p.init_values.push(("items".to_owned(), Value::empty_set()));
    let report = explore(&p, cc()).unwrap();
    // The remover either sees the empty set (no write) or the singleton
    // (writes the empty set back): two histories.
    assert_eq!(report.outputs, 2);
    let wrote: Vec<usize> = report
        .histories
        .iter()
        .map(|h| {
            h.transactions()
                .filter(|t| t.program_index == 0 && t.write_events().count() > 0)
                .count()
        })
        .collect();
    assert!(wrote.contains(&2), "some history has both writers writing");
}

#[test]
fn single_session_programs_have_exactly_one_history_under_ra_and_cc() {
    // Without concurrency, Read Atomic and Causal Consistency force every
    // read to observe the session's own past, so the behaviour is unique.
    // Read Committed is weaker: its axiom only constrains reads preceded by
    // another read of the same transaction, so later transactions of the
    // same session may still observe the initial value.
    let p: Program = program(vec![session(vec![
        tx("t1", vec![write(g("x"), cint(1)), read("a", g("x"))]),
        tx("t2", vec![read("b", g("x")), write(g("y"), local("b"))]),
        tx("t3", vec![read("c", g("y"))]),
    ])]);
    for level in [
        IsolationLevel::ReadAtomic,
        IsolationLevel::CausalConsistency,
    ] {
        let report = explore(&p, ExploreConfig::explore_ce(level)).unwrap();
        assert_eq!(report.outputs, 1, "unexpected nondeterminism under {level}");
    }
    let rc = explore(&p, ExploreConfig::explore_ce(IsolationLevel::ReadCommitted)).unwrap();
    assert_eq!(rc.outputs, 4, "RC allows each session read to observe init");
}

#[test]
fn many_blind_writers_scale_linearly_in_histories() {
    // n blind writers of distinct variables and no readers: exactly one
    // history regardless of n, and no swaps are ever attempted.
    for n in 1..=5u32 {
        let sessions = (0..n)
            .map(|i| session(vec![tx("w", vec![write(g(format!("x{i}")), cint(1))])]))
            .collect();
        let report = explore(&program(sessions), cc()).unwrap();
        assert_eq!(report.outputs, 1);
        assert_eq!(report.duplicate_outputs, 0);
    }
}

#[test]
fn conflicting_blind_writers_still_yield_one_history() {
    // Blind writes to the same variable are unordered by the read-from
    // equivalence (no reads observe them): a single history.
    let sessions = (0..3)
        .map(|_| session(vec![tx("w", vec![write(g("x"), cint(1))])]))
        .collect();
    let report = explore(&program(sessions), cc()).unwrap();
    assert_eq!(report.outputs, 1);
    let dfs = dfs_explore(
        &program(
            (0..3)
                .map(|_| session(vec![tx("w", vec![write(g("x"), cint(1))])]))
                .collect(),
        ),
        DfsConfig::new(IsolationLevel::CausalConsistency),
    )
    .unwrap();
    assert_eq!(dfs.outputs, 1);
    assert_eq!(dfs.end_states, 6, "3! interleavings of the writers");
}

#[test]
fn deep_nested_guards_follow_read_values() {
    let p = program(vec![
        session(vec![tx(
            "nested",
            vec![
                read("a", g("x")),
                if_else(
                    eq(local("a"), cint(0)),
                    vec![
                        read("b", g("y")),
                        iff(eq(local("b"), cint(0)), vec![write(g("z"), cint(1))]),
                    ],
                    vec![write(g("z"), cint(2))],
                ),
            ],
        )]),
        session(vec![tx("wx", vec![write(g("x"), cint(1))])]),
        session(vec![tx("wy", vec![write(g("y"), cint(1))])]),
    ]);
    let report = explore(&p, cc()).unwrap();
    // x ∈ {init, wx}; if x = init then y ∈ {init, wy}: 3 control paths, all
    // distinct histories (the shape of the nested transaction differs).
    assert_eq!(report.outputs, 3);
    assert_eq!(report.duplicate_outputs, 0);
    assert_eq!(report.blocked, 0);
}
